//! Payroll: time-varying aggregates and write-ahead logging.
//!
//! Two extensions beyond the 1987 paper, both natural in its model:
//!
//! * aggregates over a historical relation are themselves **functions of
//!   time** (`COUNT(emp)` is the time-varying head-count) — the direction
//!   HRDM's successors (HSQL, TSQL2) took;
//! * the physical level is **crash-safe**: an attached `Database` logs every
//!   mutation to its WAL before applying it, and `Database::open` replays
//!   the log to reconstruct the database after a crash.
//!
//! ```sh
//! cargo run --example payroll
//! ```

use hrdm::core::algebra::{aggregate_over_time, AggregateOp};
use hrdm::prelude::*;

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 100);
    Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era.clone())
        .attr("SALARY", HistoricalDomain::int(), era)
        .build()
        .expect("well-formed scheme")
}

fn emp(name: &str, history: &[(i64, i64, i64)]) -> Tuple {
    let life = Lifespan::from_intervals(history.iter().map(|&(lo, hi, _)| Interval::of(lo, hi)));
    Tuple::builder(life)
        .constant("NAME", name)
        .value(
            "SALARY",
            TemporalValue::of(
                &history
                    .iter()
                    .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                    .collect::<Vec<_>>(),
            ),
        )
        .finish(&scheme())
        .expect("valid tuple")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let emps = Relation::with_tuples(
        scheme(),
        vec![
            emp("John", &[(0, 9, 25_000), (10, 29, 30_000)]),
            emp("Mary", &[(5, 40, 30_000)]),
            emp("Igor", &[(20, 35, 20_000), (50, 60, 22_000)]), // re-hired at 50
        ],
    )?;

    // ---- Time-varying aggregates -----------------------------------------
    let headcount = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Count)?;
    println!("head-count over time: {headcount}");

    let payroll = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Sum)?;
    println!("total payroll at t=7:  {:?}", payroll.at(Chronon::new(7)));
    println!("total payroll at t=25: {:?}", payroll.at(Chronon::new(25)));
    println!("total payroll at t=45: {:?}", payroll.at(Chronon::new(45)));

    let avg = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Avg)?;
    println!("average salary at t=25: {:?}", avg.at(Chronon::new(25)));

    // Aggregates compose with the algebra: average salary *among people
    // earning at least 25K*, over time.
    let well_paid = select_when(
        &emps,
        &Predicate::attr_op_value("SALARY", Comparator::Ge, 25_000i64),
    )?;
    let avg_well_paid = aggregate_over_time(&well_paid, &"SALARY".into(), AggregateOp::Avg)?;
    println!(
        "average among >=25K at t=25: {:?}",
        avg_well_paid.at(Chronon::new(25))
    );

    // ---- Crash-safe persistence -------------------------------------------
    // An *attached* database write-ahead logs every mutation (fsync'd)
    // before acknowledging it; reopening the directory replays the log —
    // the manual WAL replay this example used to hand-roll now lives
    // inside `Database::open`.
    let dir = std::env::temp_dir().join(format!("hrdm-payroll-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut db = hrdm::storage::Database::open(&dir)?;
        db.create_relation("emp", scheme())?;
        for t in emps.iter() {
            db.insert("emp", t.clone())?;
        }
    } // crash here — the log survives

    // Recovery: open the directory again; the WAL tail replays.
    let db = hrdm::storage::Database::open(&dir)?;
    assert_eq!(db.relation("emp").unwrap(), &emps);
    println!(
        "WAL replay reconstructed the database: {} tuple(s) in `emp`",
        db.relation("emp").unwrap().len()
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();

    Ok(())
}
