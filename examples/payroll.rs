//! Payroll: time-varying aggregates and write-ahead logging.
//!
//! Two extensions beyond the 1987 paper, both natural in its model:
//!
//! * aggregates over a historical relation are themselves **functions of
//!   time** (`COUNT(emp)` is the time-varying head-count) — the direction
//!   HRDM's successors (HSQL, TSQL2) took;
//! * the physical level gains a **WAL**: every mutation is logged before it
//!   is applied, and replay reconstructs the database after a crash.
//!
//! ```sh
//! cargo run --example payroll
//! ```

use hrdm::core::algebra::{aggregate_over_time, AggregateOp};
use hrdm::prelude::*;
use hrdm::storage::{Wal, WalRecord};

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 100);
    Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era.clone())
        .attr("SALARY", HistoricalDomain::int(), era)
        .build()
        .expect("well-formed scheme")
}

fn emp(name: &str, history: &[(i64, i64, i64)]) -> Tuple {
    let life = Lifespan::from_intervals(history.iter().map(|&(lo, hi, _)| Interval::of(lo, hi)));
    Tuple::builder(life)
        .constant("NAME", name)
        .value(
            "SALARY",
            TemporalValue::of(
                &history
                    .iter()
                    .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                    .collect::<Vec<_>>(),
            ),
        )
        .finish(&scheme())
        .expect("valid tuple")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let emps = Relation::with_tuples(
        scheme(),
        vec![
            emp("John", &[(0, 9, 25_000), (10, 29, 30_000)]),
            emp("Mary", &[(5, 40, 30_000)]),
            emp("Igor", &[(20, 35, 20_000), (50, 60, 22_000)]), // re-hired at 50
        ],
    )?;

    // ---- Time-varying aggregates -----------------------------------------
    let headcount = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Count)?;
    println!("head-count over time: {headcount}");

    let payroll = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Sum)?;
    println!("total payroll at t=7:  {:?}", payroll.at(Chronon::new(7)));
    println!("total payroll at t=25: {:?}", payroll.at(Chronon::new(25)));
    println!("total payroll at t=45: {:?}", payroll.at(Chronon::new(45)));

    let avg = aggregate_over_time(&emps, &"SALARY".into(), AggregateOp::Avg)?;
    println!("average salary at t=25: {:?}", avg.at(Chronon::new(25)));

    // Aggregates compose with the algebra: average salary *among people
    // earning at least 25K*, over time.
    let well_paid = select_when(
        &emps,
        &Predicate::attr_op_value("SALARY", Comparator::Ge, 25_000i64),
    )?;
    let avg_well_paid = aggregate_over_time(&well_paid, &"SALARY".into(), AggregateOp::Avg)?;
    println!(
        "average among >=25K at t=25: {:?}",
        avg_well_paid.at(Chronon::new(25))
    );

    // ---- Write-ahead logging ----------------------------------------------
    let wal_path = std::env::temp_dir().join(format!("hrdm-payroll-{}.wal", std::process::id()));
    std::fs::remove_file(&wal_path).ok();
    {
        let mut wal = Wal::open(&wal_path)?;
        wal.append(&WalRecord::CreateRelation {
            name: "emp".into(),
            scheme: scheme(),
        })?;
        for t in emps.iter() {
            wal.append(&WalRecord::Insert {
                relation: "emp".into(),
                tuple: t.clone(),
            })?;
        }
    } // crash here — the log survives

    // Recovery: replay the log into a fresh database.
    let (records, torn) = Wal::replay(&wal_path)?;
    assert!(torn.is_none());
    let mut db = hrdm::storage::Database::new();
    for rec in records {
        match rec {
            WalRecord::CreateRelation { name, scheme } => {
                db.create_relation(&name, scheme)?;
            }
            WalRecord::Insert { relation, tuple } => {
                db.insert(&relation, tuple)?;
            }
            WalRecord::AddAttribute {
                relation,
                attribute,
                domain,
                from,
                to,
            } => {
                db.catalog_mut()
                    .add_attribute(&relation, attribute, domain, from, to)?;
            }
            WalRecord::DropAttribute {
                relation,
                attribute,
                at,
            } => {
                db.catalog_mut().drop_attribute(&relation, &attribute, at)?;
            }
        }
    }
    assert_eq!(db.relation("emp").unwrap(), &emps);
    println!(
        "WAL replay reconstructed the database: {} tuple(s) in `emp`",
        db.relation("emp").unwrap().len()
    );
    std::fs::remove_file(&wal_path).ok();

    Ok(())
}
