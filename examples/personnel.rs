//! Personnel: reincarnation, object-based union, and temporal constraints.
//!
//! The paper's §1 motivating domain: "employees can be hired, fired, and
//! subsequently re-hired" — lifespans with gaps — and §4.1's Fig. 11:
//! merging two archives of the same employees needs the *object-based*
//! union, not the tuple-set one.
//!
//! ```sh
//! cargo run --example personnel
//! ```

use hrdm::prelude::*;

fn emp_scheme() -> Scheme {
    let era = Lifespan::interval(0, 100);
    Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era.clone())
        .attr("SALARY", HistoricalDomain::int(), era)
        .build()
        .expect("well-formed scheme")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scheme = emp_scheme();

    // ---- Reincarnation: hired 0, fired 20, re-hired 50 ------------------
    let john_life = Lifespan::of(&[(0, 19), (50, 80)]);
    let john = Tuple::builder(john_life.clone())
        .constant("NAME", "John")
        .value(
            "SALARY",
            TemporalValue::of(&[
                (0, 9, Value::Int(25_000)),
                (10, 19, Value::Int(30_000)),
                (50, 80, Value::Int(40_000)), // re-hired at a higher salary
            ]),
        )
        .finish(&scheme)?;
    println!("John's lifespan has a gap: {}", john.lifespan());
    println!(
        "  salary at t=15: {:?}",
        john.at(&"SALARY".into(), Chronon::new(15))
    );
    println!(
        "  salary at t=30: {:?} (fired — does not exist)",
        john.at(&"SALARY".into(), Chronon::new(30))
    );

    let emp = Relation::with_tuples(scheme.clone(), vec![john])?;

    // "When did John earn 30K?" — the paper's §4.3 example.
    let q = Predicate::eq_value("NAME", "John").and(Predicate::eq_value("SALARY", 30_000i64));
    let answer = when(&select_when(&emp, &q)?);
    println!("When did John earn 30K? {answer}");

    // ---- Fig. 11: plain union vs object union ---------------------------
    // Two archives know different eras of the same employee.
    let early = Relation::with_tuples(
        scheme.clone(),
        vec![{
            let l = Lifespan::interval(0, 19);
            Tuple::builder(l.clone())
                .constant("NAME", "Ann")
                .value("SALARY", TemporalValue::constant(&l, Value::Int(20_000)))
                .finish(&scheme)?
        }],
    )?;
    let late = Relation::with_tuples(
        scheme.clone(),
        vec![{
            let l = Lifespan::interval(30, 60);
            Tuple::builder(l.clone())
                .constant("NAME", "Ann")
                .value("SALARY", TemporalValue::constant(&l, Value::Int(26_000)))
                .finish(&scheme)?
        }],
    )?;

    let plain = union(&early, &late)?;
    println!(
        "plain ∪: {} tuples for one person — the paper calls this counter-intuitive; \
         key audit says: {:?}",
        plain.len(),
        plain.check_key_constraint().err().map(|e| e.to_string())
    );

    let merged = union_o(&early, &late)?;
    println!("object ∪ₒ: {} tuple with the full history", merged.len());
    let ann = &merged.tuples()[0];
    println!("  Ann's merged lifespan: {}", ann.lifespan());

    // ---- Temporal constraints (paper §5) ---------------------------------
    // "Salary must never decrease": holds for Ann and for re-hired John.
    match never_decreases(&merged, &"SALARY".into())? {
        None => println!("constraint 'salary never decreases' holds for the archive"),
        Some(who) => println!("constraint violated by {who}"),
    }

    // Build an offender and watch the checker catch it.
    let pay_cut = Relation::with_tuples(
        scheme.clone(),
        vec![{
            let l = Lifespan::interval(0, 20);
            Tuple::builder(l.clone())
                .constant("NAME", "Zeno")
                .value(
                    "SALARY",
                    TemporalValue::of(&[(0, 9, Value::Int(30_000)), (10, 20, Value::Int(20_000))]),
                )
                .finish(&scheme)?
        }],
    )?;
    match never_decreases(&pay_cut, &"SALARY".into())? {
        Some(who) => println!("pay cut detected for {who}"),
        None => unreachable!("Zeno's salary decreases"),
    }

    Ok(())
}
