// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! Enrollment: temporal referential integrity and the query language.
//!
//! The paper's §1 integrity example: "a student can only take a course at
//! time t if both the student and the course exist in the database at time
//! t." We build students/courses/enrollments, audit the temporal foreign
//! key, then query the database through the textual algebra — including a
//! TIME-JOIN on a time-valued attribute.
//!
//! ```sh
//! cargo run --example enrollment
//! ```

use hrdm::prelude::*;
use hrdm::query::{
    explain_optimized, optimize, parse_expr, run_query_on_snapshot, IndexedRelations, QueryResult,
};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let era = Lifespan::interval(0, 100);

    // courses(CODE*) — DB taught on [0,30], re-offered on [60,90].
    let course_scheme = Scheme::builder()
        .key_attr("CODE", ValueKind::Str, era.clone())
        .build()?;
    let db_course = Tuple::builder(Lifespan::of(&[(0, 30), (60, 90)]))
        .constant("CODE", "DB")
        .finish(&course_scheme)?;
    let ai_course = Tuple::builder(Lifespan::interval(10, 50))
        .constant("CODE", "AI")
        .finish(&course_scheme)?;
    let courses = Relation::with_tuples(course_scheme, vec![db_course, ai_course])?;

    // enrollments(STUDENT*, COURSE, GRADED) — GRADED is *time-valued*: at
    // each time, the chronon the student's last grade was posted.
    let enr_scheme = Scheme::builder()
        .key_attr("STUDENT", ValueKind::Str, era.clone())
        .attr("COURSE", HistoricalDomain::string(), era.clone())
        .attr("GRADED", HistoricalDomain::time(), era.clone())
        .build()?;
    let ann = Tuple::builder(Lifespan::interval(5, 45))
        .constant("STUDENT", "Ann")
        .value(
            "COURSE",
            TemporalValue::of(&[(5, 25, Value::str("DB")), (26, 45, Value::str("AI"))]),
        )
        .value(
            "GRADED",
            TemporalValue::of(&[(5, 25, Value::time(20)), (26, 45, Value::time(40))]),
        )
        .finish(&enr_scheme)?;
    let bob = Tuple::builder(Lifespan::interval(20, 40))
        .constant("STUDENT", "Bob")
        .value(
            "COURSE",
            TemporalValue::of(&[(20, 40, Value::str("DB"))]), // DB ends at 30!
        )
        .value("GRADED", TemporalValue::of(&[(20, 40, Value::time(35))]))
        .finish(&enr_scheme)?;
    let enrollments = Relation::with_tuples(enr_scheme, vec![ann, bob])?;

    // ---- Temporal referential integrity ----------------------------------
    let fk = TemporalForeignKey::new(["COURSE"]);
    let violations = check_referential(&enrollments, &fk, &courses)?;
    println!("referential audit found {} violation(s):", violations.len());
    for v in &violations {
        println!("  {v}");
    }
    // Bob is enrolled in DB over [31,40] although DB isn't taught then.

    // ---- The query language ----------------------------------------------
    // The same parse → optimize → plan → evaluate pipeline the `hrdmq`
    // shell and the `hrdmd` server run, against an indexed source.
    let mut relations: BTreeMap<String, Relation> = BTreeMap::new();
    relations.insert("enrollments".into(), enrollments);
    relations.insert("courses".into(), courses);
    let source = IndexedRelations::new(relations);

    // When was anyone taking the DB course?
    if let QueryResult::Lifespan(l) = run_query_on_snapshot(
        "WHEN (SELECT-WHEN (COURSE = \"DB\") (enrollments))",
        &source,
    )? {
        println!("someone took DB during {l}");
    }

    // TIME-JOIN: pair each enrollment with the courses alive at its
    // grading chronons.
    if let QueryResult::Relation(r) =
        run_query_on_snapshot("enrollments TIMEJOIN@GRADED courses", &source)?
    {
        println!("TIMEJOIN@GRADED produced {} tuples:", r.len());
        for t in r.iter() {
            println!("  lifespan {}", t.lifespan());
        }
    }

    // ---- The optimizer at work -------------------------------------------
    let e = parse_expr(
        "TIMESLICE [0..25] (SELECT-WHEN (COURSE = \"DB\") (PROJECT [STUDENT, COURSE] (enrollments)))",
    )?;
    let (optimized, trace) = optimize(&e);
    println!("{}", explain_optimized(&e, &optimized, &trace));

    // Optimized and unoptimized agree, of course:
    let a = hrdm::query::eval_expr(&e, &source)?;
    let b = hrdm::query::eval_expr(&optimized, &source)?;
    assert_eq!(a, b);
    println!(
        "optimized plan returns the identical relation ({} tuples)",
        b.len()
    );

    Ok(())
}
