//! Quickstart: build a historical relation and run the paper's operators.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hrdm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A scheme R = <A, K, ALS, DOM> (paper §3) -------------------
    // emp(NAME*, SALARY, DEPT) over the company's recorded era [0, 100].
    let era = Lifespan::interval(0, 100);
    let scheme = Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era.clone()) // keys are constant-valued (CD)
        .attr("SALARY", HistoricalDomain::int(), era.clone())
        .attr("DEPT", HistoricalDomain::string(), era.clone())
        .build()?;

    // ---- 2. Tuples t = <v, l>: values are functions from time ----------
    let john_life = Lifespan::interval(0, 30);
    let john = Tuple::builder(john_life.clone())
        .constant("NAME", "John")
        .value(
            "SALARY",
            TemporalValue::of(&[
                (0, 14, Value::Int(25_000)),
                (15, 30, Value::Int(30_000)), // raise at time 15
            ]),
        )
        .value(
            "DEPT",
            TemporalValue::of(&[
                (0, 9, Value::str("Toys")),
                (10, 30, Value::str("Shoes")), // transfer at time 10
            ]),
        )
        .finish(&scheme)?;

    let mary_life = Lifespan::interval(5, 40);
    let mary = Tuple::builder(mary_life.clone())
        .constant("NAME", "Mary")
        .value(
            "SALARY",
            TemporalValue::constant(&mary_life, Value::Int(30_000)),
        )
        .value(
            "DEPT",
            TemporalValue::constant(&mary_life, Value::str("Toys")),
        )
        .finish(&scheme)?;

    let emp = Relation::with_tuples(scheme, vec![john, mary])?;
    println!("emp =\n{emp}");

    // ---- 3. SELECT-IF: whole objects (paper §4.3) -----------------------
    let earned_30k = Predicate::eq_value("SALARY", 30_000i64);
    let ever = select_if(&emp, &earned_30k, Quantifier::Exists, None)?;
    println!(
        "σ-IF(SALARY=30K, ∃): {} tuples (whole histories)",
        ever.len()
    );

    let always = select_if(&emp, &earned_30k, Quantifier::Forall, None)?;
    println!(
        "σ-IF(SALARY=30K, ∀): {} tuple(s) — only Mary always earned 30K",
        always.len()
    );

    // ---- 4. SELECT-WHEN: restrict lifespans to when it held -------------
    let whenever = select_when(&emp, &earned_30k)?;
    for t in whenever.iter() {
        println!(
            "σ-WHEN(SALARY=30K): {} over {}",
            t.at(&"NAME".into(), t.lifespan().first().unwrap()).unwrap(),
            t.lifespan()
        );
    }

    // ---- 5. WHEN (Ω): into the lifespan sort (paper §4.5) ---------------
    let when_30k = when(&whenever);
    println!("Ω(σ-WHEN(SALARY=30K)(emp)) = {when_30k}");

    // ---- 6. TIME-SLICE: the third dimension (paper §4.4) ----------------
    let snapshot_era = timeslice(&emp, &Lifespan::interval(10, 14));
    println!("τ_[10,14](emp) has lifespan {}", snapshot_era.lifespan());

    // ---- 7. PROJECT ------------------------------------------------------
    let names = project(&emp, &["NAME".into()])?;
    println!("π_NAME(emp): {} tuples", names.len());

    // ---- 8. The classical reduction (paper §5) ---------------------------
    // At any instant, the historical relation is an ordinary one:
    let now = Chronon::new(20);
    for row in emp.snapshot_at(now) {
        let cells: Vec<String> = row.iter().map(|(a, v)| format!("{a}={v}")).collect();
        println!("snapshot@{now}: {}", cells.join(", "));
    }

    Ok(())
}
