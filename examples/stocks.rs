//! Stocks: schema evolution via attribute lifespans (paper Fig. 6) and the
//! representation level (paper Fig. 9).
//!
//! DAILY-TRADING-VOLUME is recorded over `[0, 199]`, dropped ("too expensive
//! to collect"), and re-added from 500 on when a cheap source appears — all
//! expressed as edits to one attribute lifespan, with history retained.
//! Prices are stored sparsely at the representation level and completed by
//! interpolation.
//!
//! ```sh
//! cargo run --example stocks
//! ```

use hrdm::prelude::*;
use hrdm::storage::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let era = Lifespan::interval(0, 1000);
    let scheme = Scheme::builder()
        .key_attr("TICKER", ValueKind::Str, era.clone())
        .attr("PRICE", HistoricalDomain::int(), era.clone())
        .build()?;

    let mut db = Database::new();
    db.create_relation("stocks", scheme)?;

    // ---- Fig. 6: evolve the schema ---------------------------------------
    let vol = Attribute::new("DAILY_TRADING_VOLUME");
    db.catalog_mut().add_attribute(
        "stocks",
        vol.clone(),
        HistoricalDomain::int(),
        Chronon::new(0),
        Chronon::new(1000),
    )?;
    db.catalog_mut()
        .drop_attribute("stocks", &vol, Chronon::new(200))?;
    db.catalog_mut()
        .re_add_attribute("stocks", &vol, Chronon::new(500), Chronon::new(1000))?;

    let als = db.catalog().scheme("stocks").unwrap().als(&vol)?.clone();
    println!("ALS(DAILY_TRADING_VOLUME) after Fig. 6 evolution: {als}");
    println!("evolution log:");
    for ev in db.catalog().log() {
        println!("  {ev}");
    }

    // ---- The representation level (Fig. 9) -------------------------------
    // Closing prices sampled sparsely; step interpolation completes them.
    let samples = Represented::of(
        &[
            (0, Value::Int(100)),
            (50, Value::Int(110)),
            (300, Value::Int(90)),
            (700, Value::Int(130)),
        ],
        Interpolation::Step,
    );
    let price = samples.materialize(&Lifespan::interval(0, 1000))?;
    println!(
        "4 stored samples materialize to a total function over {} chronons ({} segments)",
        price.domain().cardinality(),
        price.segment_count()
    );

    // Insert the ACME tuple with that price history and a volume series
    // confined (by validation!) to the evolved attribute lifespan.
    let evolved = db.catalog().scheme("stocks").unwrap().clone();
    let acme_life = Lifespan::interval(0, 1000);
    let volume = TemporalValue::of(&[
        (0, 199, Value::Int(1_000_000)),    // while recorded
        (500, 1000, Value::Int(2_500_000)), // after re-adding
    ]);
    let acme = Tuple::builder(acme_life.clone())
        .constant("TICKER", "ACME")
        .value("PRICE", price)
        .value("DAILY_TRADING_VOLUME", volume)
        .finish(&evolved)?;
    db.put_relation("stocks", Relation::with_tuples(evolved, vec![acme])?)?;

    // Values inside the dropped window are simply undefined:
    let stocks = db.relation("stocks").unwrap();
    let acme = stocks.find_by_key(&[Value::str("ACME")]).unwrap();
    println!(
        "volume at t=100: {:?}, at t=300 (dropped era): {:?}, at t=600: {:?}",
        acme.at(&vol, Chronon::new(100)),
        acme.at(&vol, Chronon::new(300)),
        acme.at(&vol, Chronon::new(600)),
    );

    // ---- Persistence: the physical level ---------------------------------
    let dir = std::env::temp_dir().join(format!("hrdm-stocks-{}", std::process::id()));
    db.save(&dir)?;
    let reloaded = Database::load(&dir)?;
    assert_eq!(
        reloaded.relation("stocks").unwrap(),
        db.relation("stocks").unwrap()
    );
    println!("database round-tripped through {dir:?}");
    std::fs::remove_dir_all(&dir).ok();

    // Linear interpolation view of the same samples — a different
    // interpolation function, same stored data (paper §3's point: the model
    // level doesn't care how the value "is obtained").
    let linear = Represented::of(
        &[(0, Value::Int(100)), (10, Value::Int(120))],
        Interpolation::Linear,
    )
    .materialize(&Lifespan::interval(0, 10))?;
    println!(
        "linear price between samples: t=5 -> {:?}",
        linear.at(Chronon::new(5))
    );

    Ok(())
}
