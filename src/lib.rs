//! # HRDM — The Historical Relational Data Model and Algebra Based on Lifespans
//!
//! A comprehensive Rust implementation of Clifford & Croker's HRDM
//! (ICDE 1987): a temporal extension of the relational model in which
//! attribute values are functions from time into value domains, tuples and
//! scheme attributes carry orthogonal *lifespans*, and a full historical
//! relational algebra (SELECT-IF/SELECT-WHEN, TIME-SLICE, WHEN, the JOIN
//! family, object-based set operators) operates over them.
//!
//! This crate is a facade over the workspace:
//!
//! | Crate | Level (paper Fig. 9) | Contents |
//! |---|---|---|
//! | [`time`] (`hrdm-time`) | substrate | chronons, intervals, Allen relations, lifespans, granularities |
//! | [`core`] (`hrdm-core`) | model level | values, domains, temporal functions, schemes, tuples, relations, the algebra, temporal constraints |
//! | [`interp`] (`hrdm-interp`) | representation level | interpolation functions, sparse representations, change-point compression |
//! | [`storage`] (`hrdm-storage`) | physical level | binary codec, slotted pages, heap files, evolving-schema catalog, database persistence |
//! | [`index`] (`hrdm-index`) | physical level | access methods: lifespan interval index, constant-key index |
//! | [`query`] (`hrdm-query`) | — | a textual algebra language, evaluator, rewrite-rule optimizer, and index-aware access-path planner |
//! | [`net`] (`hrdm-net`) | — | the wire protocol, the `hrdmd` TCP server, the sync `Client`, and the `hrdmq` shell |
//! | [`baseline`] (`hrdm-baseline`) | comparators | classical snapshot model, tuple-timestamped model, cube model |
//!
//! Start with [`prelude`], the `examples/` directory, and `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hrdm_baseline as baseline;
pub use hrdm_core as core;
pub use hrdm_index as index;
pub use hrdm_interp as interp;
pub use hrdm_net as net;
pub use hrdm_query as query;
pub use hrdm_storage as storage;
pub use hrdm_time as time;

/// Everything needed by typical HRDM programs.
pub mod prelude {
    pub use hrdm_core::prelude::*;
    pub use hrdm_interp::{change_points, from_change_points, Interpolation, Represented};
    pub use hrdm_time::{AllenRelation, Granularity, Granule};
}
