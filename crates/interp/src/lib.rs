//! # hrdm-interp — the representation level of HRDM
//!
//! The paper's three-level architecture (Fig. 9) separates:
//!
//! * the **model level**, where every attribute value is a *total* function
//!   from `vls(t, A, R)` into a value domain;
//! * the **representation level**, where "these functions may be represented
//!   more succinctly using intervals and allowing for value interpolation";
//! * the physical level (see `hrdm-storage`).
//!
//! The bridge is the paper's **interpolation function**
//! `I : (S' → D) → (S → D)`: a value stored only at some sample times
//! `S' ⊆ S` is completed to a total function on `S`. This crate implements
//! that bridge:
//!
//! * [`Interpolation`] — the interpolation strategies (discrete, stepwise,
//!   nearest-neighbor, linear);
//! * [`Represented`] — a sparsely-sampled value plus its strategy, with
//!   [`Represented::materialize`] mapping it to a model-level
//!   [`hrdm_core::TemporalValue`];
//! * [`change_points`] / [`from_change_points`] — the inverse direction:
//!   extracting the succinct change-point representation from a model-level
//!   function and rebuilding it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress;
mod represented;
mod strategy;

pub use compress::{change_points, compression_ratio, from_change_points};
pub use represented::Represented;
pub use strategy::Interpolation;
