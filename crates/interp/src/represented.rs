//! The representation-level value: sparse samples plus a strategy.

use crate::Interpolation;
use hrdm_core::{Result, TemporalValue, Value};
use hrdm_time::{Chronon, Lifespan};
use std::fmt;

/// A representation-level value: the paper's "partially-represented
/// function" — a function from some `S' ⊆ S` to the value domain — together
/// with the interpolation function that completes it over `S`
/// (paper §3 / Fig. 9).
///
/// `Represented` is what the physical level stores; the model level sees the
/// [`TemporalValue`] produced by [`Represented::materialize`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Represented {
    samples: Vec<(Chronon, Value)>,
    strategy: Interpolation,
}

impl Represented {
    /// A represented value from samples and a strategy.
    pub fn new<I>(samples: I, strategy: Interpolation) -> Represented
    where
        I: IntoIterator<Item = (Chronon, Value)>,
    {
        let mut samples: Vec<(Chronon, Value)> = samples.into_iter().collect();
        samples.sort_by_key(|(t, _)| *t);
        Represented { samples, strategy }
    }

    /// Convenience constructor from `(tick, value)` pairs.
    pub fn of(raw: &[(i64, Value)], strategy: Interpolation) -> Represented {
        Represented::new(
            raw.iter().map(|(t, v)| (Chronon::new(*t), v.clone())),
            strategy,
        )
    }

    /// The stored samples, sorted by time.
    pub fn samples(&self) -> &[(Chronon, Value)] {
        &self.samples
    }

    /// The interpolation strategy.
    pub fn strategy(&self) -> Interpolation {
        self.strategy
    }

    /// Number of stored samples (the representation-level cost measure).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the representation empty?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The paper's interpolation map `I`: completes this partially-
    /// represented function to a model-level value over `target` (which in
    /// HRDM is `vls(t, A, R)`).
    pub fn materialize(&self, target: &Lifespan) -> Result<TemporalValue> {
        self.strategy.interpolate(&self.samples, target)
    }

    /// Records a new sample, keeping samples sorted.
    pub fn record(&mut self, t: Chronon, v: Value) {
        let idx = self.samples.partition_point(|(s, _)| *s < t);
        self.samples.insert(idx, (t, v));
    }
}

impl fmt::Display for Represented {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} samples via {}", self.samples.len(), self.strategy)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materializes_via_strategy() {
        let r = Represented::of(
            &[(0, Value::Int(25_000)), (10, Value::Int(30_000))],
            Interpolation::Step,
        );
        let f = r.materialize(&Lifespan::interval(0, 19)).unwrap();
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::Int(25_000)));
        assert_eq!(f.at(Chronon::new(15)), Some(&Value::Int(30_000)));
        // Two samples expand to a 20-chronon model-level function held in
        // two segments: the representation is the succinct one.
        assert_eq!(r.len(), 2);
        assert_eq!(f.domain().cardinality(), 20);
    }

    #[test]
    fn record_keeps_order() {
        let mut r = Represented::of(&[(10, Value::Int(2))], Interpolation::Step);
        r.record(Chronon::new(5), Value::Int(1));
        r.record(Chronon::new(15), Value::Int(3));
        let times: Vec<i64> = r.samples().iter().map(|(t, _)| t.tick()).collect();
        assert_eq!(times, vec![5, 10, 15]);
    }

    #[test]
    fn empty_representation() {
        let r = Represented::new([], Interpolation::Nearest);
        assert!(r.is_empty());
        assert!(r.materialize(&Lifespan::interval(0, 9)).unwrap().is_empty());
    }

    #[test]
    fn paper_example_constant_pair() {
        // The paper's `<[ti,tj], Codd>` example: a constant represented by a
        // single sample + step interpolation over the value lifespan.
        let r = Represented::of(&[(3, Value::str("Codd"))], Interpolation::Step);
        let f = r.materialize(&Lifespan::interval(3, 9)).unwrap();
        assert!(f.is_constant());
        assert_eq!(f.domain(), Lifespan::interval(3, 9));
    }

    #[test]
    fn display_mentions_strategy() {
        let r = Represented::of(&[(0, Value::Int(1))], Interpolation::Linear);
        assert_eq!(r.to_string(), "1 samples via linear");
    }
}
