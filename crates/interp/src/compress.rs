//! Model-level → representation-level compression: change points.
//!
//! A piecewise-constant model-level value is fully determined by (a) its
//! domain lifespan and (b) the value at the *start* of each constant
//! segment. [`change_points`] extracts those samples; [`from_change_points`]
//! rebuilds the original function by step interpolation over the domain —
//! an exact round trip, which the tests (and property tests) verify.

use crate::{Interpolation, Represented};
use hrdm_core::{Result, TemporalValue, Value};
use hrdm_time::{Chronon, Lifespan};

/// The change points of a model-level value: one `(time, value)` sample at
/// the start of each canonical segment.
pub fn change_points(tv: &TemporalValue) -> Vec<(Chronon, Value)> {
    tv.segments()
        .iter()
        .map(|(iv, v)| (iv.lo(), v.clone()))
        .collect()
}

/// Rebuilds a model-level value from change points and its domain lifespan
/// (step interpolation — exact inverse of [`change_points`]).
pub fn from_change_points(
    samples: &[(Chronon, Value)],
    domain: &Lifespan,
) -> Result<TemporalValue> {
    Represented::new(samples.iter().cloned(), Interpolation::Step).materialize(domain)
}

/// Model-level chronon count divided by representation-level sample count —
/// how much the representation level saves (≥ 1.0 for piecewise-constant
/// data; higher when values change rarely).
pub fn compression_ratio(tv: &TemporalValue) -> f64 {
    let cells = tv.domain().cardinality();
    let samples = tv.segment_count();
    if samples == 0 {
        1.0
    } else {
        cells as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_simple() {
        let tv = TemporalValue::of(&[(0, 9, Value::Int(25_000)), (10, 19, Value::Int(30_000))]);
        let pts = change_points(&tv);
        assert_eq!(pts.len(), 2);
        let back = from_change_points(&pts, &tv.domain()).unwrap();
        assert_eq!(back, tv);
    }

    #[test]
    fn round_trip_with_gaps_and_recurrence() {
        // Value changes, disappears (fired), and comes back at its old level:
        // the domain lifespan carries the gap, so the round trip is exact.
        let tv = TemporalValue::of(&[
            (0, 4, Value::Int(1)),
            (5, 9, Value::Int(2)),
            (20, 29, Value::Int(1)),
        ]);
        let back = from_change_points(&change_points(&tv), &tv.domain()).unwrap();
        assert_eq!(back, tv);
    }

    #[test]
    fn round_trip_empty() {
        let tv = TemporalValue::empty();
        let back = from_change_points(&change_points(&tv), &tv.domain()).unwrap();
        assert_eq!(back, tv);
    }

    #[test]
    fn compression_ratio_reflects_stability() {
        let stable = TemporalValue::of(&[(0, 99, Value::Int(1))]);
        assert_eq!(compression_ratio(&stable), 100.0);
        let mut volatile_segments = Vec::new();
        for t in 0..100 {
            volatile_segments.push((t, t, Value::Int(t)));
        }
        let volatile = TemporalValue::of(&volatile_segments);
        assert_eq!(compression_ratio(&volatile), 1.0);
        assert_eq!(compression_ratio(&TemporalValue::empty()), 1.0);
    }
}
