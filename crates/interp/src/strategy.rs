//! Interpolation strategies: the paper's `I : (S' → D) → (S → D)`.

use hrdm_core::{HrdmError, Result, TemporalValue, Value};
use hrdm_time::{Chronon, Interval, Lifespan};
use std::fmt;

/// How a sparsely-sampled value is completed to a total function over its
/// target lifespan (the paper's interpolation function, Fig. 9 / §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Interpolation {
    /// No interpolation: the value exists only at the sample points
    /// (events; "discrete" attributes in [Clifford 85]'s terminology).
    Discrete,
    /// Stepwise-constant: each sample persists until the next one. The
    /// natural semantics for state-like attributes (salary, department);
    /// undefined before the first sample.
    #[default]
    Step,
    /// Each time takes the value of the nearest sample (ties to the earlier
    /// one); total over the target whenever at least one sample exists.
    Nearest,
    /// Linear interpolation between consecutive numeric samples; exact at
    /// samples, undefined outside their hull. Integer samples round to the
    /// nearest integer; float samples stay floats. Errors on non-numeric
    /// values.
    Linear,
}

impl Interpolation {
    /// Completes `samples` (sample time → value; unsorted, duplicates by
    /// time rejected) to a function over `target`, per the strategy.
    ///
    /// The result is the paper's model-level value: total on as much of
    /// `target` as the strategy defines (Discrete/Step/Linear may leave
    /// undefined stretches; Nearest is total when any sample exists).
    pub fn interpolate(
        self,
        samples: &[(Chronon, Value)],
        target: &Lifespan,
    ) -> Result<TemporalValue> {
        let mut pts: Vec<(Chronon, Value)> = samples.to_vec();
        pts.sort_by_key(|(t, _)| *t);
        for w in pts.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                return Err(HrdmError::ConflictingSegments);
            }
        }
        pts.dedup_by(|a, b| a.0 == b.0);
        if pts.is_empty() || target.is_empty() {
            return Ok(TemporalValue::empty());
        }
        match self {
            Interpolation::Discrete => discrete(&pts, target),
            Interpolation::Step => step(&pts, target),
            Interpolation::Nearest => nearest(&pts, target),
            Interpolation::Linear => linear(&pts, target),
        }
    }
}

impl fmt::Display for Interpolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Interpolation::Discrete => "discrete",
            Interpolation::Step => "step",
            Interpolation::Nearest => "nearest",
            Interpolation::Linear => "linear",
        })
    }
}

fn discrete(pts: &[(Chronon, Value)], target: &Lifespan) -> Result<TemporalValue> {
    let tv =
        TemporalValue::from_segments(pts.iter().map(|(t, v)| (Interval::point(*t), v.clone())))?;
    Ok(tv.restrict(target))
}

fn step(pts: &[(Chronon, Value)], target: &Lifespan) -> Result<TemporalValue> {
    // Sample i persists on [t_i, t_{i+1} - 1]; the last one persists to the
    // end of the target.
    let Some(end) = target.last() else {
        return Ok(TemporalValue::empty());
    };
    let mut segs = Vec::with_capacity(pts.len());
    for (i, (t, v)) in pts.iter().enumerate() {
        let hi = match pts.get(i + 1) {
            Some((next, _)) => next.saturating_pred(),
            None => end.max_of(*t),
        };
        if let Some(iv) = Interval::new(*t, hi) {
            segs.push((iv, v.clone()));
        }
    }
    Ok(TemporalValue::from_segments(segs)?.restrict(target))
}

fn nearest(pts: &[(Chronon, Value)], target: &Lifespan) -> Result<TemporalValue> {
    let (Some(start), Some(end)) = (target.first(), target.last()) else {
        return Ok(TemporalValue::empty());
    };
    let lo_edge = start.min_of(pts[0].0);
    let hi_edge = end.max_of(pts[pts.len() - 1].0);
    let mut segs = Vec::with_capacity(pts.len());
    let mut cursor = lo_edge;
    for (i, (t, v)) in pts.iter().enumerate() {
        // This sample owns [cursor, boundary], where the boundary with the
        // next sample is the midpoint (ties to the earlier sample).
        let hi = match pts.get(i + 1) {
            Some((next, _)) => Chronon::new((t.tick() + next.tick()).div_euclid(2)),
            None => hi_edge,
        };
        if let Some(iv) = Interval::new(cursor, hi) {
            segs.push((iv, v.clone()));
            cursor = hi.saturating_succ();
        }
    }
    Ok(TemporalValue::from_segments(segs)?.restrict(target))
}

fn linear(pts: &[(Chronon, Value)], target: &Lifespan) -> Result<TemporalValue> {
    // Validate numeric kinds up front.
    for (_, v) in pts {
        if !matches!(v, Value::Int(_) | Value::Float(_)) {
            return Err(HrdmError::IncomparableValues {
                left: hrdm_core::ValueKind::Float,
                right: v.kind(),
            });
        }
    }
    let as_f64 = |v: &Value| -> f64 {
        match v {
            Value::Int(i) => *i as f64,
            Value::Float(f) => f.get(),
            _ => unreachable!("validated numeric"),
        }
    };
    let all_int = pts.iter().all(|(_, v)| matches!(v, Value::Int(_)));
    // Linear interpolation assigns a distinct value to (almost) every
    // chronon, so this is inherently per-point between samples; we clamp the
    // work to the target lifespan.
    let hull = Lifespan::interval(pts[0].0.tick(), pts[pts.len() - 1].0.tick());
    let window = target.intersect(&hull);
    let mut segs: Vec<(Interval, Value)> = Vec::new();
    let mut pair = 0usize;
    for t in window.iter() {
        while pair + 1 < pts.len() && pts[pair + 1].0 < t {
            pair += 1;
        }
        let (t0, v0) = &pts[pair];
        let value = if *t0 == t {
            v0.clone()
        } else {
            let (t1, v1) = &pts[pair + 1];
            if *t1 == t {
                v1.clone()
            } else {
                let frac = (t.tick() - t0.tick()) as f64 / (t1.tick() - t0.tick()) as f64;
                let y = as_f64(v0) + frac * (as_f64(v1) - as_f64(v0));
                if all_int {
                    Value::Int(y.round() as i64)
                } else {
                    Value::float(y)?
                }
            }
        };
        segs.push((Interval::point(t), value));
    }
    TemporalValue::from_segments(segs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(i64, i64)]) -> Vec<(Chronon, Value)> {
        raw.iter()
            .map(|&(t, v)| (Chronon::new(t), Value::Int(v)))
            .collect()
    }

    #[test]
    fn discrete_keeps_only_samples() {
        let f = Interpolation::Discrete
            .interpolate(&pts(&[(2, 10), (5, 20)]), &Lifespan::interval(0, 9))
            .unwrap();
        assert_eq!(f.at(Chronon::new(2)), Some(&Value::Int(10)));
        assert_eq!(f.at(Chronon::new(3)), None);
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::Int(20)));
        assert_eq!(f.domain().cardinality(), 2);
    }

    #[test]
    fn step_persists_until_next_sample() {
        let f = Interpolation::Step
            .interpolate(&pts(&[(2, 10), (5, 20)]), &Lifespan::interval(0, 9))
            .unwrap();
        assert_eq!(f.at(Chronon::new(1)), None); // before first sample
        assert_eq!(f.at(Chronon::new(2)), Some(&Value::Int(10)));
        assert_eq!(f.at(Chronon::new(4)), Some(&Value::Int(10)));
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::Int(20)));
        assert_eq!(f.at(Chronon::new(9)), Some(&Value::Int(20))); // persists to target end
        assert_eq!(f.at(Chronon::new(10)), None); // clipped to target
    }

    #[test]
    fn step_respects_fragmented_target() {
        let target = Lifespan::of(&[(0, 3), (8, 9)]);
        let f = Interpolation::Step
            .interpolate(&pts(&[(2, 10), (5, 20)]), &target)
            .unwrap();
        assert_eq!(f.domain(), Lifespan::of(&[(2, 3), (8, 9)]));
        assert_eq!(f.at(Chronon::new(8)), Some(&Value::Int(20)));
    }

    #[test]
    fn nearest_is_total_and_ties_to_earlier() {
        let f = Interpolation::Nearest
            .interpolate(&pts(&[(2, 10), (6, 20)]), &Lifespan::interval(0, 9))
            .unwrap();
        // Total over the target.
        assert_eq!(f.domain(), Lifespan::interval(0, 9));
        assert_eq!(f.at(Chronon::new(0)), Some(&Value::Int(10))); // extends left
        assert_eq!(f.at(Chronon::new(3)), Some(&Value::Int(10)));
        assert_eq!(f.at(Chronon::new(4)), Some(&Value::Int(10))); // midpoint ties earlier
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::Int(20)));
        assert_eq!(f.at(Chronon::new(9)), Some(&Value::Int(20))); // extends right
    }

    #[test]
    fn linear_interpolates_between_numeric_samples() {
        let f = Interpolation::Linear
            .interpolate(&pts(&[(0, 10), (10, 20)]), &Lifespan::interval(0, 10))
            .unwrap();
        assert_eq!(f.at(Chronon::new(0)), Some(&Value::Int(10)));
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::Int(15)));
        assert_eq!(f.at(Chronon::new(10)), Some(&Value::Int(20)));
        assert_eq!(f.at(Chronon::new(3)), Some(&Value::Int(13)));
        // No extrapolation.
        let g = Interpolation::Linear
            .interpolate(&pts(&[(2, 10), (4, 20)]), &Lifespan::interval(0, 9))
            .unwrap();
        assert_eq!(g.domain(), Lifespan::interval(2, 4));
    }

    #[test]
    fn linear_floats_stay_floats() {
        let samples = vec![
            (Chronon::new(0), Value::float(1.0).unwrap()),
            (Chronon::new(2), Value::float(2.0).unwrap()),
        ];
        let f = Interpolation::Linear
            .interpolate(&samples, &Lifespan::interval(0, 2))
            .unwrap();
        assert_eq!(f.at(Chronon::new(1)), Some(&Value::float(1.5).unwrap()));
    }

    #[test]
    fn linear_rejects_non_numeric() {
        let samples = vec![(Chronon::new(0), Value::str("x"))];
        assert!(Interpolation::Linear
            .interpolate(&samples, &Lifespan::interval(0, 2))
            .is_err());
    }

    #[test]
    fn conflicting_duplicate_samples_rejected_equal_ones_merged() {
        let conflicting = vec![
            (Chronon::new(1), Value::Int(1)),
            (Chronon::new(1), Value::Int(2)),
        ];
        assert!(Interpolation::Step
            .interpolate(&conflicting, &Lifespan::interval(0, 5))
            .is_err());
        let duplicated = vec![
            (Chronon::new(1), Value::Int(1)),
            (Chronon::new(1), Value::Int(1)),
        ];
        assert!(Interpolation::Step
            .interpolate(&duplicated, &Lifespan::interval(0, 5))
            .is_ok());
    }

    #[test]
    fn empty_inputs_give_empty_functions() {
        for strat in [
            Interpolation::Discrete,
            Interpolation::Step,
            Interpolation::Nearest,
            Interpolation::Linear,
        ] {
            assert!(strat
                .interpolate(&[], &Lifespan::interval(0, 5))
                .unwrap()
                .is_empty());
            assert!(strat
                .interpolate(&pts(&[(1, 1)]), &Lifespan::empty())
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn single_sample_behaviour_differs_by_strategy() {
        let samples = pts(&[(5, 42)]);
        let target = Lifespan::interval(0, 9);
        let d = Interpolation::Discrete
            .interpolate(&samples, &target)
            .unwrap();
        assert_eq!(d.domain().cardinality(), 1);
        let s = Interpolation::Step.interpolate(&samples, &target).unwrap();
        assert_eq!(s.domain(), Lifespan::interval(5, 9));
        let n = Interpolation::Nearest
            .interpolate(&samples, &target)
            .unwrap();
        assert_eq!(n.domain(), target);
        let l = Interpolation::Linear
            .interpolate(&samples, &target)
            .unwrap();
        assert_eq!(l.domain().cardinality(), 1);
    }

    #[test]
    fn all_strategies_agree_at_sample_points() {
        let samples = pts(&[(1, 10), (4, 40), (9, 90)]);
        let target = Lifespan::interval(0, 10);
        for strat in [
            Interpolation::Discrete,
            Interpolation::Step,
            Interpolation::Nearest,
            Interpolation::Linear,
        ] {
            let f = strat.interpolate(&samples, &target).unwrap();
            for (t, v) in &samples {
                assert_eq!(f.at(*t), Some(v), "{strat} at {t:?}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Interpolation::Step.to_string(), "step");
        assert_eq!(Interpolation::Linear.to_string(), "linear");
    }
}
