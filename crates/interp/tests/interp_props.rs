//! Property tests for the representation level: the interpolation map and
//! the change-point compression are exact inverses where the paper requires
//! them to be.

use hrdm_core::{TemporalValue, Value};
use hrdm_interp::{change_points, from_change_points, Interpolation, Represented};
use hrdm_time::{Chronon, Interval, Lifespan};
use proptest::prelude::*;

/// Arbitrary piecewise-constant temporal value over a small universe.
fn temporal_value_strategy() -> impl Strategy<Value = TemporalValue> {
    prop::collection::vec(((0i64..60), (0i64..8), (0i64..5)), 0..8).prop_map(|trip| {
        // Build non-conflicting segments by construction: place them end to
        // end with gaps.
        let mut segs = Vec::new();
        let mut cursor = 0i64;
        for (gap, len, v) in trip {
            let lo = cursor + (gap % 7);
            let hi = lo + len;
            segs.push((Interval::of(lo, hi), Value::Int(v)));
            cursor = hi + 2; // keep a hole so segments stay disjoint & non-adjacent sometimes
        }
        TemporalValue::from_segments(segs).expect("disjoint segments by construction")
    })
}

fn samples_strategy() -> impl Strategy<Value = Vec<(Chronon, Value)>> {
    prop::collection::btree_map(0i64..80, 0i64..6, 0..10).prop_map(|m| {
        m.into_iter()
            .map(|(t, v)| (Chronon::new(t), Value::Int(v)))
            .collect()
    })
}

fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((0i64..80, 0i64..10), 0..5).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, lo + len)),
        )
    })
}

proptest! {
    #[test]
    fn change_point_round_trip_is_exact(tv in temporal_value_strategy()) {
        let back = from_change_points(&change_points(&tv), &tv.domain()).unwrap();
        prop_assert_eq!(back, tv);
    }

    #[test]
    fn interpolation_domain_is_within_target(
        samples in samples_strategy(),
        target in lifespan_strategy(),
    ) {
        for strat in [
            Interpolation::Discrete,
            Interpolation::Step,
            Interpolation::Nearest,
            Interpolation::Linear,
        ] {
            let f = strat.interpolate(&samples, &target).unwrap();
            prop_assert!(
                target.contains_lifespan(&f.domain()),
                "{strat}: domain {:?} escapes target {:?}", f.domain(), target
            );
        }
    }

    #[test]
    fn interpolation_is_exact_at_samples(
        samples in samples_strategy(),
        target in lifespan_strategy(),
    ) {
        for strat in [
            Interpolation::Discrete,
            Interpolation::Step,
            Interpolation::Nearest,
            Interpolation::Linear,
        ] {
            let f = strat.interpolate(&samples, &target).unwrap();
            for (t, v) in &samples {
                if target.contains(*t) {
                    prop_assert_eq!(f.at(*t), Some(v), "{} at {:?}", strat, t);
                }
            }
        }
    }

    #[test]
    fn nearest_is_total_when_samples_exist(
        samples in samples_strategy(),
        target in lifespan_strategy(),
    ) {
        prop_assume!(!samples.is_empty());
        let f = Interpolation::Nearest.interpolate(&samples, &target).unwrap();
        prop_assert_eq!(f.domain(), target);
    }

    #[test]
    fn step_subsumes_discrete(
        samples in samples_strategy(),
        target in lifespan_strategy(),
    ) {
        let d = Interpolation::Discrete.interpolate(&samples, &target).unwrap();
        let s = Interpolation::Step.interpolate(&samples, &target).unwrap();
        // Everywhere discrete is defined, step agrees.
        for (t, v) in d.iter_points() {
            prop_assert_eq!(s.at(t), Some(v));
        }
        prop_assert!(s.domain().contains_lifespan(&d.domain()));
    }

    #[test]
    fn materialize_respects_strategy_choice(
        samples in samples_strategy(),
        target in lifespan_strategy(),
    ) {
        for strat in [Interpolation::Discrete, Interpolation::Step, Interpolation::Nearest] {
            let r = Represented::new(samples.iter().cloned(), strat);
            let direct = strat.interpolate(&samples, &target).unwrap();
            prop_assert_eq!(r.materialize(&target).unwrap(), direct);
        }
    }
}
