//! An on-disk B+tree keyed by (birth-chronon, position): the lifespan
//! index that lets cold partitions answer TIMESLICE pruning without
//! being resident.
//!
//! The tree is *static*: it is bulk-loaded at checkpoint time from the
//! relation's (birth, position) pairs, written once, and only ever read
//! afterwards (the next checkpoint writes a new file; clean epochs are
//! carried over as hard links, exactly like partition heaps). That
//! sidesteps split/merge machinery entirely while giving the read path
//! a real disk-resident index: a range probe faults in `height` + a few
//! leaf pages through the buffer pool, never the whole file.
//!
//! # Layout
//!
//! All pages are [`PAGE_SIZE`] bytes and go through the buffer pool,
//! which owns the checksum bytes at `[4..8)` of every page
//! ([`crate::page::Page::seal`] on write-back, verify on fault) — the node layouts
//! below simply leave that range zero.
//!
//! ```text
//! page 0 (meta):  [0..4)   zero (reserved: 4..8 is the pool checksum)
//!                 [8..12)  magic "HBTX"
//!                 [12..16) version (1)
//!                 [16..20) root page
//!                 [20..24) height (0 = empty, 1 = root is a leaf)
//!                 [24..32) entry count
//!                 [32..36) leaf fanout      [36..40) internal fanout
//!
//! node header:    [0]      node type (1 = leaf, 2 = internal)
//!                 [1..3)   entry count
//!                 [4..8)   pool checksum (reserved)
//!                 [8..12)  leaf: next-leaf page (0 = none); internal: 0
//!
//! leaf entry      (12 B):  birth i64 | position u32
//! internal entry  (16 B):  first_birth i64 | first_pos u32 | child u32
//! ```
//!
//! Keys are `(birth, position)` ordered lexicographically; an internal
//! entry holds the *first* key of its child, so descent picks the last
//! child whose first key is `<=` the probe.

use crate::page::PAGE_SIZE;
use crate::pool::{BufferPool, PoolFileId};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"HBTX";
const VERSION: u32 = 1;

const NODE_HEADER: usize = 12;
const LEAF_ENTRY: usize = 12;
const INTERNAL_ENTRY: usize = 16;
const LEAF_NODE: u8 = 1;
const INTERNAL_NODE: u8 = 2;

/// Maximum entries per leaf page: (8192 - 12) / 12 = 681.
pub const LEAF_FANOUT: usize = (PAGE_SIZE - NODE_HEADER) / LEAF_ENTRY;
/// Maximum entries per internal page: (8192 - 12) / 16 = 511.
pub const INTERNAL_FANOUT: usize = (PAGE_SIZE - NODE_HEADER) / INTERNAL_ENTRY;

/// A read-only, bulk-loaded on-disk B+tree over (birth, position) keys.
pub struct LifespanBTree {
    pool: Arc<BufferPool>,
    file: PoolFileId,
    path: PathBuf,
    root: u32,
    height: u32,
    count: u64,
    leaf_fanout: usize,
    internal_fanout: usize,
}

impl LifespanBTree {
    /// Bulk-loads a tree from `entries` — sorted in place by
    /// (birth, position) — and writes it to `path` (truncating) through
    /// `pool`, flushed and fsynced before returning.
    pub fn build(
        path: &Path,
        pool: Arc<BufferPool>,
        entries: &mut [(i64, u32)],
    ) -> io::Result<LifespanBTree> {
        Self::build_with_fanout(path, pool, entries, LEAF_FANOUT, INTERNAL_FANOUT)
    }

    /// [`LifespanBTree::build`] with explicit fanouts, so tests can force
    /// multi-level trees from small inputs. Fanouts are clamped to
    /// `2..=` the page-layout maximum.
    pub fn build_with_fanout(
        path: &Path,
        pool: Arc<BufferPool>,
        entries: &mut [(i64, u32)],
        leaf_fanout: usize,
        internal_fanout: usize,
    ) -> io::Result<LifespanBTree> {
        let leaf_fanout = leaf_fanout.clamp(2, LEAF_FANOUT);
        let internal_fanout = internal_fanout.clamp(2, INTERNAL_FANOUT);
        entries.sort_unstable();
        let file = pool.create(path)?;
        // Page 0 is the meta page; write it last, once root is known.
        let (meta_no, _meta_guard) = pool.alloc(file)?;
        debug_assert_eq!(meta_no, 0);
        drop(_meta_guard);

        // Level 0: the leaves, chained left to right.
        let mut level: Vec<((i64, u32), u32)> = Vec::new(); // (first key, page)
        let mut chunk_start = 0usize;
        while chunk_start < entries.len() {
            let chunk = &entries[chunk_start..(chunk_start + leaf_fanout).min(entries.len())];
            let (page_no, guard) = pool.alloc(file)?;
            {
                let mut page = guard.write();
                let bytes = page.bytes_mut();
                bytes[0] = LEAF_NODE;
                bytes[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                // next-leaf filled in below once the neighbour exists.
                for (i, &(birth, pos)) in chunk.iter().enumerate() {
                    let at = NODE_HEADER + i * LEAF_ENTRY;
                    bytes[at..at + 8].copy_from_slice(&birth.to_le_bytes());
                    bytes[at + 8..at + 12].copy_from_slice(&pos.to_le_bytes());
                }
            }
            if let Some(&(_, prev)) = level.last() {
                let prev_guard = pool.get(file, prev)?;
                prev_guard.write().bytes_mut()[8..12].copy_from_slice(&page_no.to_le_bytes());
            }
            level.push((chunk[0], page_no));
            chunk_start += chunk.len();
        }

        // Internal levels until a single root remains.
        let mut height: u32 = if level.is_empty() { 0 } else { 1 };
        while level.len() > 1 {
            let mut next: Vec<((i64, u32), u32)> = Vec::new();
            let mut at = 0usize;
            while at < level.len() {
                let chunk = &level[at..(at + internal_fanout).min(level.len())];
                let (page_no, guard) = pool.alloc(file)?;
                let mut page = guard.write();
                let bytes = page.bytes_mut();
                bytes[0] = INTERNAL_NODE;
                bytes[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (i, &((birth, pos), child)) in chunk.iter().enumerate() {
                    let base = NODE_HEADER + i * INTERNAL_ENTRY;
                    bytes[base..base + 8].copy_from_slice(&birth.to_le_bytes());
                    bytes[base + 8..base + 12].copy_from_slice(&pos.to_le_bytes());
                    bytes[base + 12..base + 16].copy_from_slice(&page_no_bytes(child));
                }
                next.push((chunk[0].0, page_no));
                at += chunk.len();
            }
            level = next;
            height += 1;
        }
        let root = level.first().map_or(0, |&(_, p)| p);

        // Meta page.
        {
            let guard = pool.get(file, 0)?;
            let mut page = guard.write();
            let bytes = page.bytes_mut();
            bytes[8..12].copy_from_slice(MAGIC);
            bytes[12..16].copy_from_slice(&VERSION.to_le_bytes());
            bytes[16..20].copy_from_slice(&root.to_le_bytes());
            bytes[20..24].copy_from_slice(&height.to_le_bytes());
            bytes[24..32].copy_from_slice(&(entries.len() as u64).to_le_bytes());
            bytes[32..36].copy_from_slice(&(leaf_fanout as u32).to_le_bytes());
            bytes[36..40].copy_from_slice(&(internal_fanout as u32).to_le_bytes());
        }
        pool.flush(file)?;
        Ok(LifespanBTree {
            pool,
            file,
            path: path.to_path_buf(),
            root,
            height,
            count: entries.len() as u64,
            leaf_fanout,
            internal_fanout,
        })
    }

    /// Opens an existing tree, reading only the meta page.
    pub fn open(path: &Path, pool: Arc<BufferPool>) -> io::Result<LifespanBTree> {
        let file = pool.open(path)?;
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {msg}", path.display()),
            )
        };
        if pool.page_count(file)? == 0 {
            pool.close(file);
            return Err(bad("missing B+tree meta page"));
        }
        let (root, height, count, leaf_fanout, internal_fanout) = {
            let guard = pool.get(file, 0).inspect_err(|_| pool.close(file))?;
            let page = guard.read();
            let bytes = page.bytes();
            if &bytes[8..12] != MAGIC {
                drop(page);
                drop(guard);
                pool.close(file);
                return Err(bad("bad B+tree magic"));
            }
            let version = u32_at(bytes, 12);
            if version != VERSION {
                drop(page);
                drop(guard);
                pool.close(file);
                return Err(bad("unsupported B+tree version"));
            }
            (
                u32_at(bytes, 16),
                u32_at(bytes, 20),
                u64::from_le_bytes([
                    bytes[24], bytes[25], bytes[26], bytes[27], bytes[28], bytes[29], bytes[30],
                    bytes[31],
                ]),
                u32_at(bytes, 32) as usize,
                u32_at(bytes, 36) as usize,
            )
        };
        if leaf_fanout < 2 || internal_fanout < 2 || leaf_fanout > LEAF_FANOUT {
            pool.close(file);
            return Err(bad("implausible B+tree fanout"));
        }
        Ok(LifespanBTree {
            pool,
            file,
            path: path.to_path_buf(),
            root,
            height,
            count,
            leaf_fanout,
            internal_fanout,
        })
    }

    /// Total (birth, position) entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tree height (0 = empty, 1 = single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The tree's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The pool handle, for per-file fault accounting in tests.
    pub fn pool_file(&self) -> PoolFileId {
        self.file
    }

    /// Positions of every entry with birth chronon in `lo..=hi`,
    /// ascending by (birth, position). Faults in one root-to-leaf path
    /// plus the leaves the range actually spans.
    pub fn range_positions(&self, lo: i64, hi: i64) -> io::Result<Vec<u32>> {
        let mut out = Vec::new();
        if self.count == 0 || lo > hi {
            return Ok(out);
        }
        let probe = (lo, 0u32);
        // Descend to the leaf that could hold the first key >= probe.
        let mut page_no = self.root;
        for _ in 1..self.height {
            let guard = self.pool.get(self.file, page_no)?;
            let page = guard.read();
            let bytes = page.bytes();
            if bytes[0] != INTERNAL_NODE {
                return Err(self.corrupt(page_no, "expected internal node"));
            }
            let n = (u16::from_le_bytes([bytes[1], bytes[2]]) as usize).min(self.internal_fanout);
            if n == 0 {
                return Err(self.corrupt(page_no, "empty internal node"));
            }
            // Last child whose first key <= probe (else the first child).
            let mut child = u32_at(bytes, NODE_HEADER + 12);
            for i in 0..n {
                let base = NODE_HEADER + i * INTERNAL_ENTRY;
                let key = (
                    i64::from_le_bytes([
                        bytes[base],
                        bytes[base + 1],
                        bytes[base + 2],
                        bytes[base + 3],
                        bytes[base + 4],
                        bytes[base + 5],
                        bytes[base + 6],
                        bytes[base + 7],
                    ]),
                    u32_at(bytes, base + 8),
                );
                if i > 0 && key > probe {
                    break;
                }
                child = u32_at(bytes, base + 12);
            }
            page_no = child;
        }
        // Walk the leaf chain while keys stay within (hi, u32::MAX).
        loop {
            let guard = self.pool.get(self.file, page_no)?;
            let page = guard.read();
            let bytes = page.bytes();
            if bytes[0] != LEAF_NODE {
                return Err(self.corrupt(page_no, "expected leaf node"));
            }
            let n = (u16::from_le_bytes([bytes[1], bytes[2]]) as usize).min(self.leaf_fanout);
            let mut past_end = false;
            for i in 0..n {
                let at = NODE_HEADER + i * LEAF_ENTRY;
                let birth = i64::from_le_bytes([
                    bytes[at],
                    bytes[at + 1],
                    bytes[at + 2],
                    bytes[at + 3],
                    bytes[at + 4],
                    bytes[at + 5],
                    bytes[at + 6],
                    bytes[at + 7],
                ]);
                if birth > hi {
                    past_end = true;
                    break;
                }
                if birth >= lo {
                    out.push(u32_at(bytes, at + 8));
                }
            }
            if past_end {
                break;
            }
            let next = u32_at(bytes, 8);
            if next == 0 {
                break;
            }
            page_no = next;
        }
        Ok(out)
    }

    fn corrupt(&self, page_no: u32, msg: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: page {page_no}: {msg}", self.path.display()),
        )
    }
}

impl std::fmt::Debug for LifespanBTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LifespanBTree")
            .field("path", &self.path)
            .field("count", &self.count)
            .field("height", &self.height)
            .finish()
    }
}

impl Drop for LifespanBTree {
    fn drop(&mut self) {
        self.pool.close(self.file);
    }
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn page_no_bytes(p: u32) -> [u8; 4] {
    p.to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-btx-{}-{name}", std::process::id()));
        p
    }

    fn reference_range(entries: &[(i64, u32)], lo: i64, hi: i64) -> Vec<u32> {
        let mut v: Vec<(i64, u32)> = entries
            .iter()
            .copied()
            .filter(|&(b, _)| b >= lo && b <= hi)
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, p)| p).collect()
    }

    #[test]
    fn empty_tree_round_trip() {
        let path = tmp("empty");
        let pool = BufferPool::new(8);
        {
            let t = LifespanBTree::build(&path, Arc::clone(&pool), &mut Vec::new()).unwrap();
            assert!(t.is_empty());
            assert_eq!(t.range_positions(i64::MIN, i64::MAX).unwrap(), vec![]);
        }
        let t = LifespanBTree::open(&path, pool).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        assert_eq!(t.range_positions(0, 100).unwrap(), vec![]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn single_leaf_ranges() {
        let path = tmp("leaf");
        let pool = BufferPool::new(8);
        let mut entries: Vec<(i64, u32)> = (0..100).map(|i| (i64::from(i) * 3, i)).collect();
        let reference = entries.clone();
        let t = LifespanBTree::build(&path, pool, &mut entries).unwrap();
        assert_eq!(t.height(), 1);
        for (lo, hi) in [(0, 297), (5, 50), (-10, -1), (298, 400), (30, 30)] {
            assert_eq!(
                t.range_positions(lo, hi).unwrap(),
                reference_range(&reference, lo, hi),
                "range {lo}..={hi}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn multi_level_tree_matches_reference() {
        let path = tmp("multi");
        let pool = BufferPool::new(16);
        // Duplicate births, shuffled positions; tiny fanouts force
        // height >= 3 from 500 entries.
        let mut entries: Vec<(i64, u32)> =
            (0..500u32).map(|i| (i64::from(i % 50), 499 - i)).collect();
        let reference = entries.clone();
        let t =
            LifespanBTree::build_with_fanout(&path, Arc::clone(&pool), &mut entries, 4, 3).unwrap();
        assert!(t.height() >= 3, "height: {}", t.height());
        for (lo, hi) in [
            (i64::MIN, i64::MAX),
            (0, 49),
            (10, 20),
            (49, 49),
            (50, 100),
            (-5, 0),
        ] {
            assert_eq!(
                t.range_positions(lo, hi).unwrap(),
                reference_range(&reference, lo, hi),
                "range {lo}..={hi}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reopen_under_tiny_pool() {
        let path = tmp("reopen");
        let build_pool = BufferPool::new(32);
        let mut entries: Vec<(i64, u32)> = (0..2000u32).map(|i| (i64::from(i / 7), i)).collect();
        let reference = entries.clone();
        drop(LifespanBTree::build_with_fanout(&path, build_pool, &mut entries, 8, 4).unwrap());
        // Read back through a 2-frame pool: every probe faults its path.
        let pool = BufferPool::new(2);
        let t = LifespanBTree::open(&path, Arc::clone(&pool)).unwrap();
        assert_eq!(t.len(), 2000);
        for (lo, hi) in [(0, 285), (100, 101), (0, 0), (285, 285), (290, 400)] {
            assert_eq!(
                t.range_positions(lo, hi).unwrap(),
                reference_range(&reference, lo, hi),
                "range {lo}..={hi}"
            );
        }
        assert!(pool.stats().evictions > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_file() {
        let path = tmp("garbage");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        let pool = BufferPool::new(4);
        // Page 0 is all zeros: the pool's checksum check happens to pass
        // only for properly sealed pages, so this fails either at fault
        // (bad checksum) or at magic validation.
        assert!(LifespanBTree::open(&path, pool).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn extreme_key_ranges() {
        let path = tmp("extreme");
        let pool = BufferPool::new(8);
        let mut entries = vec![(i64::MIN, 0u32), (-1, 1), (0, 2), (1, 3), (i64::MAX, 4)];
        let reference = entries.clone();
        let t = LifespanBTree::build_with_fanout(&path, pool, &mut entries, 2, 2).unwrap();
        for (lo, hi) in [
            (i64::MIN, i64::MAX),
            (i64::MIN, i64::MIN),
            (i64::MAX, i64::MAX),
            (-1, 1),
            (2, i64::MAX),
        ] {
            assert_eq!(
                t.range_positions(lo, hi).unwrap(),
                reference_range(&reference, lo, hi),
                "range {lo}..={hi}"
            );
        }
        // Inverted range is empty, not an error.
        assert_eq!(t.range_positions(10, -10).unwrap(), vec![]);
        std::fs::remove_file(path).ok();
    }
}
