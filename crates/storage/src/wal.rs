//! A write-ahead log for incremental durability.
//!
//! [`crate::Database::save`] rewrites whole heap files; the WAL is its
//! incremental companion: an attached [`crate::Database`] (see
//! [`crate::Database::open`]) appends every mutation as a checksummed,
//! fsync'd record before acknowledging it, and [`Wal::replay`] restores the
//! sequence after a crash. Torn tails (a partially-written final record)
//! are detected by the per-record CRC and truncated away — the classical
//! recovery contract. A checkpoint rotates to a fresh log (see the
//! epoch protocol in [`crate::Database::checkpoint`]).
//!
//! Record layout: `len: u32 | payload | crc32(payload): u32`.
//!
//! ## Group-commit batch frames
//!
//! [`Wal::append_batch`] writes a **multi-record batch frame**: every record
//! keeps its own `len | payload | crc` framing, but the whole batch is
//! assembled into one buffer, written with a single `write` and made durable
//! with a single fsync. This is the storage half of group commit — `k`
//! concurrent writers pay one fsync instead of `k`.
//!
//! Because each record in the frame is individually checksummed, replay
//! needs no batch awareness: a crash mid-batch leaves a clean **prefix** of
//! the batch on disk (the torn record is detected by its CRC and truncated
//! away). That prefix is exactly the recovery contract group commit needs —
//! no record of the batch was acknowledged before the whole frame was
//! fsync'd, so recovering a prefix of it never loses an acknowledged write,
//! and recovered state is always prefix-consistent with commit order.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::page::crc32;
use hrdm_core::{Attribute, HistoricalDomain, Relation, Scheme, Tuple};
use hrdm_time::Chronon;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Record tags (named so encode and decode cannot drift apart).
const TAG_INSERT: u8 = 1;
const TAG_PUT_RELATION: u8 = 5;

/// One logged mutation.
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// A relation was created with the given scheme.
    CreateRelation {
        /// Relation name.
        name: String,
        /// Its scheme.
        scheme: Scheme,
    },
    /// A tuple was inserted.
    Insert {
        /// Target relation.
        relation: String,
        /// The tuple.
        tuple: Tuple,
    },
    /// An attribute was added (schema evolution).
    AddAttribute {
        /// Target relation.
        relation: String,
        /// New attribute.
        attribute: Attribute,
        /// Its domain.
        domain: HistoricalDomain,
        /// Lifespan start.
        from: Chronon,
        /// Lifespan end.
        to: Chronon,
    },
    /// An attribute was dropped as of a chronon (schema evolution).
    DropAttribute {
        /// Target relation.
        relation: String,
        /// Dropped attribute.
        attribute: Attribute,
        /// Drop time.
        at: Chronon,
    },
    /// A dropped attribute was re-added over a period (schema evolution).
    ReAddAttribute {
        /// Target relation.
        relation: String,
        /// Re-added attribute.
        attribute: Attribute,
        /// First chronon of the new period.
        from: Chronon,
        /// Last chronon of the new period.
        to: Chronon,
    },
    /// A relation's contents were replaced wholesale (e.g. with a query
    /// result). Carries the replacement's scheme so the record is
    /// self-describing on replay; `Database::put_relation` guarantees it
    /// equals the catalog scheme at log time (divergent contents could
    /// not survive a checkpoint + open round trip).
    PutRelation {
        /// Target relation.
        relation: String,
        /// The replacement contents.
        contents: Relation,
    },
}

impl WalRecord {
    /// The record's encoded payload bytes — what one frame of the log (or
    /// of a batch frame) carries between its length prefix and its CRC.
    pub(crate) fn payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish()
    }

    fn encode(&self, e: &mut Encoder) {
        match self {
            WalRecord::CreateRelation { name, scheme } => {
                e.put_u8(0);
                e.put_str(name);
                e.put_scheme(scheme);
            }
            WalRecord::Insert { relation, tuple } => {
                e.put_u8(TAG_INSERT);
                e.put_str(relation);
                e.put_tuple(tuple);
            }
            WalRecord::AddAttribute {
                relation,
                attribute,
                domain,
                from,
                to,
            } => {
                e.put_u8(2);
                e.put_str(relation);
                e.put_str(attribute.name());
                e.put_domain(domain);
                e.put_chronon(*from);
                e.put_chronon(*to);
            }
            WalRecord::DropAttribute {
                relation,
                attribute,
                at,
            } => {
                e.put_u8(3);
                e.put_str(relation);
                e.put_str(attribute.name());
                e.put_chronon(*at);
            }
            WalRecord::ReAddAttribute {
                relation,
                attribute,
                from,
                to,
            } => {
                e.put_u8(4);
                e.put_str(relation);
                e.put_str(attribute.name());
                e.put_chronon(*from);
                e.put_chronon(*to);
            }
            WalRecord::PutRelation { relation, contents } => {
                e.put_u8(TAG_PUT_RELATION);
                e.put_str(relation);
                e.put_relation(contents);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<WalRecord, CodecError> {
        match d.get_u8()? {
            0 => Ok(WalRecord::CreateRelation {
                name: d.get_str()?.to_string(),
                scheme: d.get_scheme()?,
            }),
            TAG_INSERT => Ok(WalRecord::Insert {
                relation: d.get_str()?.to_string(),
                tuple: d.get_tuple()?,
            }),
            2 => Ok(WalRecord::AddAttribute {
                relation: d.get_str()?.to_string(),
                attribute: Attribute::new(d.get_str()?),
                domain: d.get_domain()?,
                from: d.get_chronon()?,
                to: d.get_chronon()?,
            }),
            3 => Ok(WalRecord::DropAttribute {
                relation: d.get_str()?.to_string(),
                attribute: Attribute::new(d.get_str()?),
                at: d.get_chronon()?,
            }),
            4 => Ok(WalRecord::ReAddAttribute {
                relation: d.get_str()?.to_string(),
                attribute: Attribute::new(d.get_str()?),
                from: d.get_chronon()?,
                to: d.get_chronon()?,
            }),
            TAG_PUT_RELATION => Ok(WalRecord::PutRelation {
                relation: d.get_str()?.to_string(),
                contents: d.get_relation()?,
            }),
            tag => Err(CodecError::BadTag("WalRecord", tag)),
        }
    }
}

/// An append-only log file.
pub struct Wal {
    file: File,
}

impl Wal {
    /// Opens (or creates) the log at `path`, positioned for appending.
    pub fn open(path: &Path) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal { file })
    }

    /// Appends a record and fsyncs.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let mut e = Encoder::new();
        record.encode(&mut e);
        self.append_payload(e.finish())
    }

    /// The current end-of-log offset — where the next append will land.
    /// Captured before a batch append so a failed append can be cut back
    /// off the log ([`Wal::rollback_to`]).
    pub fn offset(&mut self) -> io::Result<u64> {
        self.file.seek(SeekFrom::End(0))
    }

    /// Cuts the log back to `offset`, discarding whatever a failed append
    /// left past it (partially- or even fully-written frames of a batch
    /// none of whose records was acknowledged).
    pub fn rollback_to(&mut self, offset: u64) -> io::Result<()> {
        self.file.set_len(offset)?;
        self.file.sync_data()
    }

    /// Appends a **multi-record batch frame**: every payload is framed
    /// (`len | payload | crc`) into one buffer, written with a single
    /// `write`, and made durable with a single fsync — the group-commit
    /// write path. An empty batch is a no-op (no write, no fsync).
    ///
    /// Callers must not acknowledge any record of the batch before this
    /// returns `Ok`; under that contract a crash can only ever lose a
    /// *suffix* of unacknowledged records (see the module docs).
    pub fn append_batch(&mut self, payloads: &[Vec<u8>]) -> io::Result<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let observing = hrdm_obs::enabled();
        let append_started = observing.then(std::time::Instant::now);
        let total: usize = payloads.iter().map(|p| p.len() + 8).sum();
        let mut frame = Vec::with_capacity(total);
        for payload in payloads {
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(payload);
            frame.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        self.file.write_all(&frame)?;
        let fsync_started = observing.then(std::time::Instant::now);
        let result = self.file.sync_data();
        if let (Some(appended), Some(fsynced)) = (append_started, fsync_started) {
            let obs = crate::obs::storage_obs();
            obs.wal_append_ns
                .record_duration(fsynced.duration_since(appended));
            obs.wal_fsync_ns.record_duration(fsynced.elapsed());
        }
        result
    }

    /// Frames (`len | payload | crc`), writes, and fsyncs one payload.
    fn append_payload(&mut self, payload: Vec<u8>) -> io::Result<()> {
        self.append_batch(std::slice::from_ref(&payload))
    }

    /// Replays every intact record from the start of the log. A torn or
    /// corrupted tail ends the replay (and is reported via the returned
    /// `truncated_at` offset so the caller can truncate the file).
    pub fn replay(path: &Path) -> io::Result<(Vec<WalRecord>, Option<u64>)> {
        let mut file = File::open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let Some(len) = le_u32(&bytes, pos) else {
                return Ok((records, Some(pos as u64))); // torn tail
            };
            let len = len as usize;
            let start = pos + 4;
            let end = start + len;
            if end + 4 > bytes.len() {
                return Ok((records, Some(pos as u64))); // torn tail
            }
            let payload = &bytes[start..end];
            let Some(stored) = le_u32(&bytes, end) else {
                return Ok((records, Some(pos as u64))); // torn tail
            };
            if crc32(payload) != stored {
                return Ok((records, Some(pos as u64))); // corrupted record
            }
            match WalRecord::decode(&mut Decoder::new(payload)) {
                Ok(r) => records.push(r),
                Err(_) => return Ok((records, Some(pos as u64))),
            }
            pos = end + 4;
        }
        let truncated = if pos == bytes.len() {
            None
        } else {
            Some(pos as u64)
        };
        Ok((records, truncated))
    }

    /// Truncates the log at `offset` (recovery after a torn tail).
    pub fn truncate(path: &Path, offset: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(offset)?;
        file.sync_all()
    }

    /// Creates (or truncates) an **empty**, fsync'd log at `path` — the
    /// fresh log a checkpoint installs for the next epoch.
    pub fn create_empty(path: &Path) -> io::Result<()> {
        let file = File::create(path)?;
        file.set_len(0)?;
        file.sync_all()
    }
}

/// `u32::from_le_bytes` over `bytes[at..at + 4]`; `None` when the log is
/// shorter (treated by replay as a torn tail).
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let b = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{TemporalValue, Value, ValueKind};
    use hrdm_time::Lifespan;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-wal-{}-{name}", std::process::id()));
        p
    }

    fn scheme() -> Scheme {
        let era = Lifespan::interval(0, 50);
        Scheme::builder()
            .key_attr("K", ValueKind::Int, era.clone())
            .attr("V", HistoricalDomain::int(), era)
            .build()
            .unwrap()
    }

    fn sample_records() -> Vec<WalRecord> {
        let s = scheme();
        let life = Lifespan::interval(0, 10);
        let t = Tuple::builder(life.clone())
            .constant("K", 1i64)
            .value("V", TemporalValue::constant(&life, Value::Int(9)))
            .finish(&s)
            .unwrap();
        vec![
            WalRecord::CreateRelation {
                name: "r".into(),
                scheme: s,
            },
            WalRecord::Insert {
                relation: "r".into(),
                tuple: t,
            },
            WalRecord::AddAttribute {
                relation: "r".into(),
                attribute: Attribute::new("W"),
                domain: HistoricalDomain::int(),
                from: Chronon::new(0),
                to: Chronon::new(50),
            },
            WalRecord::DropAttribute {
                relation: "r".into(),
                attribute: Attribute::new("V"),
                at: Chronon::new(25),
            },
            WalRecord::ReAddAttribute {
                relation: "r".into(),
                attribute: Attribute::new("V"),
                from: Chronon::new(30),
                to: Chronon::new(50),
            },
            WalRecord::PutRelation {
                relation: "r".into(),
                contents: {
                    let s = scheme();
                    let life = Lifespan::interval(2, 8);
                    let t = Tuple::builder(life.clone())
                        .constant("K", 7i64)
                        .value("V", TemporalValue::constant(&life, Value::Int(1)))
                        .finish(&s)
                        .unwrap();
                    Relation::with_tuples(s, vec![t]).unwrap()
                },
            },
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let (replayed, truncated) = Wal::replay(&path).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(truncated, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_recoverable() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Tear the last record in half.
        let full = std::fs::metadata(&path).unwrap().len();
        let torn_at = full - 5;
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(torn_at).unwrap();
        }
        let (replayed, truncated) = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), records.len() - 1);
        let offset = truncated.expect("torn tail reported");
        // Truncate and append again: the log is healthy.
        Wal::truncate(&path, offset).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&records[records.len() - 1]).unwrap();
        }
        let (replayed, truncated) = Wal::replay(&path).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(truncated, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_stops_replay() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &sample_records() {
                wal.append(r).unwrap();
            }
        }
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (replayed, truncated) = Wal::replay(&path).unwrap();
        assert!(replayed.len() < sample_records().len());
        assert!(truncated.is_some());
        std::fs::remove_file(&path).ok();
    }

    /// A batch frame replays record-for-record identically to individual
    /// appends — replay needs no batch awareness.
    #[test]
    fn batch_frame_replays_like_individual_appends() {
        let batched = tmp("batched");
        let single = tmp("single");
        std::fs::remove_file(&batched).ok();
        std::fs::remove_file(&single).ok();
        let records = sample_records();
        {
            let mut wal = Wal::open(&batched).unwrap();
            let payloads: Vec<Vec<u8>> = records.iter().map(WalRecord::payload).collect();
            wal.append_batch(&payloads).unwrap();
            wal.append_batch(&[]).unwrap(); // empty batch: no-op
        }
        {
            let mut wal = Wal::open(&single).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        // Byte-identical logs, identical replay.
        assert_eq!(
            std::fs::read(&batched).unwrap(),
            std::fs::read(&single).unwrap()
        );
        let (replayed, truncated) = Wal::replay(&batched).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(truncated, None);
        std::fs::remove_file(&batched).ok();
        std::fs::remove_file(&single).ok();
    }

    /// A crash mid-batch leaves a clean prefix: every cut point of the
    /// batch frame recovers some prefix of its records, never a subset
    /// with holes and never garbage.
    #[test]
    fn torn_batch_recovers_a_prefix_at_every_cut() {
        let path = tmp("torn-batch");
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        let payloads: Vec<Vec<u8>> = records.iter().map(WalRecord::payload).collect();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_batch(&payloads).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (replayed, _) = Wal::replay(&path).unwrap();
            assert!(replayed.len() <= records.len());
            assert_eq!(
                replayed,
                records[..replayed.len()],
                "cut at {cut} must recover a prefix"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = tmp("empty");
        std::fs::remove_file(&path).ok();
        let _ = Wal::open(&path).unwrap();
        let (replayed, truncated) = Wal::replay(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(truncated, None);
        std::fs::remove_file(&path).ok();
    }
}
