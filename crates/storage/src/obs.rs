//! The storage layer's engine-wide metric families, registered once in
//! the global observability registry.
//!
//! These families are process-wide (the WAL and checkpoint code paths
//! have no per-instance home to hang a registry on); instrumentation
//! sites gate on [`hrdm_obs::enabled`], so `HRDM_OBS_OFF=1` reduces
//! each site to one relaxed load. Per-instance commit counters live on
//! [`crate::ConcurrentDatabase`] instead — exact per-database `\stats`
//! values, backed by the same `hrdm-obs` primitives.

use hrdm_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct StorageObs {
    /// Durations of WAL batch-frame writes (buffer build + `write`).
    pub wal_append_ns: Arc<Histogram>,
    /// Durations of WAL `sync_data` calls.
    pub wal_fsync_ns: Arc<Histogram>,
    /// Acknowledged ops per group-commit batch.
    pub commit_batch_size: Arc<Histogram>,
    /// End-to-end checkpoint durations (count = checkpoints taken).
    pub checkpoint_ns: Arc<Histogram>,
    /// Dirty partitions rewritten by checkpoints.
    pub checkpoint_dirty_partitions: Arc<Counter>,
    /// Partitions carried into a new checkpoint epoch as clean hard
    /// links (not rewritten).
    pub checkpoint_linked_partitions: Arc<Counter>,
    /// Snapshots published by concurrent databases.
    pub snapshot_publish: Arc<Counter>,
    /// Buffer-pool page requests served from a resident frame.
    pub pool_hits: Arc<Counter>,
    /// Buffer-pool page requests that faulted the page in from disk.
    pub pool_misses: Arc<Counter>,
    /// Frames evicted by the pool's clock sweep.
    pub pool_evictions: Arc<Counter>,
    /// Dirty pages written back to disk (eviction or flush).
    pub pool_writebacks: Arc<Counter>,
}

pub(crate) fn storage_obs() -> &'static StorageObs {
    static OBS: OnceLock<StorageObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = hrdm_obs::global();
        StorageObs {
            wal_append_ns: r.histogram(
                "hrdm_wal_append_ns",
                "Wall time of WAL batch-frame writes (frame build + write), nanoseconds",
            ),
            wal_fsync_ns: r.histogram(
                "hrdm_wal_fsync_ns",
                "Wall time of WAL fsync (sync_data) calls, nanoseconds",
            ),
            commit_batch_size: r.histogram(
                "hrdm_commit_batch_size",
                "Acknowledged operations per group-commit batch",
            ),
            checkpoint_ns: r.histogram(
                "hrdm_checkpoint_ns",
                "Wall time of whole checkpoints, nanoseconds (count = checkpoints)",
            ),
            checkpoint_dirty_partitions: r.counter(
                "hrdm_checkpoint_dirty_partitions_total",
                "Dirty partitions rewritten by checkpoints",
            ),
            checkpoint_linked_partitions: r.counter(
                "hrdm_checkpoint_linked_partitions_total",
                "Clean partitions carried across checkpoints as hard links",
            ),
            snapshot_publish: r.counter(
                "hrdm_snapshot_publish_total",
                "Snapshots published by concurrent databases",
            ),
            pool_hits: r.counter(
                "hrdm_pool_hits_total",
                "Buffer-pool page requests served from a resident frame",
            ),
            pool_misses: r.counter(
                "hrdm_pool_misses_total",
                "Buffer-pool page requests faulted in from disk",
            ),
            pool_evictions: r.counter(
                "hrdm_pool_evictions_total",
                "Frames evicted by the buffer pool's clock sweep",
            ),
            pool_writebacks: r.counter(
                "hrdm_pool_writebacks_total",
                "Dirty pages written back to disk by the buffer pool",
            ),
        }
    })
}
