//! # hrdm-storage — the physical level of HRDM
//!
//! The bottom of the paper's three-level architecture (Fig. 9): "at the
//! physical level are the file structures and access methods". This crate
//! provides a small but real physical layer:
//!
//! * [`codec`] — a compact binary encoding (varint/zigzag) for every model
//!   object: values, lifespans, temporal functions, schemes, tuples,
//!   relations;
//! * [`page`] — fixed-size slotted pages with checksums;
//! * [`heap`] — heap files of encoded tuples over slotted pages;
//! * [`catalog`] — the system catalog, including **schema evolution**: the
//!   attribute-lifespan edits of the paper's Fig. 6 (drop an attribute at
//!   `t2`, re-add it at `t3`) are first-class catalog operations with an
//!   audit log;
//! * [`wal`] — a checksummed write-ahead log with torn-tail recovery;
//! * [`database`] — a named collection of historical relations built on
//!   all of the above, with two persistence modes: detached
//!   save/load snapshots, and a durable **attached** mode
//!   ([`Database::open`]) that write-ahead logs every mutation and
//!   checkpoints atomically ([`Database::checkpoint`]).

#![warn(missing_docs)]

pub mod catalog;
pub mod codec;
pub mod database;
pub mod heap;
pub mod page;
pub mod wal;

pub use catalog::{Catalog, EvolutionEvent};
pub use codec::{CodecError, Decoder, Encoder};
pub use database::{Database, DbError};
pub use heap::HeapFile;
pub use page::{Page, SlotId, PAGE_SIZE};
pub use wal::{Wal, WalRecord};

// Re-export the access-method types `Database` hands out, so downstream
// code does not need a direct `hrdm-index` dependency for common use.
pub use hrdm_index::{KeyIndex, LifespanIndex, RelationIndexes};
