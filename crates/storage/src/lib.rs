//! # hrdm-storage — the physical level of HRDM
//!
//! The bottom of the paper's three-level architecture (Fig. 9): "at the
//! physical level are the file structures and access methods". This crate
//! provides a small but real physical layer:
//!
//! * [`codec`] — a compact binary encoding (varint/zigzag) for every model
//!   object: values, lifespans, temporal functions, schemes, tuples,
//!   relations;
//! * [`page`] — fixed-size slotted pages with checksums;
//! * [`pool`] — a page-granular **buffer pool** (pin counts, clock
//!   eviction, dirty-page write-back) that every on-disk page is read
//!   and written through, capping resident memory at a configurable
//!   budget (`HRDM_POOL_PAGES` / `HRDM_POOL_BYTES`, default 256 MiB);
//! * [`heap`] — heap files of encoded tuples over slotted pages, faulted
//!   through the pool on demand;
//! * [`btree`] — a bulk-loaded on-disk B+tree keyed by
//!   (birth-chronon, position), the lifespan index for cold partitions;
//! * [`paged`] — [`PagedDatabase`]: an out-of-core read path that
//!   materializes only the partitions a time window touches;
//! * [`catalog`] — the system catalog, including **schema evolution**: the
//!   attribute-lifespan edits of the paper's Fig. 6 (drop an attribute at
//!   `t2`, re-add it at `t3`) are first-class catalog operations with an
//!   audit log;
//! * [`partition`] — **lifespan-based horizontal partitioning**: each
//!   relation's tuple store is cut into chronon-range partitions with
//!   per-partition heap files, min/max lifespan summaries, and
//!   per-partition access methods, so time-bounded queries and
//!   checkpoints touch only the partitions they need;
//! * [`wal`] — a checksummed write-ahead log with torn-tail recovery;
//! * [`database`] — a named collection of historical relations built on
//!   all of the above, with two persistence modes: detached
//!   save/load snapshots, and a durable **attached** mode
//!   ([`Database::open`]) that write-ahead logs every mutation and
//!   checkpoints atomically ([`Database::checkpoint`]);
//! * [`snapshot`] — immutable, O(relations)-cheap views of the committed
//!   state ([`DbSnapshot`]) that whole query pipelines run against with
//!   zero locks;
//! * [`concurrent`] — [`ConcurrentDatabase`]: snapshot-isolated readers
//!   plus a leader/follower **group-commit** writer that batches
//!   concurrent mutations into single fsync'd WAL frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod catalog;
pub mod codec;
pub mod concurrent;
pub mod database;
pub mod heap;
mod obs;
pub mod page;
pub mod paged;
pub mod partition;
pub mod pool;
pub mod snapshot;
pub mod wal;

pub use btree::LifespanBTree;
pub use catalog::{Catalog, EvolutionEvent};
pub use codec::{CodecError, Decoder, Encoder};
pub use concurrent::{CommitStats, ConcurrentDatabase};
pub use database::{Database, DbError};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, SlotId, MAX_RECORD, PAGE_SIZE};
pub use paged::PagedDatabase;
pub use partition::{Partition, PartitionMap, PartitionPolicy};
pub use pool::{BufferPool, PageGuard, PoolFileId, PoolStats};
pub use snapshot::DbSnapshot;
pub use wal::{Wal, WalRecord};

// Re-export the access-method types `Database` hands out, so downstream
// code does not need a direct `hrdm-index` dependency for common use.
pub use hrdm_index::{KeyIndex, LifespanIndex, RelationIndexes};
