//! A persistent database of historical relations, with a crash-safe
//! attached mode.
//!
//! Layout on disk: one directory per database, containing
//!
//! * `catalog.hrdm` — magic + version + **checkpoint epoch** + catalog +
//!   CRC; renamed into place atomically, so it is the commit point of
//!   every checkpoint;
//! * `<relation>.<epoch>.heap` — one heap file per relation per
//!   checkpoint epoch, each record an encoded tuple;
//! * `wal.<epoch>.log` — the write-ahead log of mutations since the
//!   checkpoint that produced `epoch`.
//!
//! ## Durability protocol
//!
//! A **detached** database ([`Database::new`]) lives in memory; [`Database::save`]
//! exports an epoch-0 snapshot. An **attached** database ([`Database::open`])
//! appends every acknowledged mutation to the WAL (fsync'd) *before* it is
//! applied in memory — mutations are pre-validated so the log only ever
//! holds applicable records. [`Database::open`] recovers by loading the
//! checkpointed state and replaying the WAL tail, truncating torn tails.
//!
//! [`Database::checkpoint`] folds the WAL into fresh heap files under the
//! *next* epoch, then commits by atomically renaming the new catalog into
//! place (tmp file + fsync + rename). A kill at any instant leaves either
//! the old epoch's files + intact WAL, or the new epoch's files + empty
//! WAL — both loadable, neither losing an acknowledged write.

use crate::btree::LifespanBTree;
use crate::catalog::Catalog;
use crate::codec::{CodecError, Decoder, Encoder};
use crate::heap::HeapFile;
use crate::page::crc32;
use crate::partition::{PartitionMap, PartitionPolicy};
use crate::snapshot::DbSnapshot;
use crate::wal::{Wal, WalRecord};
use hrdm_core::{Attribute, HistoricalDomain, HrdmError, Relation, Scheme, Tuple};
use hrdm_index::RelationIndexes;
use hrdm_time::Chronon;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"HRDM";
/// Catalog header version. v3 added the partition section: the boundary
/// policy plus, per relation, the per-partition manifest (id, tuple count,
/// min/max lifespan summary) that [`read_checkpoint`] uses to reassemble
/// relations from their per-partition heap files.
const VERSION: u32 = 3;
const CATALOG_FILE: &str = "catalog.hrdm";

/// Errors from database persistence.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem error.
    Io(io::Error),
    /// Encoding/decoding error.
    Codec(CodecError),
    /// Model-level error.
    Model(HrdmError),
    /// Bad file header or checksum.
    BadFile(String),
    /// The operation does not apply in the database's current attachment
    /// mode (e.g. `checkpoint` on a detached database, or writing through
    /// a poisoned WAL).
    Mode(String),
    /// `put_relation` contents whose scheme differs from the catalog's
    /// current scheme for that relation (persistence is catalog-driven:
    /// such contents could not survive a checkpoint + open round trip).
    SchemeMismatch {
        /// The target relation.
        relation: String,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Codec(e) => write!(f, "codec error: {e}"),
            DbError::Model(e) => write!(f, "model error: {e}"),
            DbError::BadFile(what) => write!(f, "bad database file: {what}"),
            DbError::Mode(what) => write!(f, "mode error: {what}"),
            DbError::SchemeMismatch { relation } => write!(
                f,
                "new contents for `{relation}` do not carry its catalog scheme"
            ),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}
impl From<CodecError> for DbError {
    fn from(e: CodecError) -> Self {
        DbError::Codec(e)
    }
}
impl From<HrdmError> for DbError {
    fn from(e: HrdmError) -> Self {
        DbError::Model(e)
    }
}

/// The durable half of an attached database: where it lives, which
/// checkpoint epoch its heap files carry, and the open WAL.
struct Attachment {
    dir: PathBuf,
    epoch: u64,
    wal: Wal,
    /// Set when a WAL append failed. The in-memory state was rolled back
    /// (memory equals the durable state), but the log's tail may be torn
    /// by the partial write, so further appends are refused until a
    /// [`Database::checkpoint`] rotates to a fresh log.
    poisoned: bool,
}

/// What a failed batch fsync must restore (see [`Database::undo_point`]).
enum BatchUndo {
    /// Insert-only batch: pre-batch tuple counts of the touched relations.
    InsertLens {
        /// Relation → tuple count before the batch.
        lens: BTreeMap<String, usize>,
        /// The mutation counter before the batch.
        ops_applied: u64,
    },
    /// Batch with catalog- or wholesale-relation ops: the pinned pre-batch
    /// state.
    Full {
        catalog: Arc<Catalog>,
        relations: BTreeMap<String, Relation>,
        indexes: BTreeMap<String, Arc<RelationIndexes>>,
        partitions: BTreeMap<String, Arc<PartitionMap>>,
        ops_applied: u64,
    },
}

/// How a pre-validated insert should be applied.
enum InsertDisposition {
    /// Append the tuple (and maintain the indexes).
    Apply,
    /// Keyless set semantics: the tuple is already present — silent no-op,
    /// nothing to log.
    DuplicateNoop,
}

/// An in-memory database of historical relations with directory-based
/// persistence — the physical level a downstream user actually touches.
///
/// All mutation funnels through [`Database::commit_batch`], which validates
/// each operation against the current state, applies it, and write-ahead
/// logs the whole batch as **one fsync'd frame** — the group-commit write
/// path that [`crate::ConcurrentDatabase`] drives from many threads. The
/// single-op methods ([`Database::insert`], …) are one-element batches.
///
/// Committed state is cheap to snapshot ([`Database::snapshot`]): relations
/// are copy-on-write and indexes are `Arc`-shared, so a [`DbSnapshot`] costs
/// O(relations), never O(tuples).
#[derive(Default)]
pub struct Database {
    /// Copy-on-write: snapshots share the catalog via this `Arc`, and the
    /// rare catalog-changing ops (create, evolution) clone it first.
    catalog: Arc<Catalog>,
    relations: BTreeMap<String, Relation>,
    /// Access methods per relation (`hrdm-index`), maintained
    /// **incrementally**: `insert` updates them (copy-on-write when a
    /// snapshot shares them), `put_relation`/`create_relation`/
    /// [`Database::load`] (re)build them. An absent entry (only possible
    /// after out-of-band mutation through [`Database::relation`]-adjacent
    /// APIs) makes the planner fall back to sequential scans;
    /// [`Database::ensure_indexes`] rebuilds it.
    indexes: BTreeMap<String, Arc<RelationIndexes>>,
    /// `Some` when attached to a directory (durable mode).
    attachment: Option<Attachment>,
    /// Monotone count of applied mutations — the version stamped onto
    /// snapshots, so readers can order the states they observe.
    ops_applied: u64,
    /// Chronon-range partition map per relation (`hrdm-storage`'s
    /// [`partition`](crate::partition) module): pure physical metadata
    /// over the flat tuple vectors, maintained incrementally alongside
    /// `indexes` and `Arc`-shared into snapshots, so readers keep a
    /// frozen map across repartitions. Checkpoints persist one heap file
    /// per partition and rewrite only the dirty ones.
    partitions: BTreeMap<String, Arc<PartitionMap>>,
    /// The boundary policy new partition maps are built under. Persisted
    /// in the catalog (header v3) at checkpoint; **not** WAL-logged —
    /// partitioning is physical, so a policy change between checkpoints
    /// reverts to the persisted policy on crash recovery (same data,
    /// different cut).
    partition_policy: PartitionPolicy,
}

impl Database {
    /// An empty, detached database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Is this database attached to a directory (durable mode)?
    pub fn is_attached(&self) -> bool {
        self.attachment.is_some()
    }

    /// The attached directory, if any.
    pub fn attached_dir(&self) -> Option<&Path> {
        self.attachment.as_ref().map(|a| a.dir.as_path())
    }

    /// The current checkpoint epoch of an attached database.
    pub fn epoch(&self) -> Option<u64> {
        self.attachment.as_ref().map(|a| a.epoch)
    }

    /// The catalog (schemes + evolution log).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for schema-evolution operations.
    ///
    /// **Detached use only**: edits through this handle bypass the WAL, so
    /// on an attached database they are not durable until the next
    /// [`Database::checkpoint`]. Prefer [`Database::add_attribute`] /
    /// [`Database::drop_attribute`] / [`Database::re_add_attribute`].
    ///
    /// Note: evolving a scheme does not retroactively invalidate stored
    /// tuples; values outside a *shrunk* ALS become invisible to `vls`, per
    /// the paper's semantics.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        Arc::make_mut(&mut self.catalog)
    }

    /// Creates a relation. On an attached database the creation is
    /// write-ahead logged (fsync'd) before it is acknowledged.
    pub fn create_relation(&mut self, name: &str, scheme: Scheme) -> Result<(), DbError> {
        self.commit_one(WalRecord::CreateRelation {
            name: name.to_string(),
            scheme,
        })
    }

    fn apply_create_unchecked(&mut self, name: &str, scheme: Scheme) {
        Arc::make_mut(&mut self.catalog)
            .create_relation(name, scheme.clone())
            // lint: no-panic-ok(stage() validated the name is fresh against this exact state; divergence is a logic bug where crashing beats corrupting)
            .expect("pre-validated: relation name is fresh");
        let relation = Relation::new(scheme);
        self.indexes.insert(
            name.to_string(),
            Arc::new(RelationIndexes::build(&relation)),
        );
        self.partitions.insert(
            name.to_string(),
            Arc::new(PartitionMap::build(&relation, self.partition_policy)),
        );
        self.relations.insert(name.to_string(), relation);
    }

    /// The relation named `name`.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Replaces the contents of `name` (e.g. with a query result),
    /// rebuilding its indexes. On an attached database the replacement is
    /// write-ahead logged (fsync'd) before it is acknowledged.
    ///
    /// The relation must have been registered via
    /// [`Database::create_relation`] first, and the new contents must
    /// carry the catalog's current scheme for `name` — persistence is
    /// driven by the catalog, so divergent contents would be rejected
    /// when a checkpoint's heap files are re-validated on the next open
    /// (bricking the database), and an unregistered relation would
    /// silently not survive a save/load round trip.
    pub fn put_relation(&mut self, name: &str, relation: Relation) -> Result<(), DbError> {
        self.commit_one(WalRecord::PutRelation {
            relation: name.to_string(),
            contents: relation,
        })
    }

    fn apply_put_unchecked(&mut self, name: &str, relation: Relation) {
        self.indexes.insert(
            name.to_string(),
            Arc::new(RelationIndexes::build(&relation)),
        );
        self.partitions.insert(
            name.to_string(),
            Arc::new(PartitionMap::build(&relation, self.partition_policy)),
        );
        self.relations.insert(name.to_string(), relation);
    }

    /// Inserts a tuple into `name`, maintaining the relation's indexes
    /// incrementally (the planner keeps its index scans between writes).
    /// On an attached database the insert is write-ahead logged (fsync'd)
    /// before it is acknowledged.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<(), DbError> {
        self.commit_one(WalRecord::Insert {
            relation: name.to_string(),
            tuple,
        })
    }

    /// Commits one operation — a one-element [`Database::commit_batch`].
    fn commit_one(&mut self, record: WalRecord) -> Result<(), DbError> {
        self.commit_batch(vec![record]).pop().unwrap_or_else(|| {
            Err(DbError::Mode(
                "internal: commit_batch returned no result for a one-op batch".into(),
            ))
        })
    }

    /// Validates, applies, and durably logs a **batch** of mutations with a
    /// single fsync — the group-commit write path.
    ///
    /// Each operation is validated against the state left by the operations
    /// before it (so a batch behaves exactly like the same ops committed
    /// one at a time, in order) and applied in memory; every valid
    /// operation's WAL record is then written as one multi-record batch
    /// frame ([`Wal::append_batch`]) and fsync'd once. Per-op results come
    /// back in op order: validation failures affect only their own op.
    ///
    /// If the batch fsync fails, the in-memory state **rolls back** to the
    /// pre-batch state (so memory always equals the durable state), the
    /// log is cut back (best effort) to its pre-batch length so a
    /// crash-reopen cannot resurrect the failed records, every op in the
    /// batch reports the I/O error, and the attachment is poisoned — the
    /// on-disk log tail may still be torn if the cut also failed, so
    /// further appends are refused until [`Database::checkpoint`] rotates
    /// to a fresh log.
    pub fn commit_batch(&mut self, ops: Vec<WalRecord>) -> Vec<Result<(), DbError>> {
        if ops.is_empty() {
            return Vec::new();
        }
        if self.check_writable().is_err() {
            // Re-derive the refusal per op: `check_writable` is pure in
            // `&self`, so every call yields the same poisoned-WAL error.
            return ops.iter().map(|_| self.check_writable()).collect();
        }
        let undo = self.attachment.as_ref().map(|_| self.undo_point(&ops));
        let mut results: Vec<Result<(), DbError>> = Vec::with_capacity(ops.len());
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for op in &ops {
            match self.stage(op) {
                Ok(Some(payload)) => {
                    payloads.push(payload);
                    results.push(Ok(()));
                }
                Ok(None) => results.push(Ok(())), // set-semantics no-op
                Err(e) => results.push(Err(e)),
            }
        }
        if !payloads.is_empty() {
            if let Some(att) = &mut self.attachment {
                let pre_append_offset = att.wal.offset();
                if let Err(e) = att.wal.append_batch(&payloads) {
                    att.poisoned = true;
                    // Cut any (partially or even fully) written frames of
                    // the failed batch back off the log: none of them was
                    // acknowledged, so none may survive a crash-reopen.
                    // Best effort — if the cut fails too, the poison keeps
                    // further appends out and checkpoint() rotates the log.
                    if let Ok(offset) = pre_append_offset {
                        let _ = att.wal.rollback_to(offset);
                    }
                    if let Some(undo) = undo {
                        self.rollback(undo);
                    }
                    // Nothing in the batch is durable, so nothing in it is
                    // acknowledged — even in-batch no-ops, whose "already
                    // present" justification may have been rolled back.
                    return ops
                        .iter()
                        .map(|_| {
                            Err(DbError::Io(io::Error::new(
                                e.kind(),
                                format!("group-commit fsync failed: {e}"),
                            )))
                        })
                        .collect();
                }
            }
        }
        results
    }

    /// Captures what a failed batch fsync would need to restore.
    ///
    /// Insert-only batches (the overwhelmingly common case) record just the
    /// pre-batch tuple counts: inserts are append-only, so undo is
    /// truncation plus an index rebuild of the touched relations — nothing
    /// is `Arc`-pinned, so the happy path pays no copy-on-write toll.
    /// Batches carrying catalog or wholesale-relation ops pin the whole
    /// pre-batch state instead (O(relations) `Arc` bumps; the touched
    /// relations pay one pointer-copy on mutation).
    fn undo_point(&self, ops: &[WalRecord]) -> BatchUndo {
        let insert_only = ops.iter().all(|op| matches!(op, WalRecord::Insert { .. }));
        if insert_only {
            let mut lens = BTreeMap::new();
            for op in ops {
                if let WalRecord::Insert { relation, .. } = op {
                    if let Some(rel) = self.relations.get(relation) {
                        lens.entry(relation.clone()).or_insert(rel.len());
                    }
                }
            }
            BatchUndo::InsertLens {
                lens,
                ops_applied: self.ops_applied,
            }
        } else {
            BatchUndo::Full {
                catalog: Arc::clone(&self.catalog),
                relations: self.relations.clone(),
                indexes: self.indexes.clone(),
                partitions: self.partitions.clone(),
                ops_applied: self.ops_applied,
            }
        }
    }

    /// Restores the state captured by [`Database::undo_point`] — memory
    /// returns to exactly the pre-batch (durable) state, so a write that
    /// returned `Err` never becomes visible, not even through a later
    /// checkpoint.
    fn rollback(&mut self, undo: BatchUndo) {
        match undo {
            BatchUndo::InsertLens { lens, ops_applied } => {
                for (name, old_len) in lens {
                    let Some(rel) = self.relations.get_mut(&name) else {
                        continue;
                    };
                    if rel.len() > old_len {
                        rel.truncate(old_len);
                        let rebuilt = RelationIndexes::build(rel);
                        let policy = self.partition_policy;
                        // Rebuild marks every partition dirty —
                        // conservative (the next checkpoint rewrites
                        // more), never incorrect.
                        self.partitions
                            .insert(name.clone(), Arc::new(PartitionMap::build(rel, policy)));
                        self.indexes.insert(name, Arc::new(rebuilt));
                    }
                }
                self.ops_applied = ops_applied;
            }
            BatchUndo::Full {
                catalog,
                relations,
                indexes,
                partitions,
                ops_applied,
            } => {
                self.catalog = catalog;
                self.relations = relations;
                self.indexes = indexes;
                self.partitions = partitions;
                self.ops_applied = ops_applied;
            }
        }
    }

    /// Validates one operation against the current in-memory state and, if
    /// it applies, applies it and returns its WAL payload (`None` for
    /// acknowledged no-ops like duplicate set-semantics inserts).
    fn stage(&mut self, op: &WalRecord) -> Result<Option<Vec<u8>>, DbError> {
        let payload = match op {
            WalRecord::CreateRelation { name, scheme } => {
                if self.catalog.scheme(name).is_some() {
                    return Err(DbError::Model(HrdmError::DuplicateRelation(name.clone())));
                }
                let payload = op.payload();
                self.apply_create_unchecked(name, scheme.clone());
                payload
            }
            WalRecord::Insert { relation, tuple } => {
                match self.validate_insert(relation, tuple)? {
                    InsertDisposition::DuplicateNoop => return Ok(None),
                    InsertDisposition::Apply => {
                        let payload = op.payload();
                        self.apply_insert_unchecked(relation, tuple.clone());
                        payload
                    }
                }
            }
            WalRecord::PutRelation { relation, contents } => {
                let Some(scheme) = self.catalog.scheme(relation) else {
                    return Err(DbError::Model(HrdmError::UnknownRelation(relation.clone())));
                };
                if contents.scheme() != scheme {
                    return Err(DbError::SchemeMismatch {
                        relation: relation.clone(),
                    });
                }
                let payload = op.payload();
                self.apply_put_unchecked(relation, contents.clone());
                payload
            }
            WalRecord::AddAttribute {
                relation,
                attribute,
                domain,
                from,
                to,
            } => self.stage_evolution(relation, op, |cat| {
                cat.add_attribute(relation, attribute.clone(), *domain, *from, *to)
            })?,
            WalRecord::DropAttribute {
                relation,
                attribute,
                at,
            } => self.stage_evolution(relation, op, |cat| {
                cat.drop_attribute(relation, attribute, *at)
            })?,
            WalRecord::ReAddAttribute {
                relation,
                attribute,
                from,
                to,
            } => self.stage_evolution(relation, op, |cat| {
                cat.re_add_attribute(relation, attribute, *from, *to)
            })?,
        };
        self.ops_applied += 1;
        Ok(Some(payload))
    }

    /// Stages a catalog evolution op: dry-run on a catalog clone (so the
    /// WAL only ever records applicable ops), commit the clone, and resync
    /// the live relation to the evolved scheme.
    fn stage_evolution<F>(
        &mut self,
        relation: &str,
        op: &WalRecord,
        apply: F,
    ) -> Result<Vec<u8>, DbError>
    where
        F: FnOnce(&mut Catalog) -> hrdm_core::Result<()>,
    {
        let mut trial = (*self.catalog).clone();
        apply(&mut trial).map_err(DbError::Model)?;
        let payload = op.payload();
        self.catalog = Arc::new(trial);
        self.resync_relation_scheme(relation);
        Ok(payload)
    }

    /// The checks [`Relation::insert`] would run, performed *before* the
    /// WAL append so the log only records applicable mutations. Uses the
    /// maintained key index for an `O(1)` duplicate probe where possible.
    fn validate_insert(&self, name: &str, tuple: &Tuple) -> Result<InsertDisposition, DbError> {
        let rel = self
            .relations
            .get(name)
            .ok_or_else(|| DbError::Model(HrdmError::UnknownRelation(name.to_string())))?;
        tuple.validate(rel.scheme()).map_err(DbError::Model)?;
        if rel.scheme().key().is_empty() {
            if rel.contains_tuple(tuple) {
                return Ok(InsertDisposition::DuplicateNoop);
            }
            return Ok(InsertDisposition::Apply);
        }
        let key = tuple.key_values(rel.scheme()).map_err(DbError::Model)?;
        let duplicate = match self.indexes.get(name).and_then(|idx| idx.key()) {
            Some(key_idx) => !key_idx.lookup(&key).is_empty(),
            None => rel.find_by_key(&key).is_some(),
        };
        if duplicate {
            return Err(DbError::Model(HrdmError::KeyViolation {
                key: format!(
                    "({})",
                    key.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            }));
        }
        Ok(InsertDisposition::Apply)
    }

    fn apply_insert_unchecked(&mut self, name: &str, tuple: Tuple) {
        // lint: no-panic-ok(stage() validated the relation exists in this exact state; divergence is a logic bug where crashing beats corrupting)
        let rel = self.relations.get_mut(name).expect("pre-validated");
        if let Some(idx) = self.indexes.get_mut(name) {
            // Copy-on-write: shared with a snapshot → clone once, then
            // mutate our private copy; unshared → in-place.
            Arc::make_mut(idx).insert(rel.len(), &tuple);
        }
        if let Some(parts) = self.partitions.get_mut(name) {
            Arc::make_mut(parts).insert(rel.len(), &tuple);
        }
        rel.push_unchecked(tuple);
    }

    /// Adds a fresh attribute to `relation`, write-ahead logged when
    /// attached. See [`Catalog::add_attribute`].
    pub fn add_attribute(
        &mut self,
        relation: &str,
        attribute: Attribute,
        domain: HistoricalDomain,
        from: Chronon,
        to: Chronon,
    ) -> Result<(), DbError> {
        self.commit_one(WalRecord::AddAttribute {
            relation: relation.to_string(),
            attribute,
            domain,
            from,
            to,
        })
    }

    /// Drops an attribute of `relation` as of `at`, write-ahead logged when
    /// attached. See [`Catalog::drop_attribute`].
    pub fn drop_attribute(
        &mut self,
        relation: &str,
        attribute: &Attribute,
        at: Chronon,
    ) -> Result<(), DbError> {
        self.commit_one(WalRecord::DropAttribute {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            at,
        })
    }

    /// Re-adds a dropped attribute of `relation` over `[from, to]`,
    /// write-ahead logged when attached. See [`Catalog::re_add_attribute`].
    pub fn re_add_attribute(
        &mut self,
        relation: &str,
        attribute: &Attribute,
        from: Chronon,
        to: Chronon,
    ) -> Result<(), DbError> {
        self.commit_one(WalRecord::ReAddAttribute {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            from,
            to,
        })
    }

    /// Rebuilds the live relation of `name` under the catalog's current
    /// scheme, clipping stored values to the (possibly shrunk) attribute
    /// lifespans — exactly what a checkpoint + open round trip would
    /// produce. Without this, inserts validated against a stale relation
    /// scheme could be acknowledged yet fail WAL replay against the
    /// evolved scheme, leaving an unopenable database.
    fn resync_relation_scheme(&mut self, name: &str) {
        let Some(scheme) = self.catalog.scheme(name) else {
            return;
        };
        let Some(rel) = self.relations.get(name) else {
            return;
        };
        if rel.scheme() == scheme {
            return;
        }
        let scheme = scheme.clone();
        let tuples: Vec<Tuple> = rel.iter().map(|t| t.clipped_to_scheme(&scheme)).collect();
        let rebuilt = Relation::from_parts_unchecked(scheme, tuples);
        // Positions, lifespans, and (constant) key values are untouched by
        // clipping, but rebuild for clarity — evolution is rare.
        self.indexes
            .insert(name.to_string(), Arc::new(RelationIndexes::build(&rebuilt)));
        self.partitions.insert(
            name.to_string(),
            Arc::new(PartitionMap::build(&rebuilt, self.partition_policy)),
        );
        self.relations.insert(name.to_string(), rebuilt);
    }

    /// The current, valid indexes of `name`, if built. `None` means an
    /// unknown relation (or an index dropped out-of-band) — callers
    /// (the query planner) must fall back to a sequential scan.
    pub fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        self.indexes.get(name).map(Arc::as_ref)
    }

    /// Ensures `name`'s indexes exist and are current, building if needed.
    pub fn ensure_indexes(&mut self, name: &str) -> hrdm_core::Result<&RelationIndexes> {
        if !self.relations.contains_key(name) {
            return Err(HrdmError::UnknownRelation(name.to_string()));
        }
        if !self.indexes.contains_key(name) {
            let built = RelationIndexes::build(&self.relations[name]);
            self.indexes.insert(name.to_string(), Arc::new(built));
        }
        Ok(self.indexes[name].as_ref())
    }

    /// (Re)builds indexes — and the partition maps — for every relation.
    pub fn build_indexes(&mut self) {
        let names: Vec<String> = self.relations.keys().cloned().collect();
        for name in names {
            let built = RelationIndexes::build(&self.relations[&name]);
            let parts = PartitionMap::build(&self.relations[&name], self.partition_policy);
            self.indexes.insert(name.clone(), Arc::new(built));
            self.partitions.insert(name, Arc::new(parts));
        }
    }

    /// The chronon-range partition map of `name`, if built. `None` means
    /// an unknown relation — callers (the query planner) fall back to the
    /// relation-wide indexes.
    pub fn partitions(&self, name: &str) -> Option<&PartitionMap> {
        self.partitions.get(name).map(Arc::as_ref)
    }

    /// The boundary policy new partition maps are built under.
    pub fn partition_policy(&self) -> PartitionPolicy {
        self.partition_policy
    }

    /// Repartitions every relation under `policy` (e.g. halving the span
    /// to split hot partitions).
    ///
    /// Purely physical: contents, indexes, and query results are
    /// untouched; snapshots taken earlier keep their frozen maps. The
    /// policy is persisted by the next [`Database::checkpoint`] (it is
    /// not WAL-logged — a crash before that checkpoint recovers under the
    /// previously persisted policy, which re-derives an equivalent map).
    pub fn set_partition_policy(&mut self, policy: PartitionPolicy) {
        if policy == self.partition_policy {
            return;
        }
        self.partition_policy = policy;
        let names: Vec<String> = self.relations.keys().cloned().collect();
        for name in names {
            let parts = PartitionMap::build(&self.relations[&name], policy);
            self.partitions.insert(name, Arc::new(parts));
        }
    }

    /// Marks every relation's partitions clean — the on-disk epoch now
    /// carries exactly their membership.
    fn mark_partitions_clean(&mut self) {
        for parts in self.partitions.values_mut() {
            Arc::make_mut(parts).mark_clean();
        }
    }

    /// An immutable, cheaply-taken snapshot of the committed state.
    ///
    /// Cost is O(relations): relations share their copy-on-write tuple
    /// storage and indexes are `Arc`-shared, so no tuple is copied. The
    /// snapshot is wholly unaffected by later mutations, checkpoints, or
    /// WAL rotation — readers can evaluate whole query pipelines against
    /// it without any lock.
    pub fn snapshot(&self) -> DbSnapshot {
        DbSnapshot::new(
            Arc::clone(&self.catalog),
            self.relations.clone(),
            self.indexes.clone(),
            self.partitions.clone(),
            self.epoch(),
            self.ops_applied,
        )
    }

    /// Monotone count of mutations applied to this database instance
    /// (stamped onto snapshots as their version).
    pub fn version(&self) -> u64 {
        self.ops_applied
    }

    /// The registered relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(String::as_str)
    }

    /// Refuses durable writes once the WAL is poisoned (a failed append
    /// may have left a torn tail) — a checkpoint rotates to a fresh log.
    fn check_writable(&self) -> Result<(), DbError> {
        match &self.attachment {
            Some(att) if att.poisoned => Err(DbError::Mode(
                "write-ahead log poisoned by an earlier I/O error; checkpoint() to recover".into(),
            )),
            _ => Ok(()),
        }
    }

    /// Attaches to `dir` (created if missing), recovering whatever state is
    /// there: the last checkpoint's catalog + heap files, plus a replay of
    /// the WAL tail. Torn WAL tails are truncated away; stray files from
    /// aborted checkpoints are removed. The returned database is durable:
    /// every acknowledged write survives a crash.
    pub fn open(dir: &Path) -> Result<Database, DbError> {
        std::fs::create_dir_all(dir)?;
        let (mut db, epoch) = match read_checkpoint(dir)? {
            Some((db, epoch)) => (db, epoch),
            None => (Database::new(), 0),
        };
        // Build indexes over the checkpointed state *before* replay: the
        // replayed inserts then maintain them incrementally (O(1) key
        // probes instead of a linear scan per replayed record).
        db.build_indexes();
        // The freshly built partition maps mirror the checkpoint's heap
        // files exactly; only the WAL tail replayed below dirties them.
        db.mark_partitions_clean();
        let wal_file = wal_path(dir, epoch);
        if wal_file.exists() {
            let (records, torn_at) =
                Wal::replay(&wal_file).map_err(|e| io_with_path(&wal_file, e))?;
            if let Some(offset) = torn_at {
                Wal::truncate(&wal_file, offset).map_err(|e| io_with_path(&wal_file, e))?;
            }
            for record in records {
                db.apply_record(record)?;
            }
        } else {
            Wal::create_empty(&wal_file).map_err(|e| io_with_path(&wal_file, e))?;
        }
        cleanup_stray_files(dir, epoch);
        let wal = Wal::open(&wal_file).map_err(|e| io_with_path(&wal_file, e))?;
        db.attachment = Some(Attachment {
            dir: dir.to_path_buf(),
            epoch,
            wal,
            poisoned: false,
        });
        Ok(db)
    }

    /// Replays one WAL record against the in-memory state. Records were
    /// pre-validated before logging, so failures indicate a log that does
    /// not belong to this checkpoint — reported, never panicking.
    fn apply_record(&mut self, record: WalRecord) -> Result<(), DbError> {
        self.ops_applied += 1;
        match record {
            WalRecord::CreateRelation { name, scheme } => {
                if self.catalog.scheme(&name).is_some() {
                    return Err(DbError::BadFile(format!(
                        "WAL creates relation `{name}` that the checkpoint already has"
                    )));
                }
                self.apply_create_unchecked(&name, scheme);
                Ok(())
            }
            WalRecord::Insert { relation, tuple } => {
                match self.validate_insert(&relation, &tuple)? {
                    InsertDisposition::DuplicateNoop => {}
                    InsertDisposition::Apply => self.apply_insert_unchecked(&relation, tuple),
                }
                Ok(())
            }
            WalRecord::PutRelation { relation, contents } => {
                let Some(scheme) = self.catalog.scheme(&relation) else {
                    return Err(DbError::Model(HrdmError::UnknownRelation(relation)));
                };
                // put_relation guarantees this at log time; a divergent
                // record means the log doesn't belong to this catalog.
                if contents.scheme() != scheme {
                    return Err(DbError::SchemeMismatch { relation });
                }
                self.apply_put_unchecked(&relation, contents);
                Ok(())
            }
            WalRecord::AddAttribute {
                relation,
                attribute,
                domain,
                from,
                to,
            } => {
                Arc::make_mut(&mut self.catalog)
                    .add_attribute(&relation, attribute, domain, from, to)
                    .map_err(DbError::Model)?;
                self.resync_relation_scheme(&relation);
                Ok(())
            }
            WalRecord::DropAttribute {
                relation,
                attribute,
                at,
            } => {
                Arc::make_mut(&mut self.catalog)
                    .drop_attribute(&relation, &attribute, at)
                    .map_err(DbError::Model)?;
                self.resync_relation_scheme(&relation);
                Ok(())
            }
            WalRecord::ReAddAttribute {
                relation,
                attribute,
                from,
                to,
            } => {
                Arc::make_mut(&mut self.catalog)
                    .re_add_attribute(&relation, &attribute, from, to)
                    .map_err(DbError::Model)?;
                self.resync_relation_scheme(&relation);
                Ok(())
            }
        }
    }

    /// Folds the WAL into a fresh checkpoint: heap files and an empty WAL
    /// are written under the next epoch, then the new catalog is renamed
    /// into place — the atomic commit point. A kill at any instant leaves
    /// a loadable database that has lost no acknowledged write. Clears a
    /// poisoned WAL (disk is resynchronized with memory).
    ///
    /// Heap files are per partition, and only **dirty** partitions (those
    /// whose membership changed since the previous checkpoint) are
    /// rewritten; clean partitions are carried into the new epoch by hard
    /// link — a checkpoint after a burst of inserts into one chronon
    /// range costs one partition rewrite, not a full-database rewrite.
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        let started = hrdm_obs::enabled().then(std::time::Instant::now);
        let (dir, old_epoch) = match &self.attachment {
            Some(att) => (att.dir.clone(), att.epoch),
            None => {
                return Err(DbError::Mode(
                    "checkpoint() requires an attached database; use open()".into(),
                ))
            }
        };
        let new_epoch = old_epoch + 1;
        self.write_state(&dir, new_epoch, Some(old_epoch))?;
        // Commit happened (catalog renamed): switch the live attachment.
        // From here on, recovery reads epoch e+1 — if the new WAL cannot
        // be opened, appending to the *old* one would lose writes, so the
        // attachment must be poisoned, not left silently on the old epoch.
        let wal = match Wal::open(&wal_path(&dir, new_epoch)) {
            Ok(wal) => wal,
            Err(e) => {
                if let Some(att) = &mut self.attachment {
                    att.poisoned = true;
                }
                return Err(DbError::Io(e));
            }
        };
        self.attachment = Some(Attachment {
            dir: dir.clone(),
            epoch: new_epoch,
            wal,
            poisoned: false,
        });
        // The new epoch carries every partition's current membership.
        self.mark_partitions_clean();
        cleanup_stray_files(&dir, new_epoch);
        if let Some(started) = started {
            crate::obs::storage_obs()
                .checkpoint_ns
                .record_duration(started.elapsed());
        }
        Ok(())
    }

    /// Persists the database into `dir` (created if needed) as a fresh
    /// epoch-0 snapshot, all files written atomically (tmp + fsync +
    /// rename for the catalog commit point).
    ///
    /// Detached export only: an attached database must use
    /// [`Database::checkpoint`], which also rotates its live WAL.
    pub fn save(&self, dir: &Path) -> Result<(), DbError> {
        if let Some(att) = &self.attachment {
            if same_dir(&att.dir, dir) {
                return Err(DbError::Mode(
                    "save() into the attached directory would bypass the WAL; use checkpoint()"
                        .into(),
                ));
            }
        }
        std::fs::create_dir_all(dir)?;
        self.write_state(dir, 0, None)?;
        cleanup_stray_files(dir, 0);
        Ok(())
    }

    /// Writes the complete current state under `epoch`: one heap file per
    /// partition, an empty WAL, then the catalog (with the partition
    /// manifest) via tmp + fsync + rename — the commit point; files of a
    /// new epoch are invisible until it lands.
    ///
    /// With `link_from = Some(old_epoch)` (the checkpoint path), clean
    /// partitions are hard-linked from the old epoch's files instead of
    /// rewritten; heap files are immutable once committed, so sharing the
    /// inode across epochs is safe. A failed link silently degrades to a
    /// fresh write.
    fn write_state(&self, dir: &Path, epoch: u64, link_from: Option<u64>) -> Result<(), DbError> {
        let mut linked = 0u64;
        let mut rewritten = 0u64;
        for (name, rel) in &self.relations {
            // Relations normally carry a live partition map; build one on
            // the fly for out-of-band states (defensive, not a hot path).
            let fallback;
            let parts = match self.partitions.get(name) {
                Some(p) => p.as_ref(),
                None => {
                    fallback = PartitionMap::build(rel, self.partition_policy);
                    &fallback
                }
            };
            let mut any_dirty = false;
            for (id, part) in parts.iter() {
                let final_path = partition_heap_path(dir, name, epoch, id);
                if let Some(old_epoch) = link_from {
                    if !part.is_dirty()
                        && link_partition_file(
                            &partition_heap_path(dir, name, old_epoch, id),
                            &final_path,
                        )
                    {
                        linked += 1;
                        continue;
                    }
                }
                any_dirty = true;
                rewritten += 1;
                let tmp_path = tmp_sibling(&final_path);
                let mut heap = HeapFile::create(&tmp_path)?;
                for tuple in rel.scan_positions(&part.positions().collect::<Vec<_>>()) {
                    let mut e = Encoder::new();
                    e.put_tuple(tuple);
                    heap.insert(&e.finish())?;
                }
                heap.sync()?;
                std::fs::rename(&tmp_path, &final_path)?;
            }
            // The relation's on-disk B+tree over (birth, position): one
            // file per relation per epoch, linked across epochs whenever
            // no partition changed (same membership ⇒ same entries).
            let btx_final = btree_path(dir, name, epoch);
            let carried = !any_dirty
                && link_from.is_some_and(|old| {
                    link_partition_file(&btree_path(dir, name, old), &btx_final)
                });
            if !carried {
                let mut entries: Vec<(i64, u32)> = Vec::new();
                for (pos, tuple) in rel.iter().enumerate() {
                    // Same birth rule as `PartitionMap::insert`: empty
                    // lifespans are treated as born at chronon 0.
                    let birth = tuple.lifespan().first().unwrap_or(Chronon::new(0)).tick();
                    entries.push((
                        birth,
                        // lint: no-panic-ok(record ids are u32 on disk, so an in-memory relation can never reach u32::MAX rows)
                        u32::try_from(pos).expect("relation fits in u32 positions"),
                    ));
                }
                let tmp_path = tmp_sibling(&btx_final);
                LifespanBTree::build(
                    &tmp_path,
                    Arc::clone(crate::pool::BufferPool::global()),
                    &mut entries,
                )?;
                std::fs::rename(&tmp_path, &btx_final)?;
            }
        }
        Wal::create_empty(&wal_path(dir, epoch))?;

        // Catalog file: MAGIC | VERSION | EPOCH | payload-len | payload | crc,
        // where the v3 payload is catalog ‖ partition policy ‖ manifest.
        let mut enc = Encoder::new();
        self.catalog.encode(&mut enc);
        self.partition_policy.encode(&mut enc);
        enc.put_u64(self.relations.len() as u64);
        for (name, rel) in &self.relations {
            let fallback;
            let parts = match self.partitions.get(name) {
                Some(p) => p.as_ref(),
                None => {
                    fallback = PartitionMap::build(rel, self.partition_policy);
                    &fallback
                }
            };
            enc.put_str(name);
            enc.put_u64(parts.partition_count() as u64);
            for (id, part) in parts.iter() {
                let (min_lo, max_hi) = part.summary_bounds();
                enc.put_i64(id);
                enc.put_u64(part.len() as u64);
                enc.put_i64(min_lo);
                enc.put_i64(max_hi);
            }
        }
        let payload = enc.finish();
        let mut file = Vec::with_capacity(payload.len() + 24);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&epoch.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        let final_path = dir.join(CATALOG_FILE);
        let tmp_path = tmp_sibling(&final_path);
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut f, &file)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // Make the renames themselves durable before reporting success.
        fsync_dir(dir);
        // Only checkpoints (link_from set) report partition-rewrite work;
        // a detached save always rewrites everything by construction.
        if link_from.is_some() && hrdm_obs::enabled() {
            let obs = crate::obs::storage_obs();
            obs.checkpoint_dirty_partitions.add(rewritten);
            obs.checkpoint_linked_partitions.add(linked);
        }
        Ok(())
    }

    /// Loads a database from `dir` read-only (no attachment): the last
    /// checkpoint plus every intact WAL record — the same state
    /// [`Database::open`] recovers, but without truncating torn tails on
    /// disk or holding the WAL open.
    pub fn load(dir: &Path) -> Result<Database, DbError> {
        let (mut db, epoch) = match read_checkpoint(dir)? {
            Some(found) => found,
            // A never-checkpointed attached directory has no catalog yet —
            // its whole state lives in `wal.0.log`, exactly like `open`.
            None if wal_path(dir, 0).exists() => (Database::new(), 0),
            None => {
                return Err(DbError::Io(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "no database at {}: neither catalog.hrdm nor wal.0.log",
                        dir.display()
                    ),
                )))
            }
        };
        // Indexes and partition maps are derived data: rebuild rather
        // than persist (before replay, so replayed inserts maintain them
        // incrementally) — a load always starts with valid access paths
        // for every relation.
        db.build_indexes();
        let wal_file = wal_path(dir, epoch);
        if wal_file.exists() {
            let (records, _torn) = Wal::replay(&wal_file)?;
            for record in records {
                db.apply_record(record)?;
            }
        }
        Ok(db)
    }
}

/// The decoded commit point of a checkpoint: catalog, policy, epoch, and
/// the partition manifest — everything the paged read path needs without
/// touching a single heap page.
pub(crate) struct CheckpointManifest {
    pub catalog: Catalog,
    pub policy: PartitionPolicy,
    pub epoch: u64,
    /// Relation → `[(partition id, tuple count, min_lo, max_hi)]`.
    pub relations: BTreeMap<String, Vec<(i64, u64, i64, i64)>>,
}

/// Reads and validates `catalog.hrdm` alone (header, CRC, manifest) —
/// `None` when no catalog exists yet. Shared by the eager loader
/// ([`Database::load`]) and the out-of-core one ([`crate::PagedDatabase`]).
pub(crate) fn read_catalog_manifest(dir: &Path) -> Result<Option<CheckpointManifest>, DbError> {
    // Every failure names the offending file: `BadFile` without a path
    // makes CI log triage on the recovery suite needlessly painful.
    let catalog_path = dir.join(CATALOG_FILE);
    let bytes = match std::fs::read(&catalog_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_with_path(&catalog_path, e)),
    };
    if bytes.len() < 24 || &bytes[0..4] != MAGIC {
        return Err(DbError::BadFile(format!(
            "{}: missing HRDM magic",
            catalog_path.display()
        )));
    }
    let truncated = || DbError::BadFile(format!("{}: truncated header", catalog_path.display()));
    let version = le_u32_at(&bytes, 4).ok_or_else(truncated)?;
    if version != VERSION {
        return Err(DbError::BadFile(format!(
            "{}: unsupported version {version}",
            catalog_path.display()
        )));
    }
    let epoch = le_u64_at(&bytes, 8).ok_or_else(truncated)?;
    let len = le_u64_at(&bytes, 16).ok_or_else(truncated)? as usize;
    if bytes.len() < 24 + len + 4 {
        return Err(DbError::BadFile(format!(
            "{}: truncated catalog",
            catalog_path.display()
        )));
    }
    let payload = &bytes[24..24 + len];
    let stored_crc = le_u32_at(&bytes, 24 + len).ok_or_else(truncated)?;
    if crc32(payload) != stored_crc {
        return Err(DbError::BadFile(format!(
            "{}: catalog checksum mismatch",
            catalog_path.display()
        )));
    }
    let mut dec = Decoder::new(payload);
    let catalog = Catalog::decode(&mut dec)?;
    let policy = PartitionPolicy::decode(&mut dec)?;

    // Partition manifest: relation → [(id, tuple count, summary bounds)].
    // The summaries answer pruning for cold partitions without reading
    // heap files.
    let n_rels = dec.get_u64()? as usize;
    let mut manifest: BTreeMap<String, Vec<(i64, u64, i64, i64)>> = BTreeMap::new();
    for _ in 0..n_rels {
        let name = dec.get_str()?.to_string();
        let n_parts = dec.get_u64()? as usize;
        let mut parts = Vec::with_capacity(n_parts.min(4096));
        for _ in 0..n_parts {
            let id = dec.get_i64()?;
            let count = dec.get_u64()?;
            let (min_lo, max_hi) = (dec.get_i64()?, dec.get_i64()?);
            parts.push((id, count, min_lo, max_hi));
        }
        manifest.insert(name, parts);
    }
    Ok(Some(CheckpointManifest {
        catalog,
        policy,
        epoch,
        relations: manifest,
    }))
}

/// Reads the checkpointed state (catalog + heap files) of `dir` and its
/// epoch, or `None` when no catalog exists yet. Verifies checksums and
/// re-validates every tuple against its (possibly evolved) scheme.
fn read_checkpoint(dir: &Path) -> Result<Option<(Database, u64)>, DbError> {
    let Some(manifest) = read_catalog_manifest(dir)? else {
        return Ok(None);
    };
    let catalog_path = dir.join(CATALOG_FILE);
    let CheckpointManifest {
        catalog,
        policy,
        epoch,
        relations: manifest,
    } = manifest;

    let mut relations = BTreeMap::new();
    let names: Vec<String> = catalog.relations().map(str::to_string).collect();
    for name in names {
        let Some(scheme) = catalog.scheme(&name).cloned() else {
            return Err(DbError::BadFile(format!(
                "{}: catalog is inconsistent about relation `{name}`",
                catalog_path.display()
            )));
        };
        let Some(parts) = manifest.get(&name) else {
            return Err(DbError::BadFile(format!(
                "{}: relation `{name}` missing from the partition manifest",
                catalog_path.display()
            )));
        };
        let mut tuples = Vec::new();
        for &(id, count, _, _) in parts {
            let path = partition_heap_path(dir, &name, epoch, id);
            let heap = HeapFile::open(&path).map_err(|e| io_with_path(&path, e))?;
            let mut in_partition = 0u64;
            for item in heap.scan() {
                let (_, rec) = item.map_err(|e| io_with_path(&path, e))?;
                // Clip to the (possibly evolved) scheme: values outside a
                // shrunk ALS become invisible, not invalid.
                let tuple = Decoder::new(&rec).get_tuple()?.clipped_to_scheme(&scheme);
                tuple.validate(&scheme).map_err(DbError::Model)?;
                tuples.push(tuple);
                in_partition += 1;
            }
            if in_partition != count {
                return Err(DbError::BadFile(format!(
                    "{}: partition p{id} holds {in_partition} tuple(s), manifest says {count}",
                    path.display()
                )));
            }
        }
        relations.insert(name, Relation::from_parts_unchecked(scheme, tuples));
    }
    let db = Database {
        catalog: Arc::new(catalog),
        relations,
        indexes: BTreeMap::new(),
        attachment: None,
        ops_applied: 0,
        partitions: BTreeMap::new(),
        partition_policy: policy,
    };
    Ok(Some((db, epoch)))
}

/// Wraps an I/O error with the path it concerns, so `Database::open` /
/// `Database::load` failures are triageable from the message alone.
pub(crate) fn io_with_path(path: &Path, e: io::Error) -> DbError {
    DbError::Io(io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// The WAL of checkpoint epoch `epoch`.
pub(crate) fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal.{epoch}.log"))
}

/// A sibling temp path for atomic writes (`<file>.tmp`). Every caller
/// passes a real file path; a bare root degrades to a generic name.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("hrdm"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// `u32::from_le_bytes` over `bytes[at..at + 4]`; `None` when short.
fn le_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let b = bytes.get(at..at + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// `u64::from_le_bytes` over `bytes[at..at + 8]`; `None` when short.
fn le_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let b = bytes.get(at..at + 8)?;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(b);
    Some(u64::from_le_bytes(arr))
}

/// Best-effort directory fsync, making renames durable (a no-op on
/// platforms where directories cannot be opened).
fn fsync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn same_dir(a: &Path, b: &Path) -> bool {
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(ca), Ok(cb)) => ca == cb,
        _ => a == b,
    }
}

/// Removes *database* files from other epochs and leftover `.tmp`
/// siblings — debris of aborted checkpoints (before their commit point)
/// or of superseded epochs (after it). Only names matching the database's
/// own patterns (`wal.<epoch>.log`, `<name>.<epoch>.heap`,
/// `<name>.<epoch>.p<id>.heap`, `<name>.<epoch>.btx`, their `.tmp`
/// siblings, `catalog.hrdm.tmp`) are ever touched: a user file like `build.log`
/// sitting in the directory is not ours to delete. Best effort: failures
/// leave garbage, never break the database.
///
/// The keep test is by epoch, not by an explicit file list: every file of
/// the current epoch stays (the catalog manifest, not memory, is the
/// authority on which of them the next open will read).
fn cleanup_stray_files(dir: &Path, epoch: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let is_tmp = name.ends_with(".tmp");
        let base = name.strip_suffix(".tmp").unwrap_or(name);
        let sweep = match classify_database_file(base) {
            Some(DbFileKind::Catalog) => is_tmp,
            Some(DbFileKind::Epochal(e)) => is_tmp || e != epoch,
            None => false,
        };
        if sweep {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// A file name this module itself writes, minus any `.tmp` suffix.
enum DbFileKind {
    /// The catalog commit point (`catalog.hrdm`).
    Catalog,
    /// A per-epoch file (WAL or heap) carrying this epoch stamp.
    Epochal(u64),
}

/// Classifies `base` against the database's own file patterns; `None` for
/// anything foreign (never ours to delete).
fn classify_database_file(base: &str) -> Option<DbFileKind> {
    if base == CATALOG_FILE {
        return Some(DbFileKind::Catalog);
    }
    let epoch_of = |s: &str| -> Option<u64> {
        (!s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            .then(|| s.parse().ok())
            .flatten()
    };
    if let Some(rest) = base
        .strip_prefix("wal.")
        .and_then(|r| r.strip_suffix(".log"))
    {
        return epoch_of(rest).map(DbFileKind::Epochal);
    }
    if let Some(rest) = base.strip_suffix(".heap") {
        // `<escaped-name>.<epoch>.p<id>` (current layout) or
        // `<escaped-name>.<epoch>` (pre-partition layout, still swept as
        // debris) — the escaped name never contains `.`.
        let (head, tail) = rest.rsplit_once('.')?;
        if let Some(id) = tail.strip_prefix('p') {
            if id.parse::<i64>().is_ok() {
                let (_, e) = head.rsplit_once('.')?;
                return epoch_of(e).map(DbFileKind::Epochal);
            }
        }
        return epoch_of(tail).map(DbFileKind::Epochal);
    }
    if let Some(rest) = base.strip_suffix(".btx") {
        // `<escaped-name>.<epoch>` — the relation's on-disk B+tree.
        let (_, e) = rest.rsplit_once('.')?;
        return epoch_of(e).map(DbFileKind::Epochal);
    }
    None
}

/// Hard-links a clean partition's heap file from the previous epoch into
/// the new one (falling back to a durable byte copy on filesystems
/// without hard links). Returns `false` when neither works — the caller
/// writes fresh.
///
/// A hard link shares the already-fsync'd inode, so it needs no data
/// sync of its own (the later directory fsync covers the new name). The
/// copy fallback must be as durable as the fresh-write path: copy to a
/// tmp sibling, fsync, rename — otherwise the checkpoint could commit a
/// catalog referencing bytes still sitting in the page cache.
fn link_partition_file(old: &Path, new: &Path) -> bool {
    if !old.exists() {
        return false;
    }
    // A leftover from an aborted earlier checkpoint would make the link
    // fail with AlreadyExists; it is pre-commit debris, safe to replace.
    let _ = std::fs::remove_file(new);
    if std::fs::hard_link(old, new).is_ok() {
        return true;
    }
    let tmp = tmp_sibling(new);
    let copied = std::fs::copy(old, &tmp).is_ok()
        && std::fs::File::open(&tmp).is_ok_and(|f| f.sync_all().is_ok())
        && std::fs::rename(&tmp, new).is_ok();
    if !copied {
        let _ = std::fs::remove_file(&tmp);
    }
    copied
}

/// Escapes a caller-controlled relation name **injectively** into a tame
/// file name: alphanumerics pass through, `_` doubles to `__`, and any
/// other character becomes `_<hex>_`. Distinct relation names can
/// therefore never collide on one file (`"emp dept"` → `emp_20_dept`,
/// `"emp_dept"` → `emp__dept`).
fn escape_relation_name(relation: &str) -> String {
    let mut safe = String::with_capacity(relation.len());
    for c in relation.chars() {
        if c.is_ascii_alphanumeric() {
            safe.push(c);
        } else if c == '_' {
            safe.push_str("__");
        } else {
            use std::fmt::Write;
            let _ = write!(safe, "_{:x}_", c as u32);
        }
    }
    safe
}

/// The heap file of `relation`'s partition `part` under checkpoint
/// `epoch`: `<escaped-name>.<epoch>.p<id>.heap`.
pub(crate) fn partition_heap_path(dir: &Path, relation: &str, epoch: u64, part: i64) -> PathBuf {
    dir.join(format!(
        "{}.{epoch}.p{part}.heap",
        escape_relation_name(relation)
    ))
}

/// The on-disk B+tree of `relation` under checkpoint `epoch`:
/// `<escaped-name>.<epoch>.btx`.
pub(crate) fn btree_path(dir: &Path, relation: &str, epoch: u64) -> PathBuf {
    dir.join(format!("{}.{epoch}.btx", escape_relation_name(relation)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{HistoricalDomain, TemporalValue, Value, ValueKind};
    use hrdm_time::Lifespan;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-db-{}-{name}", std::process::id()));
        p
    }

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, lo: i64, hi: i64, salary: i64) -> Tuple {
        let life = Lifespan::interval(lo, hi);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .finish(&emp_scheme())
            .unwrap()
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp("roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        db.insert("emp", emp("Mary", 5, 30, 30_000)).unwrap();
        db.save(&dir).unwrap();

        let back = Database::load(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap(), db.relation("emp").unwrap());
        assert_eq!(back.catalog().log().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn key_constraint_enforced_through_db() {
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        assert!(matches!(
            db.insert("emp", emp("John", 30, 40, 9)),
            Err(DbError::Model(HrdmError::KeyViolation { .. }))
        ));
        assert!(matches!(
            db.insert("nope", emp("X", 0, 1, 1)),
            Err(DbError::Model(HrdmError::UnknownRelation(_)))
        ));
    }

    #[test]
    fn corrupted_catalog_detected() {
        let dir = tmp("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.save(&dir).unwrap();
        let path = dir.join("catalog.hrdm");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 6;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Database::load(&dir),
            Err(DbError::BadFile(_)) | Err(DbError::Codec(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    /// A catalog cut short anywhere must be rejected as `BadFile`, never
    /// silently half-loaded (the old `fs::write` save path could leave
    /// such a file after a crash; the atomic rename makes it unreachable,
    /// but load still defends against it).
    #[test]
    fn truncated_catalog_rejected_at_every_length() {
        let dir = tmp("truncated-catalog");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.save(&dir).unwrap();
        let path = dir.join("catalog.hrdm");
        let full = std::fs::read(&path).unwrap();
        for cut in [1, 4, 8, 16, 23, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(Database::load(&dir), Err(DbError::BadFile(_))),
                "cut at {cut} must be BadFile"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn schema_evolution_persists() {
        let dir = tmp("evolve");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.drop_attribute("emp", &"SALARY".into(), hrdm_time::Chronon::new(50))
            .unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        let als = back
            .catalog()
            .scheme("emp")
            .unwrap()
            .als(&"SALARY".into())
            .unwrap()
            .clone();
        assert_eq!(als, Lifespan::interval(0, 49));
        assert_eq!(back.catalog().log().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn indexes_track_mutations_and_survive_load() {
        let dir = tmp("indexes");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        // Fresh relation: index exists (empty).
        assert_eq!(db.indexes("emp").unwrap().tuple_count(), 0);

        // Insert maintains the indexes incrementally — no invalidation.
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        let idx = db.indexes("emp").expect("insert keeps indexes valid");
        assert_eq!(idx.tuple_count(), 1);
        let stab = idx.lifespan().stab(hrdm_time::Chronon::new(5));
        assert_eq!(stab, vec![0]);

        // put_relation rebuilds eagerly.
        let rel = db.relation("emp").unwrap().clone();
        db.put_relation("emp", rel).unwrap();
        assert_eq!(db.indexes("emp").unwrap().tuple_count(), 1);

        // A loaded database has indexes for every relation, rebuilt from
        // the heap files.
        db.insert("emp", emp("Mary", 5, 30, 30_000)).unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        let idx = back.indexes("emp").expect("load builds indexes");
        assert_eq!(idx.tuple_count(), 2);
        let key = idx.key().expect("keyed scheme has a key index");
        let pos = key.lookup(&[hrdm_core::Value::str("Mary")]);
        assert_eq!(pos.len(), 1);
        assert_eq!(
            back.relation("emp")
                .unwrap()
                .tuple_at(pos[0])
                .unwrap()
                .lifespan(),
            &Lifespan::interval(5, 30)
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ensure_indexes_unknown_relation_errors() {
        let mut db = Database::new();
        assert!(matches!(
            db.ensure_indexes("ghost"),
            Err(HrdmError::UnknownRelation(_))
        ));
        assert!(db.indexes("ghost").is_none());
    }

    #[test]
    fn missing_magic_rejected() {
        let dir = tmp("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("catalog.hrdm"), b"not a database").unwrap();
        assert!(matches!(Database::load(&dir), Err(DbError::BadFile(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    /// The heap-path escaping is injective: `"emp dept"` and `"emp_dept"`
    /// used to collide on `emp_dept.heap`, one silently overwriting the
    /// other on save.
    #[test]
    fn similar_relation_names_do_not_collide_on_disk() {
        assert_ne!(
            partition_heap_path(Path::new("/d"), "emp dept", 0, 0),
            partition_heap_path(Path::new("/d"), "emp_dept", 0, 0)
        );
        assert_ne!(
            partition_heap_path(Path::new("/d"), "a_b", 0, 0),
            partition_heap_path(Path::new("/d"), "a__b", 0, 0)
        );

        let dir = tmp("collide");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::new();
        db.create_relation("emp dept", emp_scheme()).unwrap();
        db.create_relation("emp_dept", emp_scheme()).unwrap();
        db.insert("emp dept", emp("Spaced", 0, 10, 1)).unwrap();
        db.insert("emp_dept", emp("Scored", 0, 10, 2)).unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        assert_eq!(back.relation("emp dept").unwrap().len(), 1);
        assert_eq!(back.relation("emp_dept").unwrap().len(), 1);
        assert_eq!(
            back.relation("emp dept").unwrap().tuples()[0]
                .key_values(&emp_scheme())
                .unwrap(),
            vec![Value::str("Spaced")]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_insert_reopen_recovers_from_wal_alone() {
        let dir = tmp("wal-recover");
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_relation("emp", emp_scheme()).unwrap();
            db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
            // No checkpoint, no save: the database is dropped ("killed").
        }
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap().len(), 1);
        assert!(back.is_attached());
        assert_eq!(back.epoch(), Some(0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_rotates_epoch_and_truncates_wal() {
        let dir = tmp("checkpoint");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.epoch(), Some(1));
        assert!(wal_path(&dir, 1).exists());
        assert_eq!(std::fs::metadata(wal_path(&dir, 1)).unwrap().len(), 0);
        assert!(!wal_path(&dir, 0).exists(), "old epoch's WAL is cleaned");

        db.insert("emp", emp("Mary", 5, 30, 30_000)).unwrap();
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    /// The stray-file sweep touches only the database's own file
    /// patterns: a user's `build.log` / `notes.tmp` / `data.heap` in the
    /// same directory must survive open, checkpoint, and save.
    #[test]
    fn cleanup_never_deletes_unrelated_user_files() {
        let dir = tmp("user-files");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for f in ["build.log", "notes.tmp", "data.heap", "wal.bak.log"] {
            std::fs::write(dir.join(f), b"precious").unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        db.checkpoint().unwrap();
        drop(db);
        let _ = Database::open(&dir).unwrap();
        for f in ["build.log", "notes.tmp", "data.heap", "wal.bak.log"] {
            assert!(dir.join(f).exists(), "{f} was deleted");
        }
        // While actual debris is swept (checkpoint moved us to epoch 1).
        assert!(!dir.join("wal.0.log").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    /// A never-checkpointed attached directory (WAL only, no catalog) is
    /// loadable read-only, recovering the same state `open` recovers.
    #[test]
    fn load_reads_wal_only_directory() {
        let dir = tmp("load-wal-only");
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_relation("emp", emp_scheme()).unwrap();
            db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        }
        assert!(!dir.join(CATALOG_FILE).exists());
        let back = Database::load(&dir).unwrap();
        assert!(!back.is_attached());
        assert_eq!(back.relation("emp").unwrap().len(), 1);

        // An empty directory is still not a database.
        let empty = tmp("load-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(Database::load(&empty).is_err());
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(empty).ok();
    }

    /// Contents whose scheme differs from the catalog's are rejected up
    /// front: accepting them would poison the next checkpoint (heap
    /// tuples that fail re-validation against the catalog scheme on
    /// open — a permanently unopenable database).
    #[test]
    fn put_relation_with_divergent_scheme_rejected() {
        let dir = tmp("put-mismatch");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", emp_scheme()).unwrap();
        let wider = Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .attr("BONUS", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .build()
            .unwrap();
        assert!(matches!(
            db.put_relation("emp", Relation::new(wider)),
            Err(DbError::SchemeMismatch { .. })
        ));
        // Matching contents go through, and the database survives the
        // checkpoint + open round trip.
        let life = Lifespan::interval(0, 10);
        let t = Tuple::builder(life.clone())
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::constant(&life, Value::Int(7)))
            .finish(&emp_scheme())
            .unwrap();
        db.put_relation("emp", Relation::with_tuples(emp_scheme(), vec![t]).unwrap())
            .unwrap();
        db.checkpoint().unwrap();
        drop(db);
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn save_into_attached_dir_refused() {
        let dir = tmp("save-attached");
        std::fs::remove_dir_all(&dir).ok();
        let db = Database::open(&dir).unwrap();
        assert!(matches!(db.save(&dir), Err(DbError::Mode(_))));
        let other = tmp("save-attached-other");
        std::fs::remove_dir_all(&other).ok();
        db.save(&other).unwrap(); // exporting elsewhere is fine
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(other).ok();
    }

    #[test]
    fn checkpoint_requires_attachment() {
        let mut db = Database::new();
        assert!(matches!(db.checkpoint(), Err(DbError::Mode(_))));
    }

    #[test]
    fn empty_commit_batch_returns_no_results() {
        let mut db = Database::new();
        assert!(db.commit_batch(Vec::new()).is_empty());
    }

    /// The batch-undo machinery restores exactly the pre-batch state:
    /// insert-only batches roll back by truncation (indexes rebuilt and
    /// consistent), mixed batches by the pinned full state. This is the
    /// path a failed batch fsync takes — a write that returned `Err` must
    /// never become visible.
    #[test]
    fn rollback_restores_pre_batch_state() {
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        let version_before = db.version();

        // Insert-only undo: truncation + index rebuild.
        let batch = vec![
            WalRecord::Insert {
                relation: "emp".into(),
                tuple: emp("Mary", 5, 30, 30_000),
            },
            WalRecord::Insert {
                relation: "emp".into(),
                tuple: emp("Igor", 8, 25, 27_000),
            },
        ];
        let undo = db.undo_point(&batch);
        assert!(matches!(undo, BatchUndo::InsertLens { .. }));
        for r in db.commit_batch(batch) {
            r.unwrap();
        }
        assert_eq!(db.relation("emp").unwrap().len(), 3);
        db.rollback(undo);
        assert_eq!(db.relation("emp").unwrap().len(), 1);
        assert_eq!(db.version(), version_before);
        let idx = db.indexes("emp").unwrap();
        assert_eq!(idx.tuple_count(), 1);
        assert!(idx.key().unwrap().lookup(&[Value::str("Mary")]).is_empty());
        assert_eq!(idx.key().unwrap().lookup(&[Value::str("John")]).len(), 1);

        // A batch touching the catalog pins the full state.
        let batch = vec![WalRecord::DropAttribute {
            relation: "emp".into(),
            attribute: "SALARY".into(),
            at: Chronon::new(50),
        }];
        let undo = db.undo_point(&batch);
        assert!(matches!(undo, BatchUndo::Full { .. }));
        for r in db.commit_batch(batch) {
            r.unwrap();
        }
        assert_eq!(
            db.catalog()
                .scheme("emp")
                .unwrap()
                .als(&"SALARY".into())
                .unwrap(),
            &Lifespan::interval(0, 49)
        );
        db.rollback(undo);
        assert_eq!(
            db.catalog()
                .scheme("emp")
                .unwrap()
                .als(&"SALARY".into())
                .unwrap(),
            &Lifespan::interval(0, 100)
        );
        assert_eq!(db.version(), version_before);
    }

    /// A failed append must not leave the failed batch's frames on disk:
    /// `Wal::rollback_to` cuts the log back so a crash-reopen cannot
    /// resurrect writes whose submitters got `Err`.
    #[test]
    fn wal_rollback_to_discards_appended_frames() {
        let dir = tmp("wal-rollback");
        std::fs::remove_dir_all(&dir).ok();
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        let att = db.attachment.as_mut().expect("attached");
        let offset = att.wal.offset().unwrap();
        // Simulate a batch whose fsync "failed" after the frames landed.
        att.wal
            .append_batch(&[WalRecord::Insert {
                relation: "emp".into(),
                tuple: emp("Mary", 5, 30, 30_000),
            }
            .payload()])
            .unwrap();
        att.wal.rollback_to(offset).unwrap();
        drop(db);
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap().len(), 1, "cut write is gone");
        // And the log is healthy for further appends.
        let mut back = back;
        back.insert("emp", emp("Igor", 8, 25, 27_000)).unwrap();
        let again = Database::load(&dir).unwrap();
        assert_eq!(again.relation("emp").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The brick scenario: evolution must resync the live relation's
    /// scheme, so post-evolution inserts are validated against the same
    /// scheme recovery will use. Otherwise an insert accepted under a
    /// stale scheme is acknowledged, fsync'd — and then fails WAL replay,
    /// leaving the database permanently unopenable.
    #[test]
    fn evolution_resyncs_live_scheme_so_recovery_never_bricks() {
        let dir = tmp("evolve-sync");
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_relation("emp", emp_scheme()).unwrap();
            db.insert("emp", emp("John", 0, 80, 25_000)).unwrap();
            db.drop_attribute("emp", &"SALARY".into(), Chronon::new(50))
                .unwrap();
            // The live relation carries the evolved scheme, its stored
            // values clipped to the shrunk ALS.
            let rel = db.relation("emp").unwrap();
            assert_eq!(
                rel.scheme().als(&"SALARY".into()).unwrap(),
                &Lifespan::interval(0, 49)
            );
            db.checkpoint().unwrap();

            // An insert whose SALARY strays past the evolved ALS is
            // rejected up front — not acknowledged and lost at replay.
            assert!(matches!(
                db.insert("emp", emp("Mary", 0, 80, 30_000)),
                Err(DbError::Model(HrdmError::ValueOutsideLifespan { .. }))
            ));
            // A conforming insert (built against the evolved scheme) is
            // accepted and fsync'd.
            let evolved = db.catalog().scheme("emp").unwrap().clone();
            let life = Lifespan::interval(0, 80);
            let mary = Tuple::builder(life)
                .constant("NAME", "Mary")
                .value(
                    "SALARY",
                    TemporalValue::constant(&Lifespan::interval(0, 40), Value::Int(30_000)),
                )
                .finish(&evolved)
                .unwrap();
            db.insert("emp", mary).unwrap();
            // Kill without checkpoint.
        }
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn durable_evolution_replays() {
        let dir = tmp("evolve-wal");
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_relation("emp", emp_scheme()).unwrap();
            db.add_attribute(
                "emp",
                Attribute::new("DEPT"),
                HistoricalDomain::string(),
                Chronon::new(0),
                Chronon::new(100),
            )
            .unwrap();
            db.drop_attribute("emp", &Attribute::new("DEPT"), Chronon::new(40))
                .unwrap();
            db.re_add_attribute(
                "emp",
                &Attribute::new("DEPT"),
                Chronon::new(60),
                Chronon::new(90),
            )
            .unwrap();
        }
        let back = Database::open(&dir).unwrap();
        let als = back
            .catalog()
            .scheme("emp")
            .unwrap()
            .als(&Attribute::new("DEPT"))
            .unwrap()
            .clone();
        assert_eq!(als, Lifespan::of(&[(0, 39), (60, 90)]));
        assert_eq!(back.catalog().log().len(), 4);
        std::fs::remove_dir_all(dir).ok();
    }
}
