//! A persistent database of historical relations.
//!
//! Layout on disk: one directory per database, containing `catalog.hrdm`
//! (magic + version + catalog + CRC) and one `<relation>.heap` heap file per
//! relation, each record an encoded tuple.

use crate::catalog::Catalog;
use crate::codec::{CodecError, Decoder, Encoder};
use crate::heap::HeapFile;
use crate::page::crc32;
use hrdm_core::{HrdmError, Relation, Result, Scheme, Tuple};
use hrdm_index::RelationIndexes;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"HRDM";
const VERSION: u32 = 1;

/// Errors from database persistence.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem error.
    Io(io::Error),
    /// Encoding/decoding error.
    Codec(CodecError),
    /// Model-level error.
    Model(HrdmError),
    /// Bad file header or checksum.
    BadFile(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Codec(e) => write!(f, "codec error: {e}"),
            DbError::Model(e) => write!(f, "model error: {e}"),
            DbError::BadFile(what) => write!(f, "bad database file: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}
impl From<CodecError> for DbError {
    fn from(e: CodecError) -> Self {
        DbError::Codec(e)
    }
}
impl From<HrdmError> for DbError {
    fn from(e: HrdmError) -> Self {
        DbError::Model(e)
    }
}

/// An in-memory database of historical relations with directory-based
/// persistence — the physical level a downstream user actually touches.
#[derive(Default)]
pub struct Database {
    catalog: Catalog,
    relations: BTreeMap<String, Relation>,
    /// Access methods per relation (`hrdm-index`). An entry exists only
    /// while it is **valid**: mutations drop the relation's entry, and
    /// [`Database::ensure_indexes`] / [`Database::build_indexes`] rebuild.
    /// Indexes are derived data, so they are not persisted — [`Database::load`]
    /// rebuilds them from the heap files.
    indexes: BTreeMap<String, RelationIndexes>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The catalog (schemes + evolution log).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for schema-evolution operations.
    ///
    /// Note: evolving a scheme does not retroactively invalidate stored
    /// tuples; values outside a *shrunk* ALS become invisible to `vls`, per
    /// the paper's semantics.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Creates a relation.
    pub fn create_relation(&mut self, name: &str, scheme: Scheme) -> Result<()> {
        self.catalog.create_relation(name, scheme.clone())?;
        let relation = Relation::new(scheme);
        self.indexes
            .insert(name.to_string(), RelationIndexes::build(&relation));
        self.relations.insert(name.to_string(), relation);
        Ok(())
    }

    /// The relation named `name`.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Replaces the contents of `name` (e.g. with a query result).
    ///
    /// The relation must have been registered via
    /// [`Database::create_relation`] first — persistence is driven by the
    /// catalog, so an unregistered relation would silently not survive a
    /// save/load round trip.
    pub fn put_relation(&mut self, name: &str, relation: Relation) -> Result<()> {
        if self.catalog.scheme(name).is_none() {
            return Err(HrdmError::UnknownAttribute(hrdm_core::Attribute::new(name)));
        }
        self.indexes.remove(name); // contents changed wholesale
        self.relations.insert(name.to_string(), relation);
        Ok(())
    }

    /// Inserts a tuple into `name`, invalidating the relation's indexes
    /// (they are rebuilt on the next [`Database::ensure_indexes`]).
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<()> {
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| HrdmError::UnknownAttribute(hrdm_core::Attribute::new(name)))?;
        rel.insert(tuple)?;
        self.indexes.remove(name);
        Ok(())
    }

    /// The current, valid indexes of `name`, if built. `None` means either
    /// an unknown relation or indexes invalidated by a mutation — callers
    /// (the query planner) must fall back to a sequential scan.
    pub fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        self.indexes.get(name)
    }

    /// Ensures `name`'s indexes exist and are current, building if needed.
    pub fn ensure_indexes(&mut self, name: &str) -> Result<&RelationIndexes> {
        if !self.relations.contains_key(name) {
            return Err(HrdmError::UnknownAttribute(hrdm_core::Attribute::new(name)));
        }
        if !self.indexes.contains_key(name) {
            let built = RelationIndexes::build(&self.relations[name]);
            self.indexes.insert(name.to_string(), built);
        }
        Ok(&self.indexes[name])
    }

    /// (Re)builds indexes for every relation.
    pub fn build_indexes(&mut self) {
        let names: Vec<String> = self.relations.keys().cloned().collect();
        for name in names {
            let built = RelationIndexes::build(&self.relations[&name]);
            self.indexes.insert(name, built);
        }
    }

    /// The registered relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(String::as_str)
    }

    /// Persists the database into `dir` (created if needed).
    pub fn save(&self, dir: &Path) -> std::result::Result<(), DbError> {
        std::fs::create_dir_all(dir)?;
        // Catalog file: MAGIC | VERSION | payload-len | payload | crc.
        let mut enc = Encoder::new();
        self.catalog.encode(&mut enc);
        let payload = enc.finish();
        let mut file = Vec::with_capacity(payload.len() + 16);
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        std::fs::write(dir.join("catalog.hrdm"), &file)?;

        for (name, rel) in &self.relations {
            let mut heap = HeapFile::create(&heap_path(dir, name))?;
            for tuple in rel.iter() {
                let mut e = Encoder::new();
                e.put_tuple(tuple);
                heap.insert(&e.finish())?;
            }
            heap.sync()?;
        }
        Ok(())
    }

    /// Loads a database from `dir`, verifying checksums and re-validating
    /// every tuple against its (possibly evolved) scheme.
    pub fn load(dir: &Path) -> std::result::Result<Database, DbError> {
        let bytes = std::fs::read(dir.join("catalog.hrdm"))?;
        if bytes.len() < 16 || &bytes[0..4] != MAGIC {
            return Err(DbError::BadFile("missing HRDM magic".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(DbError::BadFile(format!("unsupported version {version}")));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        if bytes.len() < 16 + len + 4 {
            return Err(DbError::BadFile("truncated catalog".into()));
        }
        let payload = &bytes[16..16 + len];
        let stored_crc =
            u32::from_le_bytes(bytes[16 + len..16 + len + 4].try_into().expect("4 bytes"));
        if crc32(payload) != stored_crc {
            return Err(DbError::BadFile("catalog checksum mismatch".into()));
        }
        let catalog = Catalog::decode(&mut Decoder::new(payload))?;

        let mut relations = BTreeMap::new();
        let names: Vec<String> = catalog.relations().map(str::to_string).collect();
        for name in names {
            let scheme = catalog
                .scheme(&name)
                .expect("catalog lists its own relations")
                .clone();
            let path = heap_path(dir, &name);
            let mut tuples = Vec::new();
            if path.exists() {
                let heap = HeapFile::open(&path)?;
                for (_, rec) in heap.scan() {
                    // Clip to the (possibly evolved) scheme: values outside a
                    // shrunk ALS become invisible, not invalid.
                    let tuple = Decoder::new(rec).get_tuple()?.clipped_to_scheme(&scheme);
                    tuple.validate(&scheme).map_err(DbError::Model)?;
                    tuples.push(tuple);
                }
            }
            relations.insert(name, Relation::from_parts_unchecked(scheme, tuples));
        }
        let mut db = Database {
            catalog,
            relations,
            indexes: BTreeMap::new(),
        };
        // Indexes are derived data: rebuild rather than persist, so a load
        // always starts with valid access paths for every relation.
        db.build_indexes();
        Ok(db)
    }
}

fn heap_path(dir: &Path, relation: &str) -> PathBuf {
    // Relation names are caller-controlled; keep the file name tame.
    let safe: String = relation
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.heap"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{HistoricalDomain, TemporalValue, Value, ValueKind};
    use hrdm_time::Lifespan;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-db-{}-{name}", std::process::id()));
        p
    }

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, lo: i64, hi: i64, salary: i64) -> Tuple {
        let life = Lifespan::interval(lo, hi);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .finish(&emp_scheme())
            .unwrap()
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp("roundtrip");
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        db.insert("emp", emp("Mary", 5, 30, 30_000)).unwrap();
        db.save(&dir).unwrap();

        let back = Database::load(&dir).unwrap();
        assert_eq!(back.relation("emp").unwrap(), db.relation("emp").unwrap());
        assert_eq!(back.catalog().log().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn key_constraint_enforced_through_db() {
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        assert!(db.insert("emp", emp("John", 30, 40, 9)).is_err());
        assert!(db.insert("nope", emp("X", 0, 1, 1)).is_err());
    }

    #[test]
    fn corrupted_catalog_detected() {
        let dir = tmp("corrupt");
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.save(&dir).unwrap();
        let path = dir.join("catalog.hrdm");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 6;
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Database::load(&dir),
            Err(DbError::BadFile(_)) | Err(DbError::Codec(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn schema_evolution_persists() {
        let dir = tmp("evolve");
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        db.catalog_mut()
            .drop_attribute("emp", &"SALARY".into(), hrdm_time::Chronon::new(50))
            .unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        let als = back
            .catalog()
            .scheme("emp")
            .unwrap()
            .als(&"SALARY".into())
            .unwrap()
            .clone();
        assert_eq!(als, Lifespan::interval(0, 49));
        assert_eq!(back.catalog().log().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn indexes_track_mutations_and_survive_load() {
        let dir = tmp("indexes");
        let mut db = Database::new();
        db.create_relation("emp", emp_scheme()).unwrap();
        // Fresh relation: index exists (empty).
        assert_eq!(db.indexes("emp").unwrap().tuple_count(), 0);

        // Insert invalidates…
        db.insert("emp", emp("John", 0, 20, 25_000)).unwrap();
        assert!(db.indexes("emp").is_none());
        // …and ensure_indexes rebuilds over current contents.
        assert_eq!(db.ensure_indexes("emp").unwrap().tuple_count(), 1);
        let stab = db
            .indexes("emp")
            .unwrap()
            .lifespan()
            .stab(hrdm_time::Chronon::new(5));
        assert_eq!(stab, vec![0]);

        // put_relation also invalidates.
        let rel = db.relation("emp").unwrap().clone();
        db.put_relation("emp", rel).unwrap();
        assert!(db.indexes("emp").is_none());
        db.build_indexes();
        assert!(db.indexes("emp").is_some());

        // A loaded database has indexes for every relation, rebuilt from
        // the heap files.
        db.insert("emp", emp("Mary", 5, 30, 30_000)).unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        let idx = back.indexes("emp").expect("load builds indexes");
        assert_eq!(idx.tuple_count(), 2);
        let key = idx.key().expect("keyed scheme has a key index");
        let pos = key.lookup(&[hrdm_core::Value::str("Mary")]);
        assert_eq!(pos.len(), 1);
        assert_eq!(
            back.relation("emp")
                .unwrap()
                .tuple_at(pos[0])
                .unwrap()
                .lifespan(),
            &Lifespan::interval(5, 30)
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ensure_indexes_unknown_relation_errors() {
        let mut db = Database::new();
        assert!(db.ensure_indexes("ghost").is_err());
        assert!(db.indexes("ghost").is_none());
    }

    #[test]
    fn missing_magic_rejected() {
        let dir = tmp("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("catalog.hrdm"), b"not a database").unwrap();
        assert!(matches!(Database::load(&dir), Err(DbError::BadFile(_))));
        std::fs::remove_dir_all(dir).ok();
    }
}
