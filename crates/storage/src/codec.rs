//! Binary codec for HRDM model objects.
//!
//! Varint (LEB128) for unsigned integers, zigzag+varint for signed, a tag
//! byte per variant type. The format is self-contained and versioned by the
//! [`crate::database`] file header; property tests assert exact round trips
//! for every model object.

use hrdm_core::{
    Attribute, AttributeDef, HistoricalDomain, Relation, Scheme, TemporalValue, Tuple, Value,
    ValueKind,
};
use hrdm_time::{Chronon, Interval, Lifespan};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Ran out of bytes mid-object.
    UnexpectedEof,
    /// An unknown tag byte for the given type.
    BadTag(&'static str, u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A decoded object violated a model invariant (e.g. `lo > hi`).
    Invariant(&'static str),
    /// A varint was longer than the maximum width.
    VarintOverflow,
    /// Model-level validation failed while reassembling an object.
    Model(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag(ty, tag) => write!(f, "bad tag {tag:#x} for {ty}"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string payload"),
            CodecError::Invariant(what) => write!(f, "invariant violation: {what}"),
            CodecError::VarintOverflow => write!(f, "varint too long"),
            CodecError::Model(e) => write!(f, "model validation failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming encoder over a growable byte buffer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// LEB128 varint.
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Length-prefixed bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// A chronon (zigzag tick).
    pub fn put_chronon(&mut self, c: Chronon) {
        self.put_i64(c.tick());
    }

    /// An interval as `(lo, len)` — the length is non-negative, which keeps
    /// the invariant in the format itself.
    pub fn put_interval(&mut self, iv: &Interval) {
        self.put_i64(iv.lo().tick());
        self.put_u64((iv.hi().tick() - iv.lo().tick()) as u64);
    }

    /// A lifespan: run count + runs.
    pub fn put_lifespan(&mut self, ls: &Lifespan) {
        self.put_u64(ls.interval_count() as u64);
        for iv in ls.intervals() {
            self.put_interval(iv);
        }
    }

    /// A value: tag byte + payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.put_u8(0);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(1);
                self.buf.extend_from_slice(&f.get().to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                self.put_u8(2);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(3);
                self.put_u8(u8::from(*b));
            }
            Value::Time(t) => {
                self.put_u8(4);
                self.put_chronon(*t);
            }
        }
    }

    /// A temporal value: segment count + `(interval, value)` pairs.
    pub fn put_temporal_value(&mut self, tv: &TemporalValue) {
        self.put_u64(tv.segment_count() as u64);
        for (iv, v) in tv.segments() {
            self.put_interval(iv);
            self.put_value(v);
        }
    }

    /// A value kind.
    pub fn put_kind(&mut self, k: ValueKind) {
        self.put_u8(match k {
            ValueKind::Int => 0,
            ValueKind::Float => 1,
            ValueKind::Str => 2,
            ValueKind::Bool => 3,
            ValueKind::Time => 4,
        });
    }

    /// A historical domain: kind + constancy flag.
    pub fn put_domain(&mut self, d: &HistoricalDomain) {
        self.put_kind(d.kind());
        self.put_u8(u8::from(d.is_constant()));
    }

    /// A scheme: attribute defs + key names.
    pub fn put_scheme(&mut self, s: &Scheme) {
        self.put_u64(s.arity() as u64);
        for def in s.attrs() {
            self.put_str(def.name().name());
            self.put_domain(def.domain());
            self.put_lifespan(def.lifespan());
        }
        self.put_u64(s.key().len() as u64);
        for k in s.key() {
            self.put_str(k.name());
        }
    }

    /// A tuple: lifespan + value map.
    pub fn put_tuple(&mut self, t: &Tuple) {
        self.put_lifespan(t.lifespan());
        self.put_u64(t.values().len() as u64);
        for (a, tv) in t.values() {
            self.put_str(a.name());
            self.put_temporal_value(tv);
        }
    }

    /// A relation: scheme + tuples.
    pub fn put_relation(&mut self, r: &Relation) {
        self.put_scheme(r.scheme());
        self.put_u64(r.len() as u64);
        for t in r.iter() {
            self.put_tuple(t);
        }
    }
}

/// Streaming decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has all input been consumed?
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Raw byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// LEB128 varint.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(CodecError::VarintOverflow);
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Zigzag-decoded signed varint.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let z = self.get_u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u64()? as usize;
        self.take(len)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// A chronon.
    pub fn get_chronon(&mut self) -> Result<Chronon, CodecError> {
        Ok(Chronon::new(self.get_i64()?))
    }

    /// An interval.
    pub fn get_interval(&mut self) -> Result<Interval, CodecError> {
        let lo = self.get_i64()?;
        let len = self.get_u64()?;
        let hi = lo
            .checked_add(len as i64)
            .ok_or(CodecError::Invariant("interval length overflow"))?;
        Interval::new(Chronon::new(lo), Chronon::new(hi))
            .ok_or(CodecError::Invariant("interval lo > hi"))
    }

    /// A lifespan.
    pub fn get_lifespan(&mut self) -> Result<Lifespan, CodecError> {
        let n = self.get_u64()? as usize;
        let mut runs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            runs.push(self.get_interval()?);
        }
        Ok(Lifespan::from_intervals(runs))
    }

    /// A value.
    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        match self.get_u8()? {
            0 => Ok(Value::Int(self.get_i64()?)),
            1 => {
                let raw = self.take(8)?;
                let bits = u64::from_le_bytes(
                    raw.try_into()
                        .map_err(|_| CodecError::Invariant("float width"))?,
                );
                Value::float(f64::from_bits(bits)).map_err(|_| CodecError::Invariant("NaN float"))
            }
            2 => Ok(Value::str(self.get_str()?)),
            3 => Ok(Value::Bool(self.get_u8()? != 0)),
            4 => Ok(Value::Time(self.get_chronon()?)),
            tag => Err(CodecError::BadTag("Value", tag)),
        }
    }

    /// A temporal value.
    pub fn get_temporal_value(&mut self) -> Result<TemporalValue, CodecError> {
        let n = self.get_u64()? as usize;
        let mut segs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let iv = self.get_interval()?;
            let v = self.get_value()?;
            segs.push((iv, v));
        }
        TemporalValue::from_segments(segs).map_err(|e| CodecError::Model(e.to_string()))
    }

    /// A value kind.
    pub fn get_kind(&mut self) -> Result<ValueKind, CodecError> {
        match self.get_u8()? {
            0 => Ok(ValueKind::Int),
            1 => Ok(ValueKind::Float),
            2 => Ok(ValueKind::Str),
            3 => Ok(ValueKind::Bool),
            4 => Ok(ValueKind::Time),
            tag => Err(CodecError::BadTag("ValueKind", tag)),
        }
    }

    /// A historical domain.
    pub fn get_domain(&mut self) -> Result<HistoricalDomain, CodecError> {
        let kind = self.get_kind()?;
        let constant = self.get_u8()? != 0;
        Ok(if constant {
            HistoricalDomain::constant(kind)
        } else {
            HistoricalDomain::new(kind)
        })
    }

    /// A scheme.
    pub fn get_scheme(&mut self) -> Result<Scheme, CodecError> {
        let n = self.get_u64()? as usize;
        let mut attrs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = Attribute::new(self.get_str()?);
            let domain = self.get_domain()?;
            let lifespan = self.get_lifespan()?;
            attrs.push(AttributeDef::new(name, domain, lifespan));
        }
        let k = self.get_u64()? as usize;
        let mut key = Vec::with_capacity(k.min(1024));
        for _ in 0..k {
            key.push(Attribute::new(self.get_str()?));
        }
        Scheme::new(attrs, key).map_err(|e| CodecError::Model(e.to_string()))
    }

    /// A tuple.
    pub fn get_tuple(&mut self) -> Result<Tuple, CodecError> {
        let lifespan = self.get_lifespan()?;
        let n = self.get_u64()? as usize;
        let mut values = BTreeMap::new();
        for _ in 0..n {
            let a = Attribute::new(self.get_str()?);
            let tv = self.get_temporal_value()?;
            values.insert(a, tv);
        }
        Ok(Tuple::from_parts(lifespan, values))
    }

    /// A relation. Tuples are validated against the decoded scheme.
    pub fn get_relation(&mut self) -> Result<Relation, CodecError> {
        let scheme = self.get_scheme()?;
        let n = self.get_u64()? as usize;
        let mut tuples = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let t = self.get_tuple()?;
            t.validate(&scheme)
                .map_err(|e| CodecError::Model(e.to_string()))?;
            tuples.push(t);
        }
        Ok(Relation::from_parts_unchecked(scheme, tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut e = Encoder::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            e.put_u64(v);
        }
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(d.get_u64().unwrap(), v);
        }
        assert!(d.is_done());
    }

    #[test]
    fn zigzag_round_trip() {
        let mut e = Encoder::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            e.put_i64(v);
        }
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(d.get_i64().unwrap(), v);
        }
    }

    #[test]
    fn value_round_trip() {
        let values = vec![
            Value::Int(-42),
            Value::float(1.5).unwrap(),
            Value::str("Clifford & Croker"),
            Value::Bool(true),
            Value::time(1986),
        ];
        let mut e = Encoder::new();
        for v in &values {
            e.put_value(v);
        }
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        for v in &values {
            assert_eq!(&d.get_value().unwrap(), v);
        }
    }

    #[test]
    fn lifespan_round_trip() {
        let ls = Lifespan::of(&[(-10, -5), (0, 0), (7, 99)]);
        let mut e = Encoder::new();
        e.put_lifespan(&ls);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).get_lifespan().unwrap(), ls);
    }

    #[test]
    fn temporal_value_round_trip() {
        let tv = TemporalValue::of(&[
            (0, 9, Value::Int(25_000)),
            (10, 19, Value::Int(30_000)),
            (30, 39, Value::str("mixed").clone()),
        ]);
        let mut e = Encoder::new();
        e.put_temporal_value(&tv);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).get_temporal_value().unwrap(), tv);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.put_value(&Value::str("hello"));
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.get_value().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let bytes = [9u8];
        assert_eq!(
            Decoder::new(&bytes).get_value().unwrap_err(),
            CodecError::BadTag("Value", 9)
        );
        assert!(matches!(
            Decoder::new(&bytes).get_kind().unwrap_err(),
            CodecError::BadTag("ValueKind", 9)
        ));
    }

    #[test]
    fn nan_float_rejected_at_decode() {
        let mut e = Encoder::new();
        e.put_u8(1);
        let mut bytes = e.finish();
        bytes.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            Decoder::new(&bytes).get_value().unwrap_err(),
            CodecError::Invariant(_)
        ));
    }
}
