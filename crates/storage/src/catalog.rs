//! The system catalog, with first-class schema evolution.
//!
//! The paper's central schema-evolution example (Fig. 6): the stock-market
//! database records DAILY-TRADING-VOLUME over `[t1, t2]`, drops it ("too
//! expensive to collect"), and re-adds it at `t3` when a cheap source
//! appears. In HRDM that whole story lives in the **attribute lifespan**
//! `ALS(A, R)`; evolving the schema = editing attribute lifespans. The
//! catalog exposes exactly those edits and keeps an audit log of them.

use crate::codec::{CodecError, Decoder, Encoder};
use hrdm_core::{Attribute, AttributeDef, HistoricalDomain, HrdmError, Result, Scheme};
use hrdm_time::{Chronon, Lifespan};
use std::collections::BTreeMap;
use std::fmt;

/// One schema-evolution event, for the audit log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvolutionEvent {
    /// Relation created with its initial scheme.
    Created {
        /// Relation name.
        relation: String,
    },
    /// A new attribute added, defined from `from` through `to`.
    AttributeAdded {
        /// Relation name.
        relation: String,
        /// Attribute added.
        attribute: Attribute,
        /// First chronon of the attribute's lifespan.
        from: Chronon,
        /// Last chronon of the attribute's lifespan.
        to: Chronon,
    },
    /// An attribute dropped as of `at`: its lifespan is clipped to end at
    /// `at - 1` (history before the drop is retained — this is HRDM).
    AttributeDropped {
        /// Relation name.
        relation: String,
        /// Attribute dropped.
        attribute: Attribute,
        /// First chronon at which the attribute is no longer defined.
        at: Chronon,
    },
    /// A dropped attribute re-added over `[from, to]` — the paper's Fig. 6
    /// "cheap outside source discovered" move; the lifespan becomes the
    /// union of old and new periods.
    AttributeReAdded {
        /// Relation name.
        relation: String,
        /// Attribute re-added.
        attribute: Attribute,
        /// First chronon of the new period.
        from: Chronon,
        /// Last chronon of the new period.
        to: Chronon,
    },
}

impl fmt::Display for EvolutionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvolutionEvent::Created { relation } => write!(f, "create {relation}"),
            EvolutionEvent::AttributeAdded {
                relation,
                attribute,
                from,
                to,
            } => write!(f, "add {relation}.{attribute} over [{from},{to}]"),
            EvolutionEvent::AttributeDropped {
                relation,
                attribute,
                at,
            } => write!(f, "drop {relation}.{attribute} at {at}"),
            EvolutionEvent::AttributeReAdded {
                relation,
                attribute,
                from,
                to,
            } => write!(f, "re-add {relation}.{attribute} over [{from},{to}]"),
        }
    }
}

/// The catalog: relation name → current scheme, plus the evolution log.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    schemes: BTreeMap<String, Scheme>,
    log: Vec<EvolutionEvent>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a relation scheme.
    pub fn create_relation(&mut self, name: &str, scheme: Scheme) -> Result<()> {
        if self.schemes.contains_key(name) {
            return Err(HrdmError::DuplicateRelation(name.to_string()));
        }
        self.schemes.insert(name.to_string(), scheme);
        self.log.push(EvolutionEvent::Created {
            relation: name.to_string(),
        });
        Ok(())
    }

    /// The current scheme of `name`.
    pub fn scheme(&self, name: &str) -> Option<&Scheme> {
        self.schemes.get(name)
    }

    /// The registered relation names.
    pub fn relations(&self) -> impl Iterator<Item = &str> + '_ {
        self.schemes.keys().map(String::as_str)
    }

    /// The evolution audit log, oldest first.
    pub fn log(&self) -> &[EvolutionEvent] {
        &self.log
    }

    /// Adds a fresh attribute defined over `[from, to]`.
    pub fn add_attribute(
        &mut self,
        relation: &str,
        attribute: Attribute,
        domain: HistoricalDomain,
        from: Chronon,
        to: Chronon,
    ) -> Result<()> {
        let scheme = self
            .schemes
            .get(relation)
            .ok_or_else(|| HrdmError::UnknownRelation(relation.to_string()))?;
        if scheme.contains(&attribute) {
            return Err(HrdmError::DuplicateAttribute(attribute));
        }
        let span = Lifespan::try_interval(from, to).ok_or(HrdmError::EmptyScheme)?;
        let mut attrs = scheme.attrs().to_vec();
        attrs.push(AttributeDef::new(attribute.clone(), domain, span));
        let new = Scheme::new(attrs, scheme.key().to_vec())?;
        self.schemes.insert(relation.to_string(), new);
        self.log.push(EvolutionEvent::AttributeAdded {
            relation: relation.to_string(),
            attribute,
            from,
            to,
        });
        Ok(())
    }

    /// Drops an attribute as of `at`: its lifespan is clipped so the
    /// attribute is undefined from `at` on. Pre-drop history remains — that
    /// is the whole point of attribute lifespans (paper §2).
    pub fn drop_attribute(
        &mut self,
        relation: &str,
        attribute: &Attribute,
        at: Chronon,
    ) -> Result<()> {
        self.edit_als(relation, attribute, |als| match at.pred() {
            Some(end) => {
                // lint: no-panic-ok(Interval::new only errs when lo > hi, impossible with lo = Chronon::MIN)
                als.clamp(hrdm_time::Interval::new(Chronon::MIN, end).expect("MIN <= end"))
            }
            None => Lifespan::empty(),
        })?;
        self.log.push(EvolutionEvent::AttributeDropped {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            at,
        });
        Ok(())
    }

    /// Re-adds a (typically dropped) attribute over `[from, to]`: the new
    /// period is unioned into the existing lifespan — Fig. 6's re-expansion.
    pub fn re_add_attribute(
        &mut self,
        relation: &str,
        attribute: &Attribute,
        from: Chronon,
        to: Chronon,
    ) -> Result<()> {
        let span = Lifespan::try_interval(from, to).ok_or(HrdmError::EmptyScheme)?;
        self.edit_als(relation, attribute, |als| als.union(&span))?;
        self.log.push(EvolutionEvent::AttributeReAdded {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            from,
            to,
        });
        Ok(())
    }

    fn edit_als<F>(&mut self, relation: &str, attribute: &Attribute, f: F) -> Result<()>
    where
        F: FnOnce(&Lifespan) -> Lifespan,
    {
        let scheme = self
            .schemes
            .get(relation)
            .ok_or_else(|| HrdmError::UnknownRelation(relation.to_string()))?;
        let def = scheme
            .attr(attribute)
            .ok_or_else(|| HrdmError::UnknownAttribute(attribute.clone()))?;
        let new_als = f(def.lifespan());
        let attrs = scheme
            .attrs()
            .iter()
            .map(|d| {
                if d.name() == attribute {
                    AttributeDef::new(d.name().clone(), *d.domain(), new_als.clone())
                } else {
                    d.clone()
                }
            })
            .collect();
        let new = Scheme::new(attrs, scheme.key().to_vec())?;
        self.schemes.insert(relation.to_string(), new);
        Ok(())
    }

    /// Serializes the catalog (schemes only; the log is derivable metadata
    /// and persisted too for auditability).
    pub fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.schemes.len() as u64);
        for (name, scheme) in &self.schemes {
            e.put_str(name);
            e.put_scheme(scheme);
        }
        e.put_u64(self.log.len() as u64);
        for ev in &self.log {
            match ev {
                EvolutionEvent::Created { relation } => {
                    e.put_u8(0);
                    e.put_str(relation);
                }
                EvolutionEvent::AttributeAdded {
                    relation,
                    attribute,
                    from,
                    to,
                } => {
                    e.put_u8(1);
                    e.put_str(relation);
                    e.put_str(attribute.name());
                    e.put_chronon(*from);
                    e.put_chronon(*to);
                }
                EvolutionEvent::AttributeDropped {
                    relation,
                    attribute,
                    at,
                } => {
                    e.put_u8(2);
                    e.put_str(relation);
                    e.put_str(attribute.name());
                    e.put_chronon(*at);
                }
                EvolutionEvent::AttributeReAdded {
                    relation,
                    attribute,
                    from,
                    to,
                } => {
                    e.put_u8(3);
                    e.put_str(relation);
                    e.put_str(attribute.name());
                    e.put_chronon(*from);
                    e.put_chronon(*to);
                }
            }
        }
    }

    /// Deserializes a catalog.
    pub fn decode(d: &mut Decoder<'_>) -> std::result::Result<Catalog, CodecError> {
        let n = d.get_u64()? as usize;
        let mut schemes = BTreeMap::new();
        for _ in 0..n {
            let name = d.get_str()?.to_string();
            let scheme = d.get_scheme()?;
            schemes.insert(name, scheme);
        }
        let m = d.get_u64()? as usize;
        let mut log = Vec::with_capacity(m.min(4096));
        for _ in 0..m {
            let ev = match d.get_u8()? {
                0 => EvolutionEvent::Created {
                    relation: d.get_str()?.to_string(),
                },
                1 => EvolutionEvent::AttributeAdded {
                    relation: d.get_str()?.to_string(),
                    attribute: Attribute::new(d.get_str()?),
                    from: d.get_chronon()?,
                    to: d.get_chronon()?,
                },
                2 => EvolutionEvent::AttributeDropped {
                    relation: d.get_str()?.to_string(),
                    attribute: Attribute::new(d.get_str()?),
                    at: d.get_chronon()?,
                },
                3 => EvolutionEvent::AttributeReAdded {
                    relation: d.get_str()?.to_string(),
                    attribute: Attribute::new(d.get_str()?),
                    from: d.get_chronon()?,
                    to: d.get_chronon()?,
                },
                tag => return Err(CodecError::BadTag("EvolutionEvent", tag)),
            };
            log.push(ev);
        }
        Ok(Catalog { schemes, log })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::ValueKind;

    fn stock_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("TICKER", ValueKind::Str, Lifespan::interval(0, 1000))
            .attr(
                "PRICE",
                HistoricalDomain::float(),
                Lifespan::interval(0, 1000),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn figure_6_evolution_story() {
        // The paper's Fig. 6: DAILY-TRADING-VOLUME recorded over [t1,t2] =
        // [0,199], dropped at 200, re-added at [500, 1000] (through "NOW").
        let mut cat = Catalog::new();
        cat.create_relation("stocks", stock_scheme()).unwrap();
        let vol = Attribute::new("DAILY_TRADING_VOLUME");
        cat.add_attribute(
            "stocks",
            vol.clone(),
            HistoricalDomain::int(),
            Chronon::new(0),
            Chronon::new(1000),
        )
        .unwrap();
        cat.drop_attribute("stocks", &vol, Chronon::new(200))
            .unwrap();
        cat.re_add_attribute("stocks", &vol, Chronon::new(500), Chronon::new(1000))
            .unwrap();

        let als = cat.scheme("stocks").unwrap().als(&vol).unwrap().clone();
        assert_eq!(als, Lifespan::of(&[(0, 199), (500, 1000)]));
        assert_eq!(cat.log().len(), 4);
        // The attribute has a gap — exactly the Fig. 6 picture.
        assert!(!als.contains(Chronon::new(300)));
        assert!(als.contains(Chronon::new(100)));
        assert!(als.contains(Chronon::new(750)));
    }

    #[test]
    fn duplicate_relation_and_attribute_rejected() {
        let mut cat = Catalog::new();
        cat.create_relation("stocks", stock_scheme()).unwrap();
        assert!(cat.create_relation("stocks", stock_scheme()).is_err());
        assert!(cat
            .add_attribute(
                "stocks",
                Attribute::new("PRICE"),
                HistoricalDomain::float(),
                Chronon::new(0),
                Chronon::new(10),
            )
            .is_err());
        assert!(cat
            .drop_attribute("nope", &Attribute::new("PRICE"), Chronon::new(0))
            .is_err());
    }

    #[test]
    fn catalog_codec_round_trip() {
        let mut cat = Catalog::new();
        cat.create_relation("stocks", stock_scheme()).unwrap();
        let vol = Attribute::new("VOL");
        cat.add_attribute(
            "stocks",
            vol.clone(),
            HistoricalDomain::int(),
            Chronon::new(0),
            Chronon::new(100),
        )
        .unwrap();
        cat.drop_attribute("stocks", &vol, Chronon::new(50))
            .unwrap();

        let mut e = Encoder::new();
        cat.encode(&mut e);
        let bytes = e.finish();
        let back = Catalog::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.scheme("stocks"), cat.scheme("stocks"));
        assert_eq!(back.log(), cat.log());
    }

    #[test]
    fn drop_keeps_history_before_the_drop() {
        let mut cat = Catalog::new();
        cat.create_relation("stocks", stock_scheme()).unwrap();
        cat.drop_attribute("stocks", &Attribute::new("PRICE"), Chronon::new(500))
            .unwrap();
        let als = cat
            .scheme("stocks")
            .unwrap()
            .als(&Attribute::new("PRICE"))
            .unwrap()
            .clone();
        assert_eq!(als, Lifespan::interval(0, 499));
    }
}
