//! Heap files: an unordered collection of encoded records over slotted
//! pages, persisted to a single file.

use crate::page::{Page, SlotId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A record's address: page number + slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RecordId {
    /// Page index within the file.
    pub page: u32,
    /// Slot within the page.
    pub slot: SlotId,
}

/// A heap file of variable-length records.
///
/// Pages are cached in memory and flushed (sealed with checksums) on
/// [`HeapFile::sync`]. Inserts go to the last page with room, else a new
/// page — the usual append-mostly heap.
pub struct HeapFile {
    file: File,
    pages: Vec<Page>,
}

impl HeapFile {
    /// Creates (truncating) a heap file at `path`.
    pub fn create(path: &Path) -> io::Result<HeapFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(HeapFile {
            file,
            pages: Vec::new(),
        })
    }

    /// Opens an existing heap file, verifying page checksums.
    pub fn open(path: &Path) -> io::Result<HeapFile> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "heap file length is not a multiple of the page size",
            ));
        }
        let mut pages = Vec::with_capacity((len / PAGE_SIZE).min(4096));
        let mut buf = [0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        for i in 0..len / PAGE_SIZE {
            file.read_exact(&mut buf)?;
            let page = Page::from_bytes(buf);
            if !page.verify() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checksum mismatch on page {i}"),
                ));
            }
            pages.push(page);
        }
        Ok(HeapFile { file, pages })
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Inserts a record, returning its id.
    pub fn insert(&mut self, record: &[u8]) -> io::Result<RecordId> {
        if record.len() > PAGE_SIZE - 16 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record larger than a page",
            ));
        }
        if let Some(last) = self.pages.last_mut() {
            if let Some(slot) = last.insert(record) {
                return Ok(RecordId {
                    page: (self.pages.len() - 1) as u32,
                    slot,
                });
            }
        }
        let mut page = Page::new();
        let Some(slot) = page.insert(record) else {
            // Unreachable past the size guard above, but refusing is
            // strictly better than unwinding mid-append.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record does not fit an empty page",
            ));
        };
        self.pages.push(page);
        Ok(RecordId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    /// Reads the record at `id`.
    pub fn get(&self, id: RecordId) -> Option<&[u8]> {
        self.pages.get(id.page as usize)?.get(id.slot)
    }

    /// Tombstones the record at `id`.
    pub fn delete(&mut self, id: RecordId) -> bool {
        match self.pages.get_mut(id.page as usize) {
            Some(p) => p.delete(id.slot),
            None => false,
        }
    }

    /// Iterates all live records.
    pub fn scan(&self) -> impl Iterator<Item = (RecordId, &[u8])> + '_ {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter().map(move |(slot, rec)| {
                (
                    RecordId {
                        page: pno as u32,
                        slot,
                    },
                    rec,
                )
            })
        })
    }

    /// Seals every page and writes the file out.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        for page in &mut self.pages {
            page.seal();
            self.file.write_all(&page.bytes()[..])?;
        }
        self.file.set_len((self.pages.len() * PAGE_SIZE) as u64)?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-heap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn insert_scan_round_trip() {
        let path = tmp("basic");
        let mut h = HeapFile::create(&path).unwrap();
        let ids: Vec<RecordId> = (0..100)
            .map(|i| h.insert(format!("record-{i}").as_bytes()).unwrap())
            .collect();
        assert_eq!(h.get(ids[42]), Some(&b"record-42"[..]));
        assert_eq!(h.scan().count(), 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("reopen");
        {
            let mut h = HeapFile::create(&path).unwrap();
            for i in 0..2000 {
                h.insert(format!("row {i} with some padding").as_bytes())
                    .unwrap();
            }
            h.sync().unwrap();
            assert!(h.page_count() > 1);
        }
        let h = HeapFile::open(&path).unwrap();
        assert_eq!(h.scan().count(), 2000);
        let first = h.scan().next().unwrap().1;
        assert_eq!(first, b"row 0 with some padding");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn detects_corruption() {
        let path = tmp("corrupt");
        {
            let mut h = HeapFile::create(&path).unwrap();
            h.insert(b"precious").unwrap();
            h.sync().unwrap();
        }
        // Flip a byte in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(HeapFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delete_skips_in_scan() {
        let path = tmp("delete");
        let mut h = HeapFile::create(&path).unwrap();
        let a = h.insert(b"a").unwrap();
        let _b = h.insert(b"b").unwrap();
        assert!(h.delete(a));
        assert_eq!(h.scan().count(), 1);
        assert_eq!(h.get(a), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_record_rejected() {
        let path = tmp("big");
        let mut h = HeapFile::create(&path).unwrap();
        let big = vec![0u8; PAGE_SIZE];
        assert!(h.insert(&big).is_err());
        std::fs::remove_file(path).ok();
    }
}
