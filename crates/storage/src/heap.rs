//! Heap files: an unordered collection of encoded records over slotted
//! pages, read and written through the buffer pool.

use crate::page::{SlotId, MAX_RECORD};
use crate::pool::{BufferPool, PoolFileId};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A record's address: page number + slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RecordId {
    /// Page index within the file.
    pub page: u32,
    /// Slot within the page.
    pub slot: SlotId,
}

/// A heap file of variable-length records.
///
/// Pages live in a [`BufferPool`] and are faulted in on demand —
/// [`HeapFile::open`] reads nothing but the file length, so opening a
/// 10M-tuple heap is O(1). Inserts go to the last page with room, else
/// a new page — the usual append-mostly heap. Only pages dirtied since
/// the last [`HeapFile::sync`] are written back (the pool tracks dirty
/// frames), and page checksums are verified as each page is faulted in
/// rather than eagerly at open.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file: PoolFileId,
    path: PathBuf,
}

impl HeapFile {
    /// Creates (truncating) a heap file at `path` in the global pool.
    pub fn create(path: &Path) -> io::Result<HeapFile> {
        Self::create_in(path, Arc::clone(BufferPool::global()))
    }

    /// Creates (truncating) a heap file at `path` in `pool`, fsyncing
    /// the parent directory so a crash right after a later catalog
    /// commit cannot lose the file's directory entry.
    pub fn create_in(path: &Path, pool: Arc<BufferPool>) -> io::Result<HeapFile> {
        let file = pool.create(path)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::File::open(parent)?.sync_all()?;
            }
        }
        Ok(HeapFile {
            pool,
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens an existing heap file in the global pool.
    pub fn open(path: &Path) -> io::Result<HeapFile> {
        Self::open_in(path, Arc::clone(BufferPool::global()))
    }

    /// Opens an existing heap file in `pool`. Checksums are verified
    /// lazily, when each page is first faulted in.
    pub fn open_in(path: &Path, pool: Arc<BufferPool>) -> io::Result<HeapFile> {
        let file = pool.open(path)?;
        Ok(HeapFile {
            pool,
            file,
            path: path.to_path_buf(),
        })
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        // A failure here means the handle was closed under us, which the
        // single-owner API makes impossible; report the file as empty
        // rather than panicking.
        self.pool.page_count(self.file).unwrap_or(0) as usize
    }

    /// The pool this heap reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The pool handle, for per-file fault accounting.
    pub fn pool_file(&self) -> PoolFileId {
        self.file
    }

    /// Inserts a record, returning its id.
    ///
    /// Records must be non-empty and at most [`MAX_RECORD`]
    /// (`PAGE_SIZE - PAGE_HEADER - PAGE_SLOT`) bytes — the exact
    /// capacity of an empty page, not an approximation of it.
    pub fn insert(&mut self, record: &[u8]) -> io::Result<RecordId> {
        if record.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty records are not representable (zero slot length marks a tombstone)",
            ));
        }
        if record.len() > MAX_RECORD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record of {} bytes exceeds page capacity ({MAX_RECORD})",
                    record.len()
                ),
            ));
        }
        let pages = self.pool.page_count(self.file)?;
        if pages > 0 {
            let last = pages - 1;
            let guard = self.pool.get(self.file, last)?;
            // Probe with a read guard first: taking the write guard
            // marks the frame dirty, which would force a write-back of
            // an untouched full page on the next sync.
            // lint: lock-order-ok(the read guard is a temporary dropped at this statement's semicolon, before the write acquisition below)
            let fits = guard.read().free_space() >= record.len();
            if fits {
                if let Some(slot) = guard.write().insert(record) {
                    return Ok(RecordId { page: last, slot });
                }
            }
        }
        // Last page full (or no pages): append one. `alloc` reports
        // "heap file full" instead of letting the u32 page index wrap.
        let (page_no, guard) = self.pool.alloc(self.file)?;
        let mut page = guard.write();
        let Some(slot) = page.insert(record) else {
            // Unreachable past the MAX_RECORD guard above, but refusing
            // is strictly better than unwinding mid-append.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record does not fit an empty page",
            ));
        };
        Ok(RecordId {
            page: page_no,
            slot,
        })
    }

    /// Reads the record at `id`. `Ok(None)` for tombstoned slots and
    /// for out-of-range pages or slots (a `RecordId` from another file
    /// is a lookup miss, not a fault).
    pub fn get(&self, id: RecordId) -> io::Result<Option<Vec<u8>>> {
        if u64::from(id.page) >= self.pool.page_count(self.file)? as u64 {
            return Ok(None);
        }
        let guard = self.pool.get(self.file, id.page)?;
        let page = guard.read();
        let record = page.get(id.slot).map(<[u8]>::to_vec);
        drop(page);
        Ok(record)
    }

    /// Tombstones the record at `id`; `Ok(true)` if it was live.
    pub fn delete(&mut self, id: RecordId) -> io::Result<bool> {
        if u64::from(id.page) >= self.pool.page_count(self.file)? as u64 {
            return Ok(false);
        }
        let guard = self.pool.get(self.file, id.page)?;
        // Only mark dirty if the slot was actually live.
        // lint: lock-order-ok(the read guard is a temporary dropped at this statement's semicolon, before the write acquisition below)
        let was_live = guard.read().get(id.slot).is_some();
        if !was_live {
            return Ok(false);
        }
        let mut page = guard.write();
        let deleted = page.delete(id.slot);
        drop(page);
        Ok(deleted)
    }

    /// Iterates all live records in (page, slot) order, faulting pages
    /// through the pool one at a time. Items are `Err` when a page
    /// fails its checksum at fault time (lazy open defers corruption
    /// detection to first touch).
    pub fn scan(&self) -> Scan<'_> {
        Scan {
            heap: self,
            next_page: 0,
            buffered: Vec::new(),
            failed: false,
        }
    }

    /// Writes dirty pages back (sealed), trims, and fsyncs the file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.pool.flush(self.file)
    }

    /// The heap's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for HeapFile {
    fn drop(&mut self) {
        // Release the pool's frames and file handle. Unsynced dirty
        // pages are discarded, matching the old in-memory semantics.
        self.pool.close(self.file);
    }
}

/// Iterator over a heap file's live records; see [`HeapFile::scan`].
pub struct Scan<'a> {
    heap: &'a HeapFile,
    next_page: u32,
    buffered: Vec<(RecordId, Vec<u8>)>,
    failed: bool,
}

impl Iterator for Scan<'_> {
    type Item = io::Result<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buffered.pop() {
                return Some(Ok(item));
            }
            if self.failed || u64::from(self.next_page) >= self.heap.page_count() as u64 {
                return None;
            }
            let pno = self.next_page;
            self.next_page += 1;
            let guard = match self.heap.pool.get(self.heap.file, pno) {
                Ok(g) => g,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let page = guard.read();
            // Copy the page's live records out (bounded by one page),
            // reversed so `pop` yields slot order.
            self.buffered.extend(
                page.iter()
                    .map(|(slot, rec)| (RecordId { page: pno, slot }, rec.to_vec())),
            );
            self.buffered.reverse();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE as PS;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-heap-{}-{name}", std::process::id()));
        p
    }

    fn pool(pages: usize) -> Arc<BufferPool> {
        BufferPool::new(pages)
    }

    fn collect(h: &HeapFile) -> Vec<(RecordId, Vec<u8>)> {
        h.scan().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn insert_scan_round_trip() {
        let path = tmp("basic");
        let mut h = HeapFile::create_in(&path, pool(8)).unwrap();
        let ids: Vec<RecordId> = (0..100)
            .map(|i| h.insert(format!("record-{i}").as_bytes()).unwrap())
            .collect();
        assert_eq!(h.get(ids[42]).unwrap().as_deref(), Some(&b"record-42"[..]));
        assert_eq!(collect(&h).len(), 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmp("reopen");
        let p = pool(4); // smaller than the file: eviction on the way in
        {
            let mut h = HeapFile::create_in(&path, Arc::clone(&p)).unwrap();
            for i in 0..2000 {
                h.insert(format!("row {i} with some padding").as_bytes())
                    .unwrap();
            }
            h.sync().unwrap();
            assert!(h.page_count() > 1);
        }
        let h = HeapFile::open_in(&path, p).unwrap();
        let rows = collect(&h);
        assert_eq!(rows.len(), 2000);
        assert_eq!(rows[0].1, b"row 0 with some padding");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn detects_corruption_at_fault_time() {
        let path = tmp("corrupt");
        let p = pool(8);
        {
            let mut h = HeapFile::create_in(&path, Arc::clone(&p)).unwrap();
            h.insert(b"precious").unwrap();
            h.sync().unwrap();
        }
        // Flip a byte in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let middle = bytes.len() / 2;
        bytes[middle] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // Lazy open succeeds; the first fault of the bad page errors.
        let h = HeapFile::open_in(&path, p).unwrap();
        let err = h.scan().find_map(Result::err).expect("corruption surfaces");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delete_skips_in_scan() {
        let path = tmp("delete");
        let mut h = HeapFile::create_in(&path, pool(8)).unwrap();
        let a = h.insert(b"a").unwrap();
        let _b = h.insert(b"b").unwrap();
        assert!(h.delete(a).unwrap());
        assert!(!h.delete(a).unwrap()); // already dead
        assert_eq!(collect(&h).len(), 1);
        assert_eq!(h.get(a).unwrap(), None);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn capacity_guard_matches_page_exactly() {
        let path = tmp("cap");
        let mut h = HeapFile::create_in(&path, pool(4)).unwrap();
        // Exactly MAX_RECORD bytes fits (the old `PAGE_SIZE - 16` guard
        // wrongly rejected 8177..=8180).
        let exact = vec![0x5au8; MAX_RECORD];
        let id = h.insert(&exact).unwrap();
        assert_eq!(h.get(id).unwrap().as_deref(), Some(&exact[..]));
        // One past capacity is refused with InvalidInput...
        let err = h.insert(&vec![0u8; MAX_RECORD + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = h.insert(&vec![0u8; PS]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // ...and so is the empty record, explicitly.
        let err = h.insert(b"").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("empty"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_record_ids_miss_not_fault() {
        let path = tmp("bounds");
        let mut h = HeapFile::create_in(&path, pool(4)).unwrap();
        h.insert(b"only").unwrap();
        let beyond = RecordId {
            page: 7_000_000,
            slot: 0,
        };
        assert_eq!(h.get(beyond).unwrap(), None);
        assert!(!h.delete(beyond).unwrap());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sync_only_writes_dirty_pages() {
        let path = tmp("dirty-only");
        let p = pool(64);
        let mut h = HeapFile::create_in(&path, Arc::clone(&p)).unwrap();
        for i in 0..2000u32 {
            h.insert(format!("row {i} with some padding").as_bytes())
                .unwrap();
        }
        h.sync().unwrap();
        let after_first = p.stats().writebacks;
        assert!(after_first as usize >= h.page_count());
        // Touch one record on one page; the next sync writes ~1 page,
        // not the whole file (the old sync rewrote everything).
        let id = h.insert(b"one more").unwrap();
        assert!(h.get(id).unwrap().is_some());
        h.sync().unwrap();
        let delta = p.stats().writebacks - after_first;
        assert_eq!(delta, 1, "dirty-only sync must write exactly 1 page");
        // A no-op sync writes nothing.
        h.sync().unwrap();
        assert_eq!(p.stats().writebacks, after_first + delta);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tombstones_survive_sync_and_reopen() {
        let path = tmp("tombstone-reopen");
        let p = pool(8);
        let (a, b, c);
        {
            let mut h = HeapFile::create_in(&path, Arc::clone(&p)).unwrap();
            a = h.insert(b"alpha").unwrap();
            b = h.insert(b"beta").unwrap();
            c = h.insert(b"gamma").unwrap();
            assert!(h.delete(b).unwrap());
            h.sync().unwrap();
        }
        let h = HeapFile::open_in(&path, p).unwrap();
        assert_eq!(h.get(a).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(h.get(b).unwrap(), None);
        assert_eq!(h.get(c).unwrap().as_deref(), Some(&b"gamma"[..]));
        assert_eq!(collect(&h).len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_correct_under_tiny_pool() {
        let path = tmp("tiny-pool");
        let p = pool(1); // forced eviction during both write and scan
        let mut h = HeapFile::create_in(&path, Arc::clone(&p)).unwrap();
        for i in 0..500u32 {
            h.insert(format!("padded row number {i:08}").as_bytes())
                .unwrap();
        }
        let rows = collect(&h);
        assert_eq!(rows.len(), 500);
        for (i, (_, rec)) in rows.iter().enumerate() {
            assert_eq!(rec, format!("padded row number {i:08}").as_bytes());
        }
        assert!(p.stats().evictions > 0);
        std::fs::remove_file(path).ok();
    }
}
