//! Immutable snapshots of a database's committed state.
//!
//! A [`DbSnapshot`] is the reader half of the concurrency model: taking one
//! costs O(relations) (relations are copy-on-write, indexes `Arc`-shared —
//! no tuple is ever copied), and once taken it is completely decoupled from
//! the live database. Writers committing new batches, `checkpoint()`
//! rotating epochs, even the old WAL file being deleted — none of it
//! changes what the snapshot's holder sees. Whole query pipelines
//! (optimizer → access-path planner → evaluator) run against a snapshot
//! with zero locks.

use crate::catalog::Catalog;
use crate::partition::PartitionMap;
use hrdm_core::Relation;
use hrdm_index::RelationIndexes;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable view of a database's committed state at one commit point.
///
/// `hrdm-query` implements its `RelationSource` / `IndexSource` traits for
/// this type, so a snapshot drops into every query entry point that accepts
/// a `Database`. Snapshots are [`Clone`] (O(relations)) and `Send + Sync`:
/// hand them to as many reader threads as you like.
#[derive(Clone, Debug)]
pub struct DbSnapshot {
    catalog: Arc<Catalog>,
    relations: BTreeMap<String, Relation>,
    indexes: BTreeMap<String, Arc<RelationIndexes>>,
    partitions: BTreeMap<String, Arc<PartitionMap>>,
    epoch: Option<u64>,
    version: u64,
}

impl DbSnapshot {
    pub(crate) fn new(
        catalog: Arc<Catalog>,
        relations: BTreeMap<String, Relation>,
        indexes: BTreeMap<String, Arc<RelationIndexes>>,
        partitions: BTreeMap<String, Arc<PartitionMap>>,
        epoch: Option<u64>,
        version: u64,
    ) -> DbSnapshot {
        DbSnapshot {
            catalog,
            relations,
            indexes,
            partitions,
            epoch,
            version,
        }
    }

    /// The relation named `name`, as of the snapshot's commit point.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// The access methods of `name`, frozen with the snapshot. Positions
    /// they return are valid against [`DbSnapshot::relation`] of the same
    /// snapshot by construction — the index and the tuple vector were
    /// published together.
    pub fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        self.indexes.get(name).map(Arc::as_ref)
    }

    /// The chronon-range partition map of `name`, frozen with the
    /// snapshot — a later repartition of the live database builds new
    /// maps and leaves this one untouched, so positions it yields stay
    /// valid against [`DbSnapshot::relation`] of the same snapshot.
    pub fn partitions(&self, name: &str) -> Option<&PartitionMap> {
        self.partitions.get(name).map(Arc::as_ref)
    }

    /// The catalog (schemes + evolution log) as of the snapshot.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The registered relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.relations.keys().map(String::as_str)
    }

    /// The checkpoint epoch the database was on when the snapshot was
    /// taken (`None` for a detached database).
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// The snapshot's version: the count of mutations applied before it
    /// was taken. Versions order snapshots — a reader seeing version `v`
    /// observes exactly the first `v` mutations, never a subset of them
    /// (prefix consistency).
    pub fn version(&self) -> u64 {
        self.version
    }
}
