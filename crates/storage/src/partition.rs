//! Lifespan-based horizontal partitioning of a relation's tuple store.
//!
//! HRDM's defining idea is that every tuple carries a lifespan, so the
//! physical layout can exploit time: the chronon axis is cut into
//! fixed-width ranges (the [`PartitionPolicy`]), every tuple is assigned to
//! the partition holding its **birth chronon** (the first chronon of its
//! lifespan), and each partition keeps
//!
//! * the member tuples' **positions** into the relation's flat tuple
//!   vector (the in-memory layout is untouched — partitioning is pure
//!   physical metadata, so every existing operator and index keeps
//!   working),
//! * a **min/max lifespan summary** covering every member tuple's
//!   lifespan whole (persisted in the catalog, header v3), and
//! * its own [`RelationIndexes`] over the member tuples, so a pruned
//!   query probes a handful of small indexes instead of one big one.
//!
//! ## Pruning
//!
//! For a query window `W` (a TIME-SLICE lifespan, or a TIME-JOIN probe
//! span), a partition can be skipped whenever its summary `[min_lo,
//! max_hi]` is disjoint from `W`: every member tuple's lifespan is a
//! subset of the summary interval, so a member overlapping `W` would make
//! the summary overlap `W` too. Conversely, when `W` *contains* the whole
//! summary interval, every member overlaps `W` (each member has at least
//! one chronon, and all its chronons are inside `W`), so the partition's
//! position list is taken wholesale without probing — the archival/current
//! split that makes wide historical slices cheap.
//!
//! Like every access method in this workspace, pruning only ever produces
//! *candidate positions*: operators re-apply their exact semantics on the
//! candidates, so a partitioned relation is observationally identical to
//! an unpartitioned one (the workspace `differential` suite drives random
//! workloads against both and asserts byte-equal results).
//!
//! ## Durability
//!
//! Partitioning is a **physical property**: the WAL format does not know
//! about it, and replaying a log re-derives the same partition map from
//! the tuples and the (catalog-persisted) policy. Checkpoints write one
//! heap file per partition (`<rel>.<epoch>.p<id>.heap`) and only rewrite
//! partitions whose membership changed since the last checkpoint
//! ([`Partition::is_dirty`]); clean partitions are carried into the new
//! epoch by hard link.

use crate::btree::LifespanBTree;
use hrdm_core::{Relation, Scheme, Tuple};
use hrdm_index::RelationIndexes;
use hrdm_time::{Chronon, Interval, Lifespan};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

/// Default span exponent: partitions of `2^10 = 1024` chronons.
pub const DEFAULT_SPAN_LOG2: u32 = 10;

/// How a relation's chronon axis is cut into partitions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionPolicy {
    /// Fixed power-of-two chronon spans: partition `k` nominally covers
    /// `[k·2^s, (k+1)·2^s)`. The exponent is clamped to `[0, 62]`.
    ///
    /// Power-of-two boundaries make the tuple → partition mapping one
    /// arithmetic shift (exact for negative chronons too), and make
    /// *splitting* a hot partition a local operation: halving the span
    /// splits every partition exactly in two.
    SpanLog2(u32),
    /// A single partition covering all of `T` (span = ∞) — the
    /// unpartitioned reference engine the differential oracle compares
    /// against.
    Unpartitioned,
}

impl Default for PartitionPolicy {
    fn default() -> PartitionPolicy {
        PartitionPolicy::SpanLog2(DEFAULT_SPAN_LOG2)
    }
}

impl std::fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionPolicy::SpanLog2(s) => write!(f, "span=2^{s}"),
            PartitionPolicy::Unpartitioned => f.write_str("span=∞"),
        }
    }
}

impl PartitionPolicy {
    /// The partition id of a tuple born at `birth`.
    ///
    /// Arithmetic right shift floors toward −∞, so negative chronons get
    /// their own partitions instead of aliasing onto partition 0.
    pub fn partition_id(&self, birth: Chronon) -> i64 {
        match self {
            PartitionPolicy::SpanLog2(s) => birth.tick() >> (*s).min(62),
            PartitionPolicy::Unpartitioned => 0,
        }
    }

    /// The inclusive birth-chronon range `[lo, hi]` that partition `id`
    /// nominally covers — the inverse of [`PartitionPolicy::partition_id`].
    /// Saturates at the `i64` extremes for implausible manifest ids.
    pub fn birth_range(&self, id: i64) -> (i64, i64) {
        match self {
            PartitionPolicy::SpanLog2(s) => {
                let s = (*s).min(62);
                let span = 1i128 << s;
                let lo = (i128::from(id) * span).clamp(i128::from(i64::MIN), i128::from(i64::MAX));
                let hi = (lo + span - 1).clamp(i128::from(i64::MIN), i128::from(i64::MAX));
                (lo as i64, hi as i64)
            }
            PartitionPolicy::Unpartitioned => (i64::MIN, i64::MAX),
        }
    }

    /// Serializes the policy (one byte tag + exponent).
    pub(crate) fn encode(&self, e: &mut crate::codec::Encoder) {
        match self {
            PartitionPolicy::SpanLog2(s) => {
                e.put_u8(0);
                e.put_u64(u64::from(*s));
            }
            PartitionPolicy::Unpartitioned => e.put_u8(1),
        }
    }

    /// Deserializes a policy.
    pub(crate) fn decode(
        d: &mut crate::codec::Decoder<'_>,
    ) -> Result<PartitionPolicy, crate::codec::CodecError> {
        match d.get_u8()? {
            0 => Ok(PartitionPolicy::SpanLog2((d.get_u64()? as u32).min(62))),
            1 => Ok(PartitionPolicy::Unpartitioned),
            tag => Err(crate::codec::CodecError::BadTag("PartitionPolicy", tag)),
        }
    }
}

/// Where a partition's members live.
#[derive(Clone, Debug)]
enum Members {
    /// In-memory members: positions plus per-partition access methods —
    /// what [`PartitionMap::build`] / [`PartitionMap::insert`] produce.
    Resident {
        /// Member positions into the relation's tuple vector, in
        /// insertion order (ascending — positions are append-only).
        positions: Vec<u32>,
        /// Access methods over the member tuples; positions returned by
        /// these indexes are **local** (indices into `positions`).
        indexes: Arc<RelationIndexes>,
    },
    /// Disk-resident members, served on demand from the relation's
    /// on-disk B+tree: the members are exactly the entries whose birth
    /// chronon falls in `[birth_lo, birth_hi]` — what
    /// [`PartitionMap::from_manifest`] produces for cold partitions.
    Cold {
        btree: Arc<LifespanBTree>,
        birth_lo: i64,
        birth_hi: i64,
    },
}

/// One chronon-range partition: member positions, lifespan summary, its own
/// access methods, and the dirty flag the incremental checkpoint reads.
#[derive(Clone, Debug)]
pub struct Partition {
    members: Members,
    /// Member count (known without touching disk even for cold members).
    count: usize,
    /// Smallest first-chronon over member lifespans (`i64::MAX` when no
    /// member has a non-empty lifespan).
    min_lo: i64,
    /// Largest last-chronon over member lifespans (`i64::MIN` likewise).
    max_hi: i64,
    /// Has membership changed since the last checkpoint wrote (or linked)
    /// this partition's heap file?
    dirty: bool,
}

impl Partition {
    fn new(scheme: &Scheme) -> Partition {
        Partition {
            members: Members::Resident {
                positions: Vec::new(),
                indexes: Arc::new(RelationIndexes::build(&Relation::new(scheme.clone()))),
            },
            count: 0,
            min_lo: i64::MAX,
            max_hi: i64::MIN,
            dirty: true,
        }
    }

    fn add(&mut self, pos: usize, tuple: &Tuple) {
        let Members::Resident { positions, indexes } = &mut self.members else {
            // Cold partitions are read-only checkpoint views; the paged
            // read path never routes inserts here.
            debug_assert!(false, "insert into a cold partition");
            return;
        };
        let local = positions.len();
        positions
            // lint: no-panic-ok(record ids are u32 on disk, so an in-memory relation can never reach u32::MAX rows)
            .push(u32::try_from(pos).expect("relation fits in u32 positions"));
        if let (Some(first), Some(last)) = (tuple.lifespan().first(), tuple.lifespan().last()) {
            self.min_lo = self.min_lo.min(first.tick());
            self.max_hi = self.max_hi.max(last.tick());
        }
        Arc::make_mut(indexes).insert(local, tuple);
        self.count += 1;
        self.dirty = true;
    }

    /// Resident member positions, ascending (empty slice when cold).
    fn resident_positions(&self) -> &[u32] {
        match &self.members {
            Members::Resident { positions, .. } => positions,
            Members::Cold { .. } => &[],
        }
    }

    /// Member positions into the relation's tuple vector, ascending.
    ///
    /// Cold partitions yield nothing here — their members live on disk;
    /// use [`Partition::try_positions`], which can fault.
    pub fn positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.resident_positions().iter().map(|&p| p as usize)
    }

    /// Member positions, ascending, faulting the on-disk B+tree in for
    /// cold partitions.
    pub fn try_positions(&self) -> io::Result<Vec<usize>> {
        match &self.members {
            Members::Resident { positions, .. } => {
                Ok(positions.iter().map(|&p| p as usize).collect())
            }
            Members::Cold {
                btree,
                birth_lo,
                birth_hi,
            } => {
                // The tree yields (birth, position) order; members are a
                // position *set*, so re-sort ascending by position.
                let mut v: Vec<usize> = btree
                    .range_positions(*birth_lo, *birth_hi)?
                    .into_iter()
                    .map(|p| p as usize)
                    .collect();
                v.sort_unstable();
                Ok(v)
            }
        }
    }

    /// Are the members disk-resident (checkpoint manifest + B+tree)?
    pub fn is_cold(&self) -> bool {
        matches!(self.members, Members::Cold { .. })
    }

    /// Number of member tuples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Is the partition empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The min/max lifespan summary interval, `None` when no member has a
    /// non-empty lifespan.
    pub fn summary(&self) -> Option<Interval> {
        if self.min_lo <= self.max_hi {
            Interval::new(Chronon::new(self.min_lo), Chronon::new(self.max_hi))
        } else {
            None
        }
    }

    /// Raw summary bounds `(min_lo, max_hi)` as persisted in the catalog
    /// manifest (`(i64::MAX, i64::MIN)` is the empty sentinel).
    pub fn summary_bounds(&self) -> (i64, i64) {
        (self.min_lo, self.max_hi)
    }

    /// The partition's own access methods (positions are local — map them
    /// through [`Partition::positions`]). `None` for cold partitions,
    /// whose only access method is the on-disk B+tree.
    pub fn indexes(&self) -> Option<&RelationIndexes> {
        match &self.members {
            Members::Resident { indexes, .. } => Some(indexes),
            Members::Cold { .. } => None,
        }
    }

    /// Has membership changed since the last checkpoint?
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

/// The partition map of one relation: partition id → [`Partition`],
/// derived metadata over the relation's flat tuple vector.
///
/// `Database` holds one per relation behind an `Arc`, so snapshots share
/// it for free and writers copy-on-write — a reader holding a
/// pre-repartition snapshot keeps planning against its frozen map.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    policy: PartitionPolicy,
    scheme: Scheme,
    parts: BTreeMap<i64, Partition>,
    tuple_count: usize,
}

impl PartitionMap {
    /// Builds the map over `r` under `policy`. Every partition starts
    /// dirty (nothing is known to be on disk).
    pub fn build(r: &Relation, policy: PartitionPolicy) -> PartitionMap {
        let mut map = PartitionMap {
            policy,
            scheme: r.scheme().clone(),
            parts: BTreeMap::new(),
            tuple_count: 0,
        };
        for (pos, t) in r.iter().enumerate() {
            map.insert(pos, t);
        }
        map
    }

    /// Rebuilds a **cold** map from a checkpoint manifest: per-partition
    /// `(id, count, min_lo, max_hi)` rows plus the relation's on-disk
    /// B+tree. No member positions are resident — pruning answers come
    /// from the persisted summaries, and member fetches fault the tree
    /// in through the buffer pool ([`Partition::try_positions`]). All
    /// partitions start clean (they mirror what is on disk).
    pub fn from_manifest(
        policy: PartitionPolicy,
        scheme: Scheme,
        manifest: &[(i64, u64, i64, i64)],
        btree: &Arc<LifespanBTree>,
    ) -> PartitionMap {
        let mut map = PartitionMap {
            policy,
            scheme,
            parts: BTreeMap::new(),
            tuple_count: 0,
        };
        for &(id, count, min_lo, max_hi) in manifest {
            let (birth_lo, birth_hi) = policy.birth_range(id);
            let count = count as usize;
            map.parts.insert(
                id,
                Partition {
                    members: Members::Cold {
                        btree: Arc::clone(btree),
                        birth_lo,
                        birth_hi,
                    },
                    count,
                    min_lo,
                    max_hi,
                    dirty: false,
                },
            );
            map.tuple_count += count;
        }
        map
    }

    /// Registers the tuple just appended to the relation at position `pos`
    /// (which must equal [`PartitionMap::tuple_count`] — append-only, like
    /// the indexes it contains).
    pub fn insert(&mut self, pos: usize, tuple: &Tuple) {
        assert_eq!(
            pos, self.tuple_count,
            "PartitionMap::insert positions are append-only"
        );
        let birth = tuple.lifespan().first().unwrap_or(Chronon::new(0));
        let id = self.policy.partition_id(birth);
        self.parts
            .entry(id)
            .or_insert_with(|| Partition::new(&self.scheme))
            .add(pos, tuple);
        self.tuple_count += 1;
    }

    /// The boundary policy the map was built under.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of member tuples across all partitions.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// The partition with id `id`, if populated.
    pub fn partition(&self, id: i64) -> Option<&Partition> {
        self.parts.get(&id)
    }

    /// Iterates `(id, partition)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &Partition)> + '_ {
        self.parts.iter().map(|(&id, p)| (id, p))
    }

    /// Ids of partitions whose summary overlaps `window` — the partitions
    /// a lifespan-bounded scan must touch.
    pub fn overlapping_ids(&self, window: &Lifespan) -> Vec<i64> {
        let Some(probe) = SummaryProbe::new(window) else {
            return Vec::new();
        };
        self.parts
            .iter()
            .filter(|(_, p)| probe.overlaps(p, window))
            .map(|(&id, _)| id)
            .collect()
    }

    /// `(scanned, total)` partition counts for `window` — what EXPLAIN
    /// renders as `partitions: pruned/total pruned`. Allocation-free:
    /// this runs on every plan of a lifespan-bounded scan.
    pub fn pruning_counts(&self, window: &Lifespan) -> (usize, usize) {
        let Some(probe) = SummaryProbe::new(window) else {
            return (0, self.parts.len());
        };
        let scanned = self
            .parts
            .values()
            .filter(|p| probe.overlaps(p, window))
            .count();
        (scanned, self.parts.len())
    }

    /// Global positions of candidate tuples whose lifespan overlaps
    /// `window`, sorted ascending and deduplicated — the pruning access
    /// path. Infallible variant of
    /// [`PartitionMap::try_prune_positions`] for the resident maps the
    /// in-memory engine builds (a cold partition that fails to fault
    /// degrades to no candidates here — the paged read path uses the
    /// fallible form).
    pub fn prune_positions(&self, window: &Lifespan) -> Vec<usize> {
        self.try_prune_positions(window).unwrap_or_default()
    }

    /// Global positions of candidate tuples whose lifespan overlaps
    /// `window`, sorted ascending and deduplicated.
    ///
    /// Partitions whose summary is disjoint from `window` are skipped
    /// whole — for cold partitions this is the payoff: a non-intersecting
    /// partition is pruned from its catalog summary alone, without
    /// faulting a single page. Resident partitions whose summary is
    /// *contained* in `window` are taken whole without probing; the rest
    /// are served from their own lifespan index. Overlapping *cold*
    /// partitions are taken whole from the on-disk B+tree (a sound
    /// candidate superset: operators re-apply exact semantics).
    pub fn try_prune_positions(&self, window: &Lifespan) -> io::Result<Vec<usize>> {
        let Some(probe) = SummaryProbe::new(window) else {
            return Ok(Vec::new());
        };
        let mut out: Vec<usize> = Vec::new();
        let mut sorted = true;
        for p in self.parts.values() {
            if !probe.hull_overlaps(p) {
                continue;
            }
            let Some(summary) = p.summary() else {
                continue;
            };
            let chunk_start = out.len();
            match &p.members {
                Members::Resident { positions, indexes } => {
                    if window.contains_interval(&summary) {
                        // Every member tuple lives inside the summary, and
                        // the whole summary is inside the window: all
                        // members overlap.
                        out.extend(p.positions());
                    } else if window.intersects_interval(&summary) {
                        out.extend(
                            indexes
                                .lifespan()
                                .overlapping(window)
                                .into_iter()
                                .map(|local| positions[local] as usize),
                        );
                    }
                }
                Members::Cold { .. } => {
                    if window.intersects_interval(&summary) {
                        out.extend(p.try_positions()?);
                    }
                }
            }
            // Positions are ascending within one partition's chunk;
            // across partitions they interleave only when insertions
            // jumped between chronon ranges — detect and sort once.
            if sorted && chunk_start > 0 && out.len() > chunk_start {
                sorted = out[chunk_start] > out[chunk_start - 1];
            }
        }
        if !sorted {
            out.sort_unstable();
            out.dedup();
        }
        Ok(out)
    }

    /// Ids of partitions whose membership changed since the last
    /// checkpoint.
    pub fn dirty_ids(&self) -> Vec<i64> {
        self.parts
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Marks every partition clean — called after a checkpoint has written
    /// (or linked) every partition's heap file under the new epoch.
    pub(crate) fn mark_clean(&mut self) {
        for p in self.parts.values_mut() {
            p.dirty = false;
        }
    }
}

/// The shared summary-overlap predicate of the pruning queries: a
/// raw-bound hull prefilter (two integer compares per partition — the
/// empty-summary sentinel `(MAX, MIN)` fails it too), with the exact
/// run-level test only for fragmented windows, where the hull
/// over-approximates. `None` for the empty window, which overlaps
/// nothing.
struct SummaryProbe {
    hull_lo: i64,
    hull_hi: i64,
    /// Fragmented window: the hull prefilter alone would over-match.
    exact: bool,
}

impl SummaryProbe {
    fn new(window: &Lifespan) -> Option<SummaryProbe> {
        let hull = window.hull()?;
        Some(SummaryProbe {
            hull_lo: hull.lo().tick(),
            hull_hi: hull.hi().tick(),
            exact: !window.is_contiguous(),
        })
    }

    /// Does the window's *hull* overlap the partition summary?
    fn hull_overlaps(&self, p: &Partition) -> bool {
        p.min_lo <= self.hull_hi && p.max_hi >= self.hull_lo
    }

    /// Does the window itself overlap the partition summary?
    fn overlaps(&self, p: &Partition, window: &Lifespan) -> bool {
        self.hull_overlaps(p)
            && (!self.exact
                || p.summary()
                    .is_some_and(|iv| window.intersects_interval(&iv)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{HistoricalDomain, TemporalValue, Value, ValueKind};

    fn scheme() -> Scheme {
        // The ALS reaches below zero so negative-chronon tuples are valid.
        Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::interval(-1000, 1_000_000))
            .attr(
                "V",
                HistoricalDomain::int(),
                Lifespan::interval(-1000, 1_000_000),
            )
            .build()
            .unwrap()
    }

    fn tup(k: i64, spans: &[(i64, i64)]) -> Tuple {
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k)))
            .finish(&scheme())
            .unwrap()
    }

    fn rel(tuples: Vec<Tuple>) -> Relation {
        Relation::with_tuples(scheme(), tuples).unwrap()
    }

    #[test]
    fn policy_assigns_by_birth_chronon() {
        let p = PartitionPolicy::SpanLog2(4); // span 16
        assert_eq!(p.partition_id(Chronon::new(0)), 0);
        assert_eq!(p.partition_id(Chronon::new(15)), 0);
        assert_eq!(p.partition_id(Chronon::new(16)), 1);
        assert_eq!(p.partition_id(Chronon::new(-1)), -1, "floors toward −∞");
        assert_eq!(p.partition_id(Chronon::new(-16)), -1);
        assert_eq!(p.partition_id(Chronon::new(-17)), -2);
        assert_eq!(
            PartitionPolicy::Unpartitioned.partition_id(Chronon::new(12345)),
            0
        );
    }

    #[test]
    fn build_assigns_and_summarizes() {
        let r = rel(vec![
            tup(1, &[(0, 5)]),
            tup(2, &[(3, 40)]),    // born in partition 0, reaches into 2
            tup(3, &[(20, 25)]),   // partition 1
            tup(4, &[(100, 110)]), // partition 6
        ]);
        let m = PartitionMap::build(&r, PartitionPolicy::SpanLog2(4));
        assert_eq!(m.partition_count(), 3);
        assert_eq!(m.tuple_count(), 4);
        let p0 = m.partition(0).unwrap();
        assert_eq!(p0.positions().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(p0.summary_bounds(), (0, 40), "summary covers overhang");
        assert_eq!(m.partition(1).unwrap().positions().collect::<Vec<_>>(), [2]);
        assert_eq!(m.partition(6).unwrap().positions().collect::<Vec<_>>(), [3]);
    }

    /// Pruned candidates equal a linear overlap scan for every window —
    /// including windows that only reach a partition through a tuple's
    /// overhang past its nominal chronon range.
    #[test]
    fn prune_positions_matches_linear_scan() {
        let tuples = vec![
            tup(1, &[(0, 5)]),
            tup(2, &[(3, 40)]),
            tup(3, &[(20, 25)]),
            tup(4, &[(100, 110)]),
            tup(5, &[(64, 70), (200, 210)]), // fragmented lifespan
            tup(6, &[(-30, -20)]),           // negative chronons
        ];
        let r = rel(tuples.clone());
        for policy in [
            PartitionPolicy::SpanLog2(4),
            PartitionPolicy::SpanLog2(6),
            PartitionPolicy::Unpartitioned,
        ] {
            let m = PartitionMap::build(&r, policy);
            for lo in (-40..220).step_by(7) {
                for len in [0i64, 3, 17, 90, 300] {
                    let w = Lifespan::interval(lo, lo + len);
                    let expect: Vec<usize> = tuples
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.lifespan().intersects(&w))
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(
                        m.prune_positions(&w),
                        expect,
                        "{policy} window [{lo},{}]",
                        lo + len
                    );
                }
            }
            assert!(m.prune_positions(&Lifespan::empty()).is_empty());
        }
    }

    /// Incremental insert equals a from-scratch build: same partitions,
    /// same summaries, same pruning answers.
    #[test]
    fn incremental_insert_matches_rebuild() {
        let mut m = PartitionMap::build(&Relation::new(scheme()), PartitionPolicy::SpanLog2(5));
        let mut tuples = Vec::new();
        for k in 0..150i64 {
            let lo = (k * 37) % 400;
            let t = tup(k, &[(lo, lo + (k % 50))]);
            m.insert(tuples.len(), &t);
            tuples.push(t);
        }
        let built = PartitionMap::build(&rel(tuples), PartitionPolicy::SpanLog2(5));
        assert_eq!(m.partition_count(), built.partition_count());
        for (id, p) in built.iter() {
            let q = m.partition(id).expect("same partitions");
            assert_eq!(p.positions().collect::<Vec<_>>(), {
                q.positions().collect::<Vec<_>>()
            });
            assert_eq!(p.summary_bounds(), q.summary_bounds());
        }
        for lo in [0, 100, 250, 399] {
            let w = Lifespan::interval(lo, lo + 60);
            assert_eq!(m.prune_positions(&w), built.prune_positions(&w));
        }
    }

    #[test]
    fn dirty_tracking_follows_inserts() {
        let r = rel(vec![tup(1, &[(0, 5)]), tup(2, &[(100, 105)])]);
        let mut m = PartitionMap::build(&r, PartitionPolicy::SpanLog2(4));
        assert_eq!(m.dirty_ids(), vec![0, 6], "everything dirty after build");
        m.mark_clean();
        assert!(m.dirty_ids().is_empty());
        m.insert(2, &tup(3, &[(101, 120)]));
        assert_eq!(m.dirty_ids(), vec![6], "only the touched partition");
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn out_of_order_insert_panics() {
        let mut m = PartitionMap::build(&Relation::new(scheme()), PartitionPolicy::default());
        m.insert(3, &tup(1, &[(0, 5)]));
    }
}
