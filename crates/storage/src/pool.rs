//! Page-granular buffer pool: the out-of-core backbone.
//!
//! Every on-disk page the engine touches — heap-file pages, B+tree
//! nodes — is faulted into a fixed budget of in-memory *frames* and
//! accessed through pinned [`PageGuard`]s. The pool owns the file
//! handles: callers register a file ([`BufferPool::create`] /
//! [`BufferPool::open`]) and from then on address pages by
//! `(PoolFileId, page_no)`. Requests for a resident page are hits;
//! anything else faults the page in from disk (verifying its
//! [`Page::seal`] checksum), evicting an unpinned frame first when the
//! pool is at capacity.
//!
//! # Eviction
//!
//! Eviction is a clock (second-chance FIFO) sweep: each frame carries a
//! reference bit set on every access; the sweep clears the bit on the
//! first pass and evicts on the second, skipping pinned frames. Evicting
//! a dirty frame writes the sealed page back to its file slot first
//! (without fsync — durability is [`BufferPool::flush`]'s job, invoked
//! by `HeapFile::sync` on the checkpoint path). The capacity is a *soft*
//! cap: if every frame is pinned the pool overcommits rather than
//! deadlocking, so a deliberately tiny pool (`HRDM_POOL_PAGES=8` in CI)
//! stays correct under parallel tests sharing the global pool.
//!
//! # Sizing
//!
//! The process-global pool ([`BufferPool::global`]) sizes itself from
//! `HRDM_POOL_PAGES` (frame count) or `HRDM_POOL_BYTES`, defaulting to
//! 256 MiB (32768 frames of 8 KiB). Tests build private pools with
//! [`BufferPool::new`] so capacity is deterministic.
//!
//! # Counters
//!
//! Per-pool [`PoolStats`] (hits / misses / evictions / writebacks) are
//! always on; the same events also feed the global `hrdm_pool_*`
//! metric families when `hrdm-obs` is enabled, and per-file fault
//! counts ([`BufferPool::faults_for`]) let tests prove a cold file was
//! never touched.

use crate::obs::storage_obs;
use crate::page::{Page, PAGE_SIZE};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Default pool budget: 256 MiB of 8 KiB pages.
pub const DEFAULT_POOL_BYTES: u64 = 256 * 1024 * 1024;

/// Handle to a file registered with a [`BufferPool`].
///
/// Ids are never reused within a pool, so a stale handle (after
/// [`BufferPool::close`]) fails loudly instead of aliasing another file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PoolFileId(u64);

/// One resident page: the frame table maps `(file, page_no)` to these.
struct Frame {
    page: RwLock<Page>,
    /// Guards outstanding on this frame; only unpinned frames evict.
    pins: AtomicU32,
    /// Set by [`PageGuard::write`]; cleared by write-back.
    dirty: AtomicBool,
    /// Second-chance bit for the clock sweep.
    referenced: AtomicBool,
}

impl Frame {
    fn new(page: Page) -> Frame {
        Frame {
            page: RwLock::new(page),
            pins: AtomicU32::new(1),
            dirty: AtomicBool::new(false),
            referenced: AtomicBool::new(true),
        }
    }
}

/// A file registered with the pool.
struct PooledFile {
    file: File,
    path: PathBuf,
    /// Logical page count — may exceed the on-disk length while dirty
    /// tail pages are still pool-resident.
    page_count: u32,
    /// Pages faulted in from this file (ever).
    faults: u64,
}

struct PoolInner {
    frames: HashMap<(u64, u32), Arc<Frame>>,
    /// Clock order: fault order, recycled by the second-chance sweep.
    clock: VecDeque<(u64, u32)>,
    files: HashMap<u64, PooledFile>,
    next_file: u64,
}

/// Monotonic event counters for one pool. Snapshot via [`BufferPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that read the page from disk.
    pub misses: u64,
    /// Frames evicted by the clock sweep.
    pub evictions: u64,
    /// Dirty pages written back (eviction + flush).
    pub writebacks: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Soft frame cap.
    pub capacity: usize,
}

#[derive(Default)]
struct PoolCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

/// A page-granular buffer pool over [`Page`]-formatted files.
///
/// All methods take `&self`; the pool is shared via `Arc` between every
/// `HeapFile` / `LifespanBTree` built over it and is safe to use from
/// multiple threads (one internal mutex serializes the frame table and
/// file I/O — pool I/O is off the parallel query hot path, which reads
/// through already-materialized snapshots).
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    counters: PoolCounters,
}

impl BufferPool {
    /// A pool with a soft cap of `capacity_pages` frames (minimum 1).
    pub fn new(capacity_pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                clock: VecDeque::new(),
                files: HashMap::new(),
                next_file: 0,
            }),
            capacity: capacity_pages.max(1),
            counters: PoolCounters::default(),
        })
    }

    /// The process-global pool, sized once from the environment:
    /// `HRDM_POOL_PAGES` (frames) wins over `HRDM_POOL_BYTES` (rounded
    /// down to whole pages); default [`DEFAULT_POOL_BYTES`].
    pub fn global() -> &'static Arc<BufferPool> {
        static GLOBAL: OnceLock<Arc<BufferPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| BufferPool::new(capacity_from_env()))
    }

    /// The soft frame cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let resident = self.lock_inner().frames.len();
        PoolStats {
            hits: self.counters.hits.load(Ordering::SeqCst),
            misses: self.counters.misses.load(Ordering::SeqCst),
            evictions: self.counters.evictions.load(Ordering::SeqCst),
            writebacks: self.counters.writebacks.load(Ordering::SeqCst),
            resident,
            capacity: self.capacity,
        }
    }

    /// Pages ever faulted in from `file` (0 for unknown/closed files).
    /// This is the "cold partitions were never read" witness.
    pub fn faults_for(&self, file: PoolFileId) -> u64 {
        self.lock_inner().files.get(&file.0).map_or(0, |f| f.faults)
    }

    /// Registers a new file at `path`, truncating anything there.
    pub fn create(&self, path: &Path) -> io::Result<PoolFileId> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(self.register(file, path, 0))
    }

    /// Registers an existing [`Page`]-formatted file. The length must be
    /// a whole number of pages; page checksums are verified lazily, when
    /// each page is first faulted in.
    pub fn open(&self, path: &Path) -> io::Result<PoolFileId> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: length {len} is not a multiple of the page size",
                    path.display()
                ),
            ));
        }
        let pages = len / PAGE_SIZE as u64;
        if pages > u64::from(u32::MAX) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: too many pages for a 32-bit page index", path.display()),
            ));
        }
        Ok(self.register(file, path, pages as u32))
    }

    fn register(&self, file: File, path: &Path, page_count: u32) -> PoolFileId {
        let mut inner = self.lock_inner();
        let id = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(
            id,
            PooledFile {
                file,
                path: path.to_path_buf(),
                page_count,
                faults: 0,
            },
        );
        PoolFileId(id)
    }

    /// Unregisters `file`, dropping its frames and closing the handle.
    /// Dirty pages not yet flushed are discarded — callers that want
    /// durability run [`BufferPool::flush`] first (matching the old
    /// eager `HeapFile` semantics, where unsynced pages died with the
    /// process).
    pub fn close(&self, file: PoolFileId) {
        let mut inner = self.lock_inner();
        inner.files.remove(&file.0);
        inner.frames.retain(|&(fid, _), _| fid != file.0);
        // Stale clock keys are skipped (and dropped) by later sweeps.
    }

    /// Logical page count of `file`.
    pub fn page_count(&self, file: PoolFileId) -> io::Result<u32> {
        let inner = self.lock_inner();
        match inner.files.get(&file.0) {
            Some(f) => Ok(f.page_count),
            None => Err(stale_handle()),
        }
    }

    /// Pins page `page_no` of `file`, faulting it in if non-resident.
    pub fn get(&self, file: PoolFileId, page_no: u32) -> io::Result<PageGuard> {
        let mut inner = self.lock_inner();
        if let Some(frame) = inner.frames.get(&(file.0, page_no)) {
            let frame = Arc::clone(frame);
            frame.pins.fetch_add(1, Ordering::SeqCst);
            frame.referenced.store(true, Ordering::SeqCst);
            drop(inner);
            self.counters.hits.fetch_add(1, Ordering::SeqCst);
            if hrdm_obs::enabled() {
                storage_obs().pool_hits.add(1);
                hrdm_obs::window::pool_windows().hits.add(1);
            }
            return Ok(PageGuard { frame });
        }
        // Miss: fault the page in, evicting first if at capacity.
        self.make_room(&mut inner);
        let page = {
            let f = inner.files.get_mut(&file.0).ok_or_else(stale_handle)?;
            if page_no >= f.page_count {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "{}: page {page_no} out of range ({} pages)",
                        f.path.display(),
                        f.page_count
                    ),
                ));
            }
            f.faults += 1;
            let mut buf = [0u8; PAGE_SIZE];
            f.file
                .seek(SeekFrom::Start(u64::from(page_no) * PAGE_SIZE as u64))?;
            f.file.read_exact(&mut buf)?;
            let page = Page::from_bytes(buf);
            if !page.verify() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: checksum mismatch on page {page_no}", f.path.display()),
                ));
            }
            page
        };
        let frame = Arc::new(Frame::new(page));
        inner.frames.insert((file.0, page_no), Arc::clone(&frame));
        inner.clock.push_back((file.0, page_no));
        drop(inner);
        self.counters.misses.fetch_add(1, Ordering::SeqCst);
        if hrdm_obs::enabled() {
            storage_obs().pool_misses.add(1);
            hrdm_obs::window::pool_windows().misses.add(1);
        }
        Ok(PageGuard { frame })
    }

    /// Appends a fresh, empty, dirty page to `file`; returns its number
    /// and a pinned guard. Fails with "heap file full" when the 32-bit
    /// page index would overflow.
    pub fn alloc(&self, file: PoolFileId) -> io::Result<(u32, PageGuard)> {
        let mut inner = self.lock_inner();
        self.make_room(&mut inner);
        let page_no = {
            let f = inner.files.get_mut(&file.0).ok_or_else(stale_handle)?;
            if f.page_count == u32::MAX {
                return Err(io::Error::other(format!(
                    "{}: heap file full (2^32 page limit reached)",
                    f.path.display()
                )));
            }
            let n = f.page_count;
            f.page_count += 1;
            n
        };
        let frame = Arc::new(Frame::new(Page::new()));
        frame.dirty.store(true, Ordering::SeqCst);
        inner.frames.insert((file.0, page_no), Arc::clone(&frame));
        inner.clock.push_back((file.0, page_no));
        Ok((page_no, PageGuard { frame }))
    }

    /// Writes every dirty resident page of `file` back (sealed), trims
    /// the file to its logical length, and fsyncs it. Frames stay
    /// resident and clean. This is the dirty-only replacement for the
    /// old rewrite-the-world `HeapFile::sync`.
    pub fn flush(&self, file: PoolFileId) -> io::Result<()> {
        let mut inner = self.lock_inner();
        let inner = &mut *inner;
        let mut wrote = 0u64;
        for (&(fid, page_no), frame) in inner.frames.iter() {
            if fid != file.0 || !frame.dirty.load(Ordering::SeqCst) {
                continue;
            }
            let f = inner.files.get_mut(&file.0).ok_or_else(stale_handle)?;
            write_back(f, page_no, frame)?;
            wrote += 1;
        }
        let f = inner.files.get_mut(&file.0).ok_or_else(stale_handle)?;
        f.file.set_len(u64::from(f.page_count) * PAGE_SIZE as u64)?;
        f.file.sync_all()?;
        if wrote > 0 {
            self.counters.writebacks.fetch_add(wrote, Ordering::SeqCst);
            if hrdm_obs::enabled() {
                storage_obs().pool_writebacks.add(wrote);
                hrdm_obs::recorder().record(
                    hrdm_obs::EventKind::PoolWriteback,
                    format!("flush wrote {wrote} page(s)"),
                );
            }
        }
        Ok(())
    }

    /// Evicts unpinned frames until under the soft cap. If every frame
    /// is pinned the pool overcommits (grows past `capacity`) rather
    /// than deadlocking.
    fn make_room(&self, inner: &mut PoolInner) {
        let mut evicted = 0u64;
        let mut writebacks = 0u64;
        while inner.frames.len() >= self.capacity {
            // Bounded sweep: two passes over the clock is enough to give
            // every frame its second chance; if nothing is evictable by
            // then, overcommit.
            let mut budget = inner.clock.len().saturating_mul(2);
            let mut victim = None;
            while budget > 0 {
                budget -= 1;
                let Some(key) = inner.clock.pop_front() else {
                    break;
                };
                let Some(frame) = inner.frames.get(&key) else {
                    continue; // stale key for a closed file / prior eviction
                };
                if frame.pins.load(Ordering::SeqCst) > 0 {
                    inner.clock.push_back(key);
                    continue;
                }
                if frame.referenced.swap(false, Ordering::SeqCst) {
                    inner.clock.push_back(key);
                    continue;
                }
                victim = Some(key);
                break;
            }
            let Some((fid, page_no)) = victim else {
                break; // everything pinned or referenced: overcommit
            };
            // Unpinned + under the pool mutex: no guard can appear, so
            // removing the frame is safe. Dirty pages go back first.
            let Some(frame) = inner.frames.remove(&(fid, page_no)) else {
                continue;
            };
            if frame.dirty.load(Ordering::SeqCst) {
                if let Some(f) = inner.files.get_mut(&fid) {
                    if write_back(f, page_no, &frame).is_err() {
                        // Write-back failed: keep the frame resident
                        // rather than losing the page; the error will
                        // resurface (with a path) on the next flush.
                        inner.frames.insert((fid, page_no), frame);
                        inner.clock.push_back((fid, page_no));
                        break;
                    }
                    writebacks += 1;
                }
            }
            evicted += 1;
        }
        if evicted > 0 {
            self.counters.evictions.fetch_add(evicted, Ordering::SeqCst);
            if hrdm_obs::enabled() {
                storage_obs().pool_evictions.add(evicted);
                // One event per eviction sweep, not per page — see the
                // flight recorder's cost model.
                hrdm_obs::recorder().record(
                    hrdm_obs::EventKind::PoolEviction,
                    format!("evicted {evicted} page(s), {writebacks} written back"),
                );
            }
        }
        if writebacks > 0 {
            self.counters
                .writebacks
                .fetch_add(writebacks, Ordering::SeqCst);
            if hrdm_obs::enabled() {
                storage_obs().pool_writebacks.add(writebacks);
            }
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().expect("buffer pool lock")
    }
}

/// Seals and writes one frame's page to its slot in `f`, clearing the
/// dirty bit. No fsync — callers decide durability.
fn write_back(f: &mut PooledFile, page_no: u32, frame: &Frame) -> io::Result<()> {
    let mut page = frame.page.write().expect("frame page lock");
    page.seal();
    f.file
        .seek(SeekFrom::Start(u64::from(page_no) * PAGE_SIZE as u64))?;
    f.file.write_all(&page.bytes()[..])?;
    drop(page);
    frame.dirty.store(false, Ordering::SeqCst);
    Ok(())
}

fn stale_handle() -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        "buffer pool: stale file handle (file was closed)",
    )
}

fn capacity_from_env() -> usize {
    if let Ok(v) = std::env::var("HRDM_POOL_PAGES") {
        if let Ok(pages) = v.trim().parse::<usize>() {
            return pages.max(1);
        }
    }
    let bytes = std::env::var("HRDM_POOL_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_POOL_BYTES);
    ((bytes / PAGE_SIZE as u64) as usize).max(1)
}

/// A pinned page. The frame cannot be evicted while any guard exists;
/// dropping the guard unpins it. Obtain the page through
/// [`PageGuard::read`] / [`PageGuard::write`] — writing marks the frame
/// dirty so the pool writes it back on eviction or flush.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// Read access to the pinned page.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read().expect("frame page lock")
    }

    /// Write access to the pinned page; marks the frame dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::SeqCst);
        self.frame.page.write().expect("frame page lock")
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("pins", &self.frame.pins.load(Ordering::SeqCst))
            .field("dirty", &self.frame.dirty.load(Ordering::SeqCst))
            .finish()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-pool-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn alloc_get_round_trip() {
        let path = tmp("round-trip");
        let pool = BufferPool::new(4);
        let f = pool.create(&path).unwrap();
        let (n0, g0) = pool.alloc(f).unwrap();
        assert_eq!(n0, 0);
        let slot = g0.write().insert(b"hello pool").unwrap();
        drop(g0);
        let g = pool.get(f, 0).unwrap();
        assert_eq!(g.read().get(slot), Some(&b"hello pool"[..]));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0); // page was resident since alloc
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_writes_back_and_refaults() {
        let path = tmp("evict");
        let pool = BufferPool::new(2);
        let f = pool.create(&path).unwrap();
        for i in 0..6u8 {
            let (_, g) = pool.alloc(f).unwrap();
            g.write().insert(&[i; 100]).unwrap();
        }
        // Capacity 2 with 6 pages: evictions + dirty writebacks happened.
        let s = pool.stats();
        assert!(s.resident <= 2);
        assert!(s.evictions >= 4, "evictions: {}", s.evictions);
        assert!(s.writebacks >= 4, "writebacks: {}", s.writebacks);
        // Every page faults back with its data (and a valid checksum).
        for i in 0..6u8 {
            let g = pool.get(f, u32::from(i)).unwrap();
            assert_eq!(g.read().get(0), Some(&[i; 100][..]));
        }
        assert!(pool.stats().misses >= 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let path = tmp("pinned");
        let pool = BufferPool::new(2);
        let f = pool.create(&path).unwrap();
        let (_, g0) = pool.alloc(f).unwrap();
        g0.write().insert(b"pinned").unwrap();
        // Alloc way past capacity while holding g0: pool must overcommit,
        // never evict the pinned frame.
        let guards: Vec<_> = (0..8).map(|_| pool.alloc(f).unwrap()).collect();
        drop(guards);
        assert_eq!(g0.read().get(0), Some(&b"pinned"[..]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_persists_and_reopen_verifies() {
        let path = tmp("flush");
        let pool = BufferPool::new(8);
        let f = pool.create(&path).unwrap();
        for i in 0..3u8 {
            let (_, g) = pool.alloc(f).unwrap();
            g.write().insert(&[i; 10]).unwrap();
        }
        pool.flush(f).unwrap();
        pool.close(f);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            3 * PAGE_SIZE as u64
        );
        let f2 = pool.open(&path).unwrap();
        assert_eq!(pool.page_count(f2).unwrap(), 3);
        for i in 0..3u8 {
            let g = pool.get(f2, u32::from(i)).unwrap();
            assert_eq!(g.read().get(0), Some(&[i; 10][..]));
        }
        assert_eq!(pool.faults_for(f2), 3);
        pool.close(f2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_detects_corruption() {
        let path = tmp("corrupt");
        let pool = BufferPool::new(8);
        let f = pool.create(&path).unwrap();
        let (_, g) = pool.alloc(f).unwrap();
        g.write().insert(b"precious").unwrap();
        drop(g);
        pool.flush(f).unwrap();
        pool.close(f);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let f2 = pool.open(&path).unwrap(); // lazy: open succeeds
        let err = pool.get(f2, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        pool.close(f2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stale_handle_fails_loudly() {
        let path = tmp("stale");
        let pool = BufferPool::new(4);
        let f = pool.create(&path).unwrap();
        pool.close(f);
        assert!(pool.get(f, 0).is_err());
        assert!(pool.alloc(f).is_err());
        assert!(pool.page_count(f).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_page_rejected() {
        let path = tmp("range");
        let pool = BufferPool::new(4);
        let f = pool.create(&path).unwrap();
        let err = pool.get(f, 7).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        pool.close(f);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn per_file_fault_isolation() {
        let pa = tmp("iso-a");
        let pb = tmp("iso-b");
        let pool = BufferPool::new(8);
        let a = pool.create(&pa).unwrap();
        let b = pool.create(&pb).unwrap();
        for _ in 0..2 {
            drop(pool.alloc(a).unwrap());
            drop(pool.alloc(b).unwrap());
        }
        pool.flush(a).unwrap();
        pool.flush(b).unwrap();
        pool.close(a);
        pool.close(b);
        let a2 = pool.open(&pa).unwrap();
        let b2 = pool.open(&pb).unwrap();
        drop(pool.get(a2, 0).unwrap());
        drop(pool.get(a2, 1).unwrap());
        assert_eq!(pool.faults_for(a2), 2);
        assert_eq!(pool.faults_for(b2), 0, "cold file must never fault");
        pool.close(a2);
        pool.close(b2);
        std::fs::remove_file(pa).ok();
        std::fs::remove_file(pb).ok();
    }
}
