//! The out-of-core read path: a database whose relations stay on disk
//! until a query window asks for them.
//!
//! [`Database::load`](crate::Database::load) is eager — it reassembles
//! every relation in memory before the first query, so capacity is
//! capped at RAM. [`PagedDatabase::open`] reads **only the catalog**
//! (header + partition manifest, a few KiB) and leaves every heap page
//! and B+tree node on disk. A query then calls
//! [`PagedDatabase::window_snapshot`] with the lifespan window it needs:
//!
//! 1. the persisted per-partition summaries prune partitions whose
//!    chronon range cannot intersect the window — those are never
//!    *opened*, let alone read (the per-file fault counters of the
//!    buffer pool prove it);
//! 2. each surviving partition's member positions come from the
//!    relation's on-disk B+tree ([`crate::LifespanBTree`]), and its
//!    tuples stream in through the buffer pool, which caps resident
//!    memory at the pool budget regardless of relation size;
//! 3. the materialized tuples become an ordinary [`DbSnapshot`], so the
//!    whole existing query stack — planner, pruning, streaming executor,
//!    EXPLAIN ANALYZE — runs over it unchanged.
//!
//! A windowed snapshot contains *only* tuples whose lifespan intersects
//! the window. That is exactly the set a lifespan-bounded query can
//! observe (`hrdm-query`'s `materialization_window` computes a sound
//! window from a query text, or `None` to materialize everything), but
//! callers passing hand-made windows must respect the contract.
//!
//! Writes stay with the attached [`Database`](crate::Database) /
//! `ConcurrentDatabase`; a paged view does tolerate a WAL *tail* of
//! plain inserts and relation creations (held resident — the tail is
//! bounded by checkpoint cadence), and refuses anything heavier with a
//! `Mode` error naming the fix: checkpoint first.

use crate::btree::LifespanBTree;
use crate::catalog::Catalog;
use crate::codec::Decoder;
use crate::database::{
    btree_path, io_with_path, partition_heap_path, read_catalog_manifest, wal_path, DbError,
};
use crate::heap::HeapFile;
use crate::partition::{PartitionMap, PartitionPolicy};
use crate::pool::BufferPool;
use crate::snapshot::DbSnapshot;
use crate::wal::{Wal, WalRecord};
use hrdm_core::{Relation, Scheme, Tuple};
use hrdm_index::RelationIndexes;
use hrdm_time::Lifespan;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One relation of a paged database: cold partition metadata plus the
/// resident WAL tail. Heap files open lazily, on first fault.
struct PagedRelation {
    scheme: Scheme,
    /// Cold partition map over the checkpoint manifest: pruning answers
    /// come from persisted summaries, member positions from the B+tree.
    map: PartitionMap,
    /// Tuples inserted after the checkpoint (the WAL tail), at global
    /// positions `checkpoint_count..`.
    tail: Vec<Tuple>,
    /// Tuples in the checkpoint image (= sum of manifest counts).
    checkpoint_count: usize,
    /// Partition heaps opened so far; absence here (plus a zero fault
    /// count) is the witness that a pruned partition was never touched.
    heaps: Mutex<BTreeMap<i64, Arc<HeapFile>>>,
}

impl std::fmt::Debug for PagedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedDatabase")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("relations", &self.rels.len())
            .finish()
    }
}

/// A database opened out-of-core; see the [module docs](self).
pub struct PagedDatabase {
    dir: PathBuf,
    pool: Arc<BufferPool>,
    catalog: Arc<Catalog>,
    policy: PartitionPolicy,
    epoch: u64,
    rels: BTreeMap<String, PagedRelation>,
}

impl PagedDatabase {
    /// Opens the database at `dir` against the process-global buffer
    /// pool. Reads the catalog and WAL tail only — no heap pages.
    pub fn open(dir: &Path) -> Result<PagedDatabase, DbError> {
        Self::open_with_pool(dir, Arc::clone(BufferPool::global()))
    }

    /// [`PagedDatabase::open`] with an explicit pool (tests use tiny
    /// pools to force eviction).
    pub fn open_with_pool(dir: &Path, pool: Arc<BufferPool>) -> Result<PagedDatabase, DbError> {
        let Some(manifest) = read_catalog_manifest(dir)? else {
            return Err(DbError::Mode(format!(
                "no checkpoint at {}: a paged open needs a catalog — checkpoint the database first",
                dir.display()
            )));
        };
        let mut catalog = manifest.catalog;
        let policy = manifest.policy;
        let epoch = manifest.epoch;

        let mut rels: BTreeMap<String, PagedRelation> = BTreeMap::new();
        let names: Vec<String> = catalog.relations().map(str::to_string).collect();
        for name in names {
            let Some(scheme) = catalog.scheme(&name).cloned() else {
                return Err(DbError::BadFile(format!(
                    "{}: catalog is inconsistent about relation `{name}`",
                    dir.display()
                )));
            };
            let Some(rows) = manifest.relations.get(&name) else {
                return Err(DbError::BadFile(format!(
                    "{}: relation `{name}` missing from the partition manifest",
                    dir.display()
                )));
            };
            let btx = btree_path(dir, &name, epoch);
            let btree = Arc::new(
                LifespanBTree::open(&btx, Arc::clone(&pool)).map_err(|e| io_with_path(&btx, e))?,
            );
            let map = PartitionMap::from_manifest(policy, scheme.clone(), rows, &btree);
            let checkpoint_count = map.tuple_count();
            rels.insert(
                name,
                PagedRelation {
                    scheme,
                    map,
                    tail: Vec::new(),
                    checkpoint_count,
                    heaps: Mutex::new(BTreeMap::new()),
                },
            );
        }

        // The WAL tail: inserts and creations stay resident; anything
        // heavier (schema evolution, wholesale replacement) would force
        // this view to re-derive relations — the eager loader's job.
        let wal_file = wal_path(dir, epoch);
        if wal_file.exists() {
            let (records, _torn) = Wal::replay(&wal_file)?;
            for record in records {
                match record {
                    WalRecord::CreateRelation { name, scheme } => {
                        catalog.create_relation(&name, scheme.clone())?;
                        let map =
                            PartitionMap::from_manifest(policy, scheme.clone(), &[], &no_btree());
                        rels.insert(
                            name,
                            PagedRelation {
                                scheme,
                                map,
                                tail: Vec::new(),
                                checkpoint_count: 0,
                                heaps: Mutex::new(BTreeMap::new()),
                            },
                        );
                    }
                    WalRecord::Insert { relation, tuple } => {
                        let Some(pr) = rels.get_mut(&relation) else {
                            return Err(DbError::BadFile(format!(
                                "{}: insert into unknown relation `{relation}`",
                                wal_file.display()
                            )));
                        };
                        tuple.validate(&pr.scheme).map_err(DbError::Model)?;
                        pr.tail.push(tuple);
                    }
                    other => {
                        return Err(DbError::Mode(format!(
                            "{}: WAL tail holds {} — checkpoint the database before opening it paged",
                            wal_file.display(),
                            record_kind(&other)
                        )));
                    }
                }
            }
        }

        Ok(PagedDatabase {
            dir: dir.to_path_buf(),
            pool,
            catalog: Arc::new(catalog),
            policy,
            epoch,
            rels,
        })
    }

    /// The buffer pool this database reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The checkpoint epoch the view is reading.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The catalog (checkpoint + tail creations).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The registered relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.rels.keys().map(String::as_str)
    }

    /// The scheme of `name`.
    pub fn scheme(&self, name: &str) -> Option<&Scheme> {
        self.rels.get(name).map(|r| &r.scheme)
    }

    /// Total tuples of `name` (checkpoint image + WAL tail), known
    /// without touching a heap page.
    pub fn tuple_count(&self, name: &str) -> Option<usize> {
        self.rels
            .get(name)
            .map(|r| r.checkpoint_count + r.tail.len())
    }

    /// The cold partition map of `name` — pruning metadata only.
    pub fn partition_map(&self, name: &str) -> Option<&PartitionMap> {
        self.rels.get(name).map(|r| &r.map)
    }

    /// Ids of `name`'s partitions whose heap file has been opened (and
    /// thus possibly read) so far — the complement is provably cold.
    pub fn opened_partitions(&self, name: &str) -> Vec<i64> {
        self.rels.get(name).map_or_else(Vec::new, |r| {
            r.heaps
                .lock()
                .expect("paged heap cache lock")
                .keys()
                .copied()
                .collect()
        })
    }

    /// Materializes the whole database as a [`DbSnapshot`] — every
    /// partition of every relation. Equivalent to
    /// [`Database::load`](crate::Database::load) + snapshot, but reading
    /// through the pool's bounded memory.
    pub fn snapshot(&self) -> Result<DbSnapshot, DbError> {
        self.window_snapshot(None)
    }

    /// Materializes a [`DbSnapshot`] holding exactly the tuples whose
    /// lifespan intersects `window` (all tuples when `None`).
    ///
    /// Partitions whose summary cannot intersect the window are pruned
    /// from catalog metadata alone — their heap files are never opened.
    /// The snapshot is sound for any query whose observable tuples all
    /// intersect `window` (see `hrdm-query`'s `materialization_window`).
    pub fn window_snapshot(&self, window: Option<&Lifespan>) -> Result<DbSnapshot, DbError> {
        let mut relations = BTreeMap::new();
        let mut indexes = BTreeMap::new();
        let mut partitions = BTreeMap::new();
        for (name, pr) in &self.rels {
            let rel = self.materialize(name, pr, window)?;
            indexes.insert(name.clone(), Arc::new(RelationIndexes::build(&rel)));
            partitions.insert(
                name.clone(),
                Arc::new(PartitionMap::build(&rel, self.policy)),
            );
            relations.insert(name.clone(), rel);
        }
        let version = self.rels.values().map(|r| r.tail.len() as u64).sum();
        Ok(DbSnapshot::new(
            Arc::clone(&self.catalog),
            relations,
            indexes,
            partitions,
            Some(self.epoch),
            version,
        ))
    }

    /// Reads one relation's window-intersecting tuples, ascending by
    /// global position.
    fn materialize(
        &self,
        name: &str,
        pr: &PagedRelation,
        window: Option<&Lifespan>,
    ) -> Result<Relation, DbError> {
        let mut picked: Vec<(usize, Tuple)> = Vec::new();
        let ids: Vec<i64> = match window {
            Some(w) => pr.map.overlapping_ids(w),
            None => pr.map.iter().map(|(id, _)| id).collect(),
        };
        for id in ids {
            let Some(part) = pr.map.partition(id) else {
                continue;
            };
            // Member positions, ascending — the order the checkpoint
            // wrote this partition's heap records in, so the zip below
            // pairs every record with its global position.
            let positions = part.try_positions()?;
            let heap = self.heap(name, pr, id)?;
            let mut at = 0usize;
            for item in heap.scan() {
                let (_, rec) = item.map_err(|e| io_with_path(heap.path(), e))?;
                let Some(&pos) = positions.get(at) else {
                    return Err(DbError::BadFile(format!(
                        "{}: partition p{id} holds more records than the B+tree knows ({})",
                        heap.path().display(),
                        positions.len()
                    )));
                };
                at += 1;
                // Clip to the (possibly evolved) scheme: values outside a
                // shrunk ALS become invisible, not invalid.
                let tuple = Decoder::new(&rec)
                    .get_tuple()?
                    .clipped_to_scheme(&pr.scheme);
                if window.is_none_or(|w| tuple.lifespan().intersects(w)) {
                    tuple.validate(&pr.scheme).map_err(DbError::Model)?;
                    picked.push((pos, tuple));
                }
            }
            if at != positions.len() {
                return Err(DbError::BadFile(format!(
                    "{}: partition p{id} holds {at} record(s), the B+tree says {}",
                    heap.path().display(),
                    positions.len()
                )));
            }
        }
        for (i, tuple) in pr.tail.iter().enumerate() {
            if window.is_none_or(|w| tuple.lifespan().intersects(w)) {
                picked.push((pr.checkpoint_count + i, tuple.clone()));
            }
        }
        // Partitions interleave in position space; restore global
        // insertion order so results match the eager loader byte for
        // byte.
        picked.sort_by_key(|&(pos, _)| pos);
        let tuples: Vec<Tuple> = picked.into_iter().map(|(_, t)| t).collect();
        Ok(Relation::from_parts_unchecked(pr.scheme.clone(), tuples))
    }

    /// The heap of partition `id`, opened on first use.
    fn heap(&self, name: &str, pr: &PagedRelation, id: i64) -> Result<Arc<HeapFile>, DbError> {
        let mut heaps = pr.heaps.lock().expect("paged heap cache lock");
        if let Some(h) = heaps.get(&id) {
            return Ok(Arc::clone(h));
        }
        let path = partition_heap_path(&self.dir, name, self.epoch, id);
        let heap = Arc::new(
            HeapFile::open_in(&path, Arc::clone(&self.pool)).map_err(|e| io_with_path(&path, e))?,
        );
        heaps.insert(id, Arc::clone(&heap));
        Ok(heap)
    }
}

/// An empty B+tree for tail-created relations (no checkpoint image yet):
/// every member fetch over it is trivially empty.
fn no_btree() -> Arc<LifespanBTree> {
    // A relation created after the checkpoint has no on-disk tree; an
    // empty cold map never consults one, so a dangling Arc would do —
    // but building a real empty tree in a scratch file keeps the type
    // honest without special cases.
    static EMPTY: std::sync::OnceLock<Arc<LifespanBTree>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| {
        let path = std::env::temp_dir().join(format!("hrdm-empty-{}.btx", std::process::id()));
        let pool = BufferPool::new(1);
        let tree = LifespanBTree::build(&path, pool, &mut Vec::new())
            .expect("building an empty scratch B+tree in $TMPDIR"); // lint: no-panic-ok(one-shot process setup; an unwritable $TMPDIR leaves nothing to degrade to)
        Arc::new(tree)
    }))
}

fn record_kind(record: &WalRecord) -> &'static str {
    match record {
        WalRecord::CreateRelation { .. } => "a relation creation",
        WalRecord::Insert { .. } => "an insert",
        WalRecord::AddAttribute { .. } => "schema evolution (add attribute)",
        WalRecord::DropAttribute { .. } => "schema evolution (drop attribute)",
        WalRecord::ReAddAttribute { .. } => "schema evolution (re-add attribute)",
        WalRecord::PutRelation { .. } => "a wholesale relation replacement",
    }
}
