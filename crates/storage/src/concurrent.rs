//! A thread-safe database front-end: snapshot-isolated readers and a
//! group-commit writer.
//!
//! ## Concurrency model
//!
//! * **Readers** call [`ConcurrentDatabase::snapshot`] and get an
//!   `Arc<DbSnapshot>` — the committed state at one commit point, with the
//!   relations' copy-on-write storage and `Arc`-shared indexes. Taking a
//!   snapshot is one brief read-lock on the published pointer; everything
//!   after (whole `hrdm-query` pipelines: optimize → plan → evaluate) runs
//!   with **zero locks**, and scales with reader threads.
//! * **Writers** call the usual write methods ([`ConcurrentDatabase::insert`],
//!   …). Each write is enqueued; one writer at a time becomes the **leader**,
//!   drains everything queued (its own op plus whatever arrived while the
//!   previous leader was fsyncing), validates and applies the ops in order,
//!   and commits them as a single WAL batch frame with **one fsync**
//!   ([`crate::Wal::append_batch`]). The leader then publishes the next
//!   snapshot atomically and wakes every waiter with its own result. Under
//!   contention, `k` concurrent writers pay ~1 fsync instead of `k` — the
//!   classical group commit.
//!
//! ## Guarantees
//!
//! * **Snapshot isolation for readers**: a snapshot never changes, no
//!   matter what writers, `checkpoint()`, or WAL rotation do afterwards.
//! * **Prefix consistency**: snapshots are published only after the whole
//!   batch is fsync'd, so every observable state is the result of a prefix
//!   of the commit order — never a subset with holes. Crash recovery gives
//!   the same guarantee on disk (see the WAL module docs).
//! * **No acknowledged write is lost**: a write's `Ok` is returned only
//!   after its batch's fsync, identical to the single-threaded durability
//!   contract of [`Database`].

use crate::database::{Database, DbError};
use crate::snapshot::DbSnapshot;
use crate::wal::WalRecord;
use hrdm_core::{Attribute, HistoricalDomain, Relation, Scheme, Tuple};
use hrdm_time::Chronon;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// One queued write: the operation *group* (one or more ops committed in
/// the same batch, with no snapshot published between them) plus the
/// ticket its submitter waits on.
struct Pending {
    ops: Vec<WalRecord>,
    ticket: Arc<Ticket>,
}

/// A one-shot completion slot a waiting writer parks on. Carries one
/// result per op of the submitter's group.
struct Ticket {
    done: Mutex<Option<Vec<Result<(), DbError>>>>,
    cv: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, results: Vec<Result<(), DbError>>) {
        let mut slot = self.done.lock().expect("ticket lock");
        *slot = Some(results);
        self.cv.notify_all();
    }

    /// Takes the results if they are already there.
    fn try_take(&self) -> Option<Vec<Result<(), DbError>>> {
        self.done.lock().expect("ticket lock").take()
    }

    /// Waits up to `timeout` for the results. `None` on timeout — the
    /// caller re-checks for leadership (covers the rare race where a
    /// stepping-down leader missed an op enqueued after its last drain).
    fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Vec<Result<(), DbError>>> {
        let mut slot = self.done.lock().expect("ticket lock");
        if let Some(results) = slot.take() {
            return Some(results);
        }
        let (mut slot, _timed_out) = self
            .cv
            .wait_timeout(slot, timeout)
            .expect("ticket wait_timeout");
        slot.take()
    }
}

/// Counters describing the group-commit writer's behaviour (all monotone).
/// Only **acknowledged** operations count — validation failures and
/// batches whose fsync failed (nothing acknowledged) are excluded, so
/// [`CommitStats::mean_batch`] really is the amortization factor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Commit rounds that acknowledged at least one op (≈ fsyncs on an
    /// attached database; a round of only set-semantics no-ops
    /// acknowledges without needing an fsync).
    pub batches: u64,
    /// Acknowledged operations across all batches.
    pub ops: u64,
    /// The most ops one batch has acknowledged so far.
    pub max_batch: usize,
    /// Ops acknowledged by the most recent counted batch.
    pub last_batch: usize,
}

impl CommitStats {
    /// Mean ops per batch — the fsync amortization factor.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }
}

/// The per-instance commit cells, delegated to `hrdm-obs` primitives —
/// the same atomics back `\stats` (exact per-database values; the tests
/// assert exact op counts) and any registry these cells are exposed
/// through, so there is exactly one source of truth. Engine-wide
/// aggregates (the batch-size histogram) go to the global registry in
/// [`ConcurrentDatabase::commit_and_fulfill`] instead, because several
/// databases can live in one process.
#[derive(Default)]
struct StatsCells {
    batches: hrdm_obs::Counter,
    ops: hrdm_obs::Counter,
    /// High-water mark, maintained with `fetch_max`.
    max_batch: hrdm_obs::Counter,
    /// Last-value cell, overwritten per batch.
    last_batch: hrdm_obs::Counter,
}

/// A [`Database`] shared across threads: lock-free snapshot readers, a
/// leader/follower group-commit writer. See the module docs for the model.
pub struct ConcurrentDatabase {
    /// The writer's working state. Holding this lock is what makes a
    /// writer the leader; it is held across validate + apply + fsync +
    /// publish, never by readers.
    inner: Mutex<Database>,
    /// The last published snapshot. Readers briefly read-lock to clone the
    /// `Arc`; the leader write-locks to swap in the next state.
    published: RwLock<Arc<DbSnapshot>>,
    /// Writes waiting to be drained into the next commit batch.
    queue: Mutex<VecDeque<Pending>>,
    stats: StatsCells,
}

impl ConcurrentDatabase {
    /// An empty, detached concurrent database (no directory, no WAL —
    /// group application without durability).
    pub fn new() -> ConcurrentDatabase {
        ConcurrentDatabase::from_database(Database::new())
    }

    /// Wraps an existing database (attached or detached).
    pub fn from_database(db: Database) -> ConcurrentDatabase {
        let snapshot = Arc::new(db.snapshot());
        ConcurrentDatabase {
            inner: Mutex::new(db),
            published: RwLock::new(snapshot),
            queue: Mutex::new(VecDeque::new()),
            stats: StatsCells::default(),
        }
    }

    /// Attaches to `dir` durably — [`Database::open`] wrapped for
    /// concurrent use.
    pub fn open(dir: &Path) -> Result<ConcurrentDatabase, DbError> {
        Ok(ConcurrentDatabase::from_database(Database::open(dir)?))
    }

    /// The current committed snapshot. One brief read-lock; after that the
    /// caller holds an immutable state no writer can disturb.
    pub fn snapshot(&self) -> Arc<DbSnapshot> {
        Arc::clone(&self.published.read().expect("published lock"))
    }

    /// Group-commit write: enqueue, then either **lead** (commit every
    /// queued op, own included, as one fsync'd batch) or **follow** (park
    /// on the ticket until a leader's batch carries the op through).
    ///
    /// Followers never touch the database lock — that is what lets batches
    /// form: while the current leader is inside its fsync, arriving
    /// writers enqueue and park, and the leader's next drain commits them
    /// all at once. The short follower timeout covers the one race where
    /// a stepping-down leader missed an op enqueued after its final
    /// drain; the timed-out follower simply re-contends for leadership.
    pub fn write(&self, op: WalRecord) -> Result<(), DbError> {
        self.write_group(vec![op])
            .into_iter()
            .next()
            .unwrap_or_else(|| {
                Err(DbError::Mode(
                    "internal: write_group returned no result for a one-op group".into(),
                ))
            })
    }

    /// Group-commit write of several ops as one **atomic group**: the ops
    /// land in the same commit batch in order, with no snapshot published
    /// between them — readers either see none of the group or all of its
    /// acknowledged ops. Returns one result per op (an op can fail
    /// validation individually, e.g. a key conflict, without taking the
    /// rest of the group down).
    pub fn write_group(&self, ops: Vec<WalRecord>) -> Vec<Result<(), DbError>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let ticket = Arc::new(Ticket::new());
        self.queue.lock().expect("queue lock").push_back(Pending {
            ops,
            ticket: Arc::clone(&ticket),
        });
        loop {
            // A previous leader may already have carried our ops through.
            if let Some(results) = ticket.try_take() {
                return results;
            }
            match self.inner.try_lock() {
                Ok(mut db) => {
                    // Leader: drain-and-commit until the queue stays empty,
                    // so no follower that parked while we held the lock is
                    // left stranded.
                    loop {
                        let batch: Vec<Pending> = {
                            let mut queue = self.queue.lock().expect("queue lock");
                            queue.drain(..).collect()
                        };
                        if batch.is_empty() {
                            break;
                        }
                        self.commit_and_fulfill(&mut db, batch);
                    }
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    // Follower: our ops are queued; the leader commits them.
                    if let Some(results) =
                        ticket.wait_timeout(std::time::Duration::from_micros(500))
                    {
                        return results;
                    }
                }
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    // lint: no-panic-ok(a poisoned database lock means a writer crashed mid-commit; propagating the crash beats publishing torn state)
                    panic!("database lock poisoned: {e}")
                }
            }
        }
    }

    /// Commits one drained batch (every queued group, flattened, one
    /// fsync) and wakes its submitters with their per-op results.
    fn commit_and_fulfill(&self, db: &mut Database, batch: Vec<Pending>) {
        let group_sizes: Vec<usize> = batch.iter().map(|p| p.ops.len()).collect();
        let (ops, tickets): (Vec<Vec<WalRecord>>, Vec<Arc<Ticket>>) =
            batch.into_iter().map(|p| (p.ops, p.ticket)).unzip();
        let flat: Vec<WalRecord> = ops.into_iter().flatten().collect();
        let mut results = db.commit_batch(flat);
        // Publish before acknowledging: a writer must be able to read its
        // own write the instant its ack arrives. After an fsync failure
        // nothing was acknowledged (commit_batch rolled memory back), so
        // nothing is published either — readers keep the durable state.
        let acked = results.iter().filter(|r| r.is_ok()).count();
        if acked > 0 {
            self.publish(db);
            self.stats.batches.inc();
            self.stats.ops.add(acked as u64);
            self.stats.max_batch.fetch_max(acked as u64);
            self.stats.last_batch.store(acked as u64);
            if hrdm_obs::enabled() {
                crate::obs::storage_obs()
                    .commit_batch_size
                    .record(acked as u64);
                hrdm_obs::recorder().record(
                    hrdm_obs::EventKind::CommitApplied,
                    format!("batch of {} op(s) in {} group(s)", acked, group_sizes.len()),
                );
            }
        }
        // Hand each group its own slice of the flattened results.
        for (ticket, size) in tickets.into_iter().zip(group_sizes) {
            let rest = results.split_off(size);
            ticket.fulfill(std::mem::replace(&mut results, rest));
        }
    }

    /// Swaps the published snapshot for the leader's post-commit state.
    fn publish(&self, db: &Database) {
        let next = Arc::new(db.snapshot());
        *self.published.write().expect("published lock") = next;
        if hrdm_obs::enabled() {
            crate::obs::storage_obs().snapshot_publish.inc();
        }
    }

    /// Creates a relation (group-committed).
    pub fn create_relation(&self, name: &str, scheme: Scheme) -> Result<(), DbError> {
        self.write(WalRecord::CreateRelation {
            name: name.to_string(),
            scheme,
        })
    }

    /// Inserts a tuple (group-committed).
    pub fn insert(&self, name: &str, tuple: Tuple) -> Result<(), DbError> {
        self.write(WalRecord::Insert {
            relation: name.to_string(),
            tuple,
        })
    }

    /// Replaces a relation's contents (group-committed).
    pub fn put_relation(&self, name: &str, relation: Relation) -> Result<(), DbError> {
        self.write(WalRecord::PutRelation {
            relation: name.to_string(),
            contents: relation,
        })
    }

    /// Create-or-replace in one atomic group: stores `relation` under
    /// `name`, creating the relation if it does not exist. Because both
    /// ops commit in the same batch with a single snapshot publish,
    /// readers never observe the created-but-empty intermediate state,
    /// and two racing materializations of a new name both succeed (one
    /// create wins, both puts apply in commit order — last writer's
    /// contents stick).
    pub fn materialize(&self, name: &str, relation: Relation) -> Result<(), DbError> {
        let scheme = relation.scheme().clone();
        let results = self.write_group(vec![
            WalRecord::CreateRelation {
                name: name.to_string(),
                scheme,
            },
            WalRecord::PutRelation {
                relation: name.to_string(),
                contents: relation,
            },
        ]);
        let mut results = results.into_iter();
        let (create, put) = match (results.next(), results.next()) {
            (Some(create), Some(put)) => (create, put),
            _ => {
                return Err(DbError::Mode(
                    "internal: write_group returned fewer results than ops".into(),
                ))
            }
        };
        match create {
            // Already existed (possibly created by a racing
            // materialization an instant ago): replace is the semantics.
            Err(DbError::Model(hrdm_core::HrdmError::DuplicateRelation(_))) | Ok(()) => put,
            Err(other) => Err(other),
        }
    }

    /// Adds an attribute (schema evolution, group-committed).
    pub fn add_attribute(
        &self,
        relation: &str,
        attribute: Attribute,
        domain: HistoricalDomain,
        from: Chronon,
        to: Chronon,
    ) -> Result<(), DbError> {
        self.write(WalRecord::AddAttribute {
            relation: relation.to_string(),
            attribute,
            domain,
            from,
            to,
        })
    }

    /// Drops an attribute as of `at` (schema evolution, group-committed).
    pub fn drop_attribute(
        &self,
        relation: &str,
        attribute: &Attribute,
        at: Chronon,
    ) -> Result<(), DbError> {
        self.write(WalRecord::DropAttribute {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            at,
        })
    }

    /// Re-adds a dropped attribute over `[from, to]` (schema evolution,
    /// group-committed).
    pub fn re_add_attribute(
        &self,
        relation: &str,
        attribute: &Attribute,
        from: Chronon,
        to: Chronon,
    ) -> Result<(), DbError> {
        self.write(WalRecord::ReAddAttribute {
            relation: relation.to_string(),
            attribute: attribute.clone(),
            from,
            to,
        })
    }

    /// Folds the WAL into a fresh checkpoint (see [`Database::checkpoint`])
    /// and republishes. Readers holding pre-checkpoint snapshots are
    /// unaffected — their state is in memory, not in the rotated files.
    pub fn checkpoint(&self) -> Result<(), DbError> {
        let mut db = self.inner.lock().expect("database lock");
        if hrdm_obs::enabled() {
            hrdm_obs::recorder().record(hrdm_obs::EventKind::CheckpointBegin, String::new());
        }
        let started = std::time::Instant::now();
        let outcome = db.checkpoint();
        if hrdm_obs::enabled() {
            let detail = match &outcome {
                Ok(()) => format!("took {:?}", started.elapsed()),
                Err(e) => format!("failed after {:?}: {e}", started.elapsed()),
            };
            hrdm_obs::recorder().record(hrdm_obs::EventKind::CheckpointEnd, detail);
        }
        outcome?;
        self.publish(&db);
        Ok(())
    }

    /// Repartitions every relation under `policy` (e.g. halving the span
    /// to split hot partitions) and republishes. Readers holding earlier
    /// snapshots keep their frozen partition maps — repartitioning is
    /// copy-on-write, like every other write (see
    /// [`Database::set_partition_policy`]).
    pub fn set_partition_policy(&self, policy: crate::partition::PartitionPolicy) {
        let mut db = self.inner.lock().expect("database lock");
        db.set_partition_policy(policy);
        self.publish(&db);
    }

    /// Exports the current state into `dir` (see [`Database::save`]).
    pub fn save(&self, dir: &Path) -> Result<(), DbError> {
        self.inner.lock().expect("database lock").save(dir)
    }

    /// Group-commit counters (batches, ops, batch sizes).
    pub fn stats(&self) -> CommitStats {
        CommitStats {
            batches: self.stats.batches.get(),
            ops: self.stats.ops.get(),
            max_batch: self.stats.max_batch.get() as usize,
            last_batch: self.stats.last_batch.get() as usize,
        }
    }

    /// Runs `f` on the underlying [`Database`] under the writer lock —
    /// for administration that has no snapshot/group-commit path (e.g.
    /// inspection of attachment state). Blocks writers while it runs.
    pub fn with_database<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        let mut db = self.inner.lock().expect("database lock");
        f(&mut db)
    }
}

impl Default for ConcurrentDatabase {
    fn default() -> ConcurrentDatabase {
        ConcurrentDatabase::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{TemporalValue, Value, ValueKind};
    use hrdm_time::Lifespan;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hrdm-conc-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn scheme() -> Scheme {
        let era = Lifespan::interval(0, 1_000_000);
        Scheme::builder()
            .key_attr("K", ValueKind::Int, era.clone())
            .attr("V", HistoricalDomain::int(), era)
            .build()
            .unwrap()
    }

    fn tup(k: i64) -> Tuple {
        let life = Lifespan::interval(0, 100);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k)))
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let db = ConcurrentDatabase::new();
        db.create_relation("r", scheme()).unwrap();
        db.insert("r", tup(1)).unwrap();
        let before = db.snapshot();
        assert_eq!(before.relation("r").unwrap().len(), 1);

        db.insert("r", tup(2)).unwrap();
        // The old snapshot still sees exactly one tuple; a fresh one sees 2.
        assert_eq!(before.relation("r").unwrap().len(), 1);
        assert_eq!(db.snapshot().relation("r").unwrap().len(), 2);
        assert!(before.version() < db.snapshot().version());
    }

    #[test]
    fn snapshot_indexes_are_frozen_with_the_relation() {
        let db = ConcurrentDatabase::new();
        db.create_relation("r", scheme()).unwrap();
        db.insert("r", tup(1)).unwrap();
        let snap = db.snapshot();
        db.insert("r", tup(2)).unwrap();

        // The snapshot's key index knows nothing of the later insert, and
        // its positions resolve against the snapshot's own tuple vector.
        let idx = snap.indexes("r").unwrap();
        assert_eq!(idx.tuple_count(), 1);
        let pos = idx.key().unwrap().lookup(&[Value::Int(1)]);
        assert_eq!(pos.len(), 1);
        assert!(snap.relation("r").unwrap().tuple_at(pos[0]).is_some());
        assert!(idx.key().unwrap().lookup(&[Value::Int(2)]).is_empty());
    }

    #[test]
    fn concurrent_writers_all_commit_and_batches_form() {
        let dir = tmp("writers");
        let db = Arc::new(ConcurrentDatabase::open(&dir).unwrap());
        db.create_relation("r", scheme()).unwrap();

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..25i64 {
                        db.insert("r", tup(t * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(db.snapshot().relation("r").unwrap().len(), 200);
        let stats = db.stats();
        assert_eq!(stats.ops, 201); // create + 200 inserts
        assert!(stats.batches <= stats.ops);
        assert!(stats.max_batch >= 1);

        // Every acknowledged write survives a reopen (durability of the
        // batched path equals the single-writer path).
        drop(db);
        let back = Database::open(&dir).unwrap();
        assert_eq!(back.relation("r").unwrap().len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_conflicts_resolve_exactly_one_winner() {
        let db = Arc::new(ConcurrentDatabase::new());
        db.create_relation("r", scheme()).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || db.insert("r", tup(42)).is_ok())
            })
            .collect();
        let wins = threads
            .into_iter()
            .map(|t| t.join().unwrap_or(false))
            .filter(|&won| won)
            .count();
        assert_eq!(wins, 1, "exactly one of 8 same-key inserts may win");
        assert_eq!(db.snapshot().relation("r").unwrap().len(), 1);
    }

    /// `write_group` returns per-op results and publishes once: a group
    /// containing a failing op still carries its valid ops through.
    #[test]
    fn write_group_is_atomic_with_per_op_results() {
        let db = ConcurrentDatabase::new();
        db.create_relation("r", scheme()).unwrap();
        db.insert("r", tup(1)).unwrap();
        let results = db.write_group(vec![
            WalRecord::Insert {
                relation: "r".to_string(),
                tuple: tup(1), // key conflict — this op fails alone
            },
            WalRecord::Insert {
                relation: "r".to_string(),
                tuple: tup(2),
            },
        ]);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert_eq!(db.snapshot().relation("r").unwrap().len(), 2);
    }

    /// Racing create-or-replace materializations of a *new* name must
    /// both succeed (create-or-replace semantics), and no reader may
    /// observe the created-but-empty intermediate relation.
    #[test]
    fn racing_materializations_both_succeed_and_hide_the_empty_state() {
        let db = Arc::new(ConcurrentDatabase::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    if let Some(r) = db.snapshot().relation("m") {
                        assert_eq!(r.len(), 1, "observed the empty intermediate state");
                    }
                }
            })
        };
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let r = Relation::with_tuples(scheme(), vec![tup(7)]).unwrap();
                    db.materialize("m", r)
                })
            })
            .collect();
        for w in writers {
            w.join()
                .unwrap()
                .expect("every racing materialize succeeds");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(db.snapshot().relation("m").unwrap().len(), 1);
    }

    #[test]
    fn checkpoint_does_not_disturb_live_snapshots() {
        let dir = tmp("ckpt");
        let db = ConcurrentDatabase::open(&dir).unwrap();
        db.create_relation("r", scheme()).unwrap();
        db.insert("r", tup(1)).unwrap();
        let old = db.snapshot();

        db.insert("r", tup(2)).unwrap();
        db.checkpoint().unwrap();

        assert_eq!(old.relation("r").unwrap().len(), 1);
        assert_eq!(old.epoch(), Some(0));
        let new = db.snapshot();
        assert_eq!(new.relation("r").unwrap().len(), 2);
        assert_eq!(new.epoch(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
