//! Fixed-size slotted pages.
//!
//! The classical layout: a header and slot directory grow from the front,
//! record cells grow from the back. Deleting a record tombstones its slot;
//! the page never moves live records (no compaction — callers rewrite pages
//! wholesale, which suits the append-mostly heap files above).

use std::fmt;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Page header bytes: slot_count: u16, free_ptr: u16, checksum: u32.
pub const PAGE_HEADER: usize = 8;
/// Slot directory entry bytes: offset: u16, len: u16.
pub const PAGE_SLOT: usize = 4;
/// Largest record an empty page can hold: everything past the header
/// minus the one slot-directory entry the record needs. This is *the*
/// capacity constant — heap-level oversize guards must use it rather
/// than re-deriving an approximation.
pub const MAX_RECORD: usize = PAGE_SIZE - PAGE_HEADER - PAGE_SLOT;

const HEADER: usize = PAGE_HEADER;
const SLOT: usize = PAGE_SLOT;

/// Index of a record within a page.
pub type SlotId = u16;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Page {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_free_ptr(PAGE_SIZE as u16);
        p
    }

    fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn set_slot_count(&mut self, v: u16) {
        self.data[0..2].copy_from_slice(&v.to_le_bytes());
    }

    fn free_ptr(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_free_ptr(&mut self, v: u16) {
        self.data[2..4].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, id: SlotId) -> (u16, u16) {
        let base = HEADER + id as usize * SLOT;
        (
            u16::from_le_bytes([self.data[base], self.data[base + 1]]),
            u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]),
        )
    }

    fn set_slot(&mut self, id: SlotId, offset: u16, len: u16) {
        let base = HEADER + id as usize * SLOT;
        self.data[base..base + 2].copy_from_slice(&offset.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Free bytes available for one more record (including its slot).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        (self.free_ptr() as usize).saturating_sub(dir_end + SLOT)
    }

    /// Number of slots (live and tombstoned).
    pub fn len(&self) -> usize {
        self.slot_count() as usize
    }

    /// Are there no slots at all?
    pub fn is_empty(&self) -> bool {
        self.slot_count() == 0
    }

    /// Inserts a record; returns its slot, or `None` when it does not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<SlotId> {
        if record.is_empty() || record.len() > u16::MAX as usize {
            return None;
        }
        if self.free_space() < record.len() {
            return None;
        }
        let id = self.slot_count();
        let offset = self.free_ptr() as usize - record.len();
        self.data[offset..offset + record.len()].copy_from_slice(record);
        self.set_slot(id, offset as u16, record.len() as u16);
        self.set_slot_count(id + 1);
        self.set_free_ptr(offset as u16);
        Some(id)
    }

    /// The record in `slot`, or `None` for out-of-range or tombstoned slots.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (offset, len) = self.slot(slot);
        if len == 0 {
            return None; // tombstone
        }
        Some(&self.data[offset as usize..offset as usize + len as usize])
    }

    /// Tombstones a slot. Returns whether the slot was live.
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (offset, len) = self.slot(slot);
        if len == 0 {
            return false;
        }
        self.set_slot(slot, offset, 0);
        true
    }

    /// Iterates live records as `(slot, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |id| self.get(id).map(|r| (id, r)))
    }

    /// Stamps the header checksum (CRC-32 of everything but the checksum
    /// field). Call before writing the page out.
    pub fn seal(&mut self) {
        self.data[4..8].copy_from_slice(&[0; 4]);
        let crc = crc32(&self.data[..]);
        self.data[4..8].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verifies the header checksum set by [`Page::seal`].
    pub fn verify(&self) -> bool {
        let stored = u32::from_le_bytes([self.data[4], self.data[5], self.data[6], self.data[7]]);
        let mut copy = self.data.clone();
        copy[4..8].copy_from_slice(&[0; 4]);
        crc32(&copy[..]) == stored
    }

    /// The raw page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw page bytes, for callers that impose their own layout on
    /// a page (the on-disk B+tree nodes). Bytes `[4..8)` remain reserved
    /// for the [`Page::seal`] checksum; raw-layout users must leave them
    /// zero and let the buffer pool seal/verify on write-back/fault.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Reconstructs a page from raw bytes.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Page {
        Page {
            data: Box::new(bytes),
        }
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Page {{ slots: {}, free: {} }}",
            self.slot_count(),
            self.free_space()
        )
    }
}

/// Plain table-driven CRC-32 (IEEE).
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn rejects_empty_and_oversized() {
        let mut p = Page::new();
        assert!(p.insert(b"").is_none());
        let big = vec![0u8; PAGE_SIZE];
        assert!(p.insert(&big).is_none());
    }

    #[test]
    fn fills_up_and_reports_no_space() {
        let mut p = Page::new();
        let rec = [7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8 records × (1000 + 4 slot bytes) + header ≈ 8040 < 8192.
        assert_eq!(n, 8);
        assert!(p.free_space() < 1000);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = Page::new();
        let a = p.insert(b"one").unwrap();
        let b = p.insert(b"two").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a)); // already dead
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"two"[..]));
        let live: Vec<SlotId> = p.iter().map(|(id, _)| id).collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn out_of_range_slots() {
        let p = Page::new();
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(99), None);
    }

    #[test]
    fn seal_and_verify() {
        let mut p = Page::new();
        p.insert(b"persistent data").unwrap();
        p.seal();
        assert!(p.verify());
        // Corrupt one byte: verification fails.
        let mut bytes = *p.bytes();
        bytes[PAGE_SIZE - 1] ^= 0xff;
        assert!(!Page::from_bytes(bytes).verify());
    }

    #[test]
    fn round_trip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"alpha").unwrap();
        p.insert(b"beta").unwrap();
        p.seal();
        let q = Page::from_bytes(*p.bytes());
        assert!(q.verify());
        assert_eq!(q.get(0), Some(&b"alpha"[..]));
        assert_eq!(q.get(1), Some(&b"beta"[..]));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE reference value).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_exactly_at_capacity_fits() {
        let mut p = Page::new();
        let rec = vec![0xabu8; MAX_RECORD];
        let slot = p.insert(&rec).expect("MAX_RECORD must fit an empty page");
        assert_eq!(p.get(slot), Some(&rec[..]));
        assert_eq!(p.free_space(), 0);
        // One byte more than capacity must be refused.
        let mut q = Page::new();
        assert!(q.insert(&vec![0u8; MAX_RECORD + 1]).is_none());
    }

    #[test]
    fn slot_directory_growth_collides_with_free_pointer() {
        // Tiny records: the slot directory (front) and cells (back) must
        // meet without overlapping. 1-byte record costs 1 + SLOT bytes.
        let mut p = Page::new();
        let mut n = 0usize;
        while p.insert(&[n as u8]).is_some() {
            n += 1;
        }
        assert_eq!(n, (PAGE_SIZE - HEADER) / (1 + SLOT));
        // Directory end never crosses the free pointer.
        let dir_end = HEADER + p.len() * SLOT;
        assert!(dir_end <= p.free_ptr() as usize);
        // Every record still reads back intact.
        for id in 0..n {
            assert_eq!(p.get(id as SlotId), Some(&[id as u8][..]));
        }
    }

    #[test]
    fn tombstones_survive_seal_and_reconstruct() {
        let mut p = Page::new();
        let a = p.insert(b"keep").unwrap();
        let b = p.insert(b"kill").unwrap();
        let c = p.insert(b"keep2").unwrap();
        assert!(p.delete(b));
        p.seal();
        let q = Page::from_bytes(*p.bytes());
        assert!(q.verify());
        assert_eq!(q.len(), 3); // slots, live + tombstoned
        assert_eq!(q.get(a), Some(&b"keep"[..]));
        assert_eq!(q.get(b), None);
        assert_eq!(q.get(c), Some(&b"keep2"[..]));
        assert_eq!(q.iter().count(), 2);
    }

    #[test]
    fn verify_fails_after_post_seal_mutation() {
        let mut p = Page::new();
        p.insert(b"stable").unwrap();
        p.seal();
        assert!(p.verify());
        // Mutating through the normal API after seal invalidates the CRC.
        p.insert(b"sneaky").unwrap();
        assert!(!p.verify());
        // Tombstoning after seal invalidates it too.
        let mut q = Page::new();
        let s = q.insert(b"doomed").unwrap();
        q.seal();
        q.delete(s);
        assert!(!q.verify());
    }
}
