//! Concurrency tests for the snapshot-isolated reader / group-commit
//! writer model: readers must only ever observe **prefix-consistent**
//! snapshots (the result of the first `k` commits, for some `k`, never a
//! subset with holes), snapshots must survive checkpoints and WAL
//! rotation untouched, and the whole query pipeline must agree with the
//! storage-level view.

use hrdm_core::prelude::*;
use hrdm_storage::{ConcurrentDatabase, Database};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-conctest-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 1000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

/// The keys a snapshot's relation holds, as a sorted set.
fn observed_keys(snap: &hrdm_storage::DbSnapshot) -> BTreeSet<i64> {
    snap.relation("r")
        .map(|r| {
            r.iter()
                .map(|t| match t.key_values(r.scheme()).unwrap()[0] {
                    Value::Int(k) => k,
                    ref other => panic!("non-int key {other:?}"),
                })
                .collect()
        })
        .unwrap_or_default()
}

/// One writer inserts keys `0, 1, 2, …` in order; readers racing with it
/// must only ever see a **contiguous prefix** `{0, …, len-1}` — the
/// single-writer form of prefix consistency, checked deterministically
/// (the oracle is exact, not statistical).
#[test]
fn readers_observe_contiguous_prefixes_of_a_sequential_writer() {
    const N: i64 = 300;
    let db = Arc::new(ConcurrentDatabase::new());
    db.create_relation("r", scheme()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut last_len = 0usize;
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let keys = observed_keys(&snap);
                    let len = keys.len();
                    // Contiguity: exactly the keys 0..len.
                    assert_eq!(
                        keys,
                        (0..len as i64).collect::<BTreeSet<i64>>(),
                        "snapshot is not a contiguous prefix"
                    );
                    // Monotonicity across successive snapshots.
                    assert!(snap.version() >= last_version, "version went backwards");
                    assert!(len >= last_len, "observed state went backwards");
                    last_version = snap.version();
                    last_len = len;
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    for k in 0..N {
        db.insert("r", tup(k)).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checks > 0, "readers never got to observe anything");
    assert_eq!(observed_keys(&db.snapshot()).len(), N as usize);
}

/// A reader holding a pre-checkpoint snapshot still scans correctly after
/// `checkpoint()` rotates epochs and deletes the old WAL — deterministic
/// coverage for concurrent reads during checkpoint.
#[test]
fn pre_checkpoint_snapshot_scans_correctly_after_epoch_rotation() {
    let dir = tmp("ckpt-snapshot");
    let db = ConcurrentDatabase::open(&dir).unwrap();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..50 {
        db.insert("r", tup(k)).unwrap();
    }
    let old = db.snapshot();
    assert_eq!(old.epoch(), Some(0));

    // Rotate: writes + checkpoint move the database to epoch 1 and delete
    // `wal.0.log` out from under the old snapshot.
    for k in 50..80 {
        db.insert("r", tup(k)).unwrap();
    }
    db.checkpoint().unwrap();
    assert!(!dir.join("wal.0.log").exists(), "old WAL must be gone");
    assert!(dir.join("wal.1.log").exists());

    // The old snapshot still scans its 50 tuples — storage-level…
    assert_eq!(observed_keys(&old), (0..50).collect::<BTreeSet<i64>>());
    // …and through its frozen index, position for position.
    let idx = old.indexes("r").unwrap();
    assert_eq!(idx.tuple_count(), 50);
    let pos = idx.key().unwrap().lookup(&[Value::Int(17)]);
    assert_eq!(pos.len(), 1);
    let t = old.relation("r").unwrap().tuple_at(pos[0]).unwrap();
    assert_eq!(
        t.key_values(old.relation("r").unwrap().scheme()).unwrap(),
        vec![Value::Int(17)]
    );
    // The live database sees all 80, before and after reopen.
    assert_eq!(observed_keys(&db.snapshot()).len(), 80);
    drop(db);
    let back = Database::open(&dir).unwrap();
    assert_eq!(back.relation("r").unwrap().len(), 80);
    std::fs::remove_dir_all(&dir).ok();
}

// Insert-only multi-writer interleavings: whatever the thread schedule,
// every reader observation must be a *join-closed* state — versions
// monotone per reader, observed key sets monotone per reader (no write
// ever retracted), and the final state exactly the union of all
// acknowledged writes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn interleaved_writers_never_show_torn_or_retracted_state(
        seed in 0u64..1000,
        writers in 2usize..5,
        per_writer in 5usize..20,
    ) {
        let db = Arc::new(ConcurrentDatabase::new());
        db.create_relation("r", scheme()).unwrap();
        let stop = Arc::new(AtomicBool::new(false));

        let reader = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                let mut last_keys: BTreeSet<i64> = BTreeSet::new();
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let keys = observed_keys(&snap);
                    assert!(snap.version() >= last_version, "version went backwards");
                    assert!(
                        last_keys.is_subset(&keys),
                        "a previously-observed write was retracted"
                    );
                    last_version = snap.version();
                    last_keys = keys;
                }
            })
        };

        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        // Disjoint key ranges per writer; the seed varies
                        // the arrival pattern a little via spin yields.
                        let k = (w as i64) * 10_000 + i as i64;
                        if (seed + i as u64).is_multiple_of(3) {
                            std::thread::yield_now();
                        }
                        db.insert("r", tup(k)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();

        let expected: BTreeSet<i64> = (0..writers)
            .flat_map(|w| (0..per_writer).map(move |i| (w as i64) * 10_000 + i as i64))
            .collect();
        prop_assert_eq!(observed_keys(&db.snapshot()), expected);
        let stats = db.stats();
        prop_assert_eq!(stats.ops, (writers * per_writer) as u64 + 1);
    }
}

/// Racing readers hold pre-repartition snapshots while the writer splits
/// a hot partition (halving the span): every reader observation must stay
/// prefix-consistent, and a frozen snapshot's partition map must keep
/// answering pruning queries with positions valid against that snapshot's
/// own tuple vector — repartitioning is copy-on-write, never in-place.
#[test]
fn readers_keep_frozen_partition_maps_across_a_repartition() {
    use hrdm_storage::PartitionPolicy;
    const N: i64 = 400;
    let db = Arc::new(ConcurrentDatabase::new());
    db.set_partition_policy(PartitionPolicy::SpanLog2(8)); // span 256: hot
    db.create_relation("r", scheme()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_len = 0usize;
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let keys = observed_keys(&snap);
                    let len = keys.len();
                    assert_eq!(
                        keys,
                        (0..len as i64).collect::<BTreeSet<i64>>(),
                        "snapshot is not a contiguous prefix"
                    );
                    assert!(len >= last_len, "observed state went backwards");
                    last_len = len;

                    // The snapshot's frozen partition map: its position
                    // count matches the snapshot's relation exactly, and
                    // its pruned candidates agree with a linear scan of
                    // the same snapshot — whatever the live policy is by
                    // now.
                    let r = snap.relation("r").unwrap();
                    let parts = snap.partitions("r").unwrap();
                    assert_eq!(parts.tuple_count(), r.len(), "stale map published");
                    let w = Lifespan::interval(100, 400);
                    let expect: Vec<usize> = r
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.lifespan().intersects(&w))
                        .map(|(i, _)| i)
                        .collect();
                    assert_eq!(parts.prune_positions(&w), expect, "frozen map diverged");
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    for k in 0..N {
        db.insert("r", tup(k)).unwrap();
        if k == N / 2 {
            // Split the hot partitions: span 256 → 32 while readers race.
            db.set_partition_policy(PartitionPolicy::SpanLog2(5));
        }
    }
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(checks > 0, "readers never observed anything");

    // A snapshot taken before a *further* repartition keeps its map while
    // the live database's map changes shape under it.
    let before = db.snapshot();
    let shape_before = before.partitions("r").unwrap().partition_count();
    db.set_partition_policy(PartitionPolicy::SpanLog2(2));
    assert_eq!(
        before.partitions("r").unwrap().partition_count(),
        shape_before,
        "repartition mutated a published snapshot's map"
    );
    assert!(
        db.snapshot().partitions("r").unwrap().partition_count() > shape_before,
        "splitting the span must grow the live partition count"
    );
}

/// Recovery after concurrent group-committed writers equals the in-memory
/// state at shutdown: the batched WAL frames replay to exactly the set of
/// acknowledged writes (the crash-safety invariant of PR 2, preserved by
/// the group-commit writer).
#[test]
fn group_committed_writes_recover_exactly() {
    let dir = tmp("group-recovery");
    {
        let db = Arc::new(ConcurrentDatabase::open(&dir).unwrap());
        db.create_relation("r", scheme()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..30i64 {
                        db.insert("r", tup(w * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Dropped without a checkpoint: recovery replays the batched WAL.
    }
    let back = Database::open(&dir).unwrap();
    let expected: BTreeSet<i64> = (0..4)
        .flat_map(|w| (0..30).map(move |i| w * 1000 + i))
        .collect();
    let got: BTreeSet<i64> = back
        .relation("r")
        .unwrap()
        .iter()
        .map(|t| match t.key_values(&scheme()).unwrap()[0] {
            Value::Int(k) => k,
            ref other => panic!("non-int key {other:?}"),
        })
        .collect();
    assert_eq!(got, expected);
    std::fs::remove_dir_all(&dir).ok();
}
