//! Property tests: the binary codec round-trips every model object exactly,
//! and never panics on corrupted input.

use hrdm_core::prelude::*;
use hrdm_storage::{Decoder, Encoder};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(|f| Value::float(f).expect("finite")),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::time),
    ]
}

fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((-500i64..500, 0i64..40), 0..6).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, lo + len)),
        )
    })
}

fn temporal_strategy() -> impl Strategy<Value = TemporalValue> {
    prop::collection::vec(((0i64..200), 0i64..10, value_strategy()), 0..6).prop_map(|raw| {
        let mut segs = Vec::new();
        let mut cursor = 0i64;
        let mut sorted = raw;
        sorted.sort_by_key(|(lo, _, _)| *lo);
        for (lo, len, v) in sorted {
            let lo = lo.max(cursor);
            let hi = lo + len;
            segs.push((Interval::of(lo, hi), v));
            cursor = hi + 2;
        }
        TemporalValue::from_segments(segs).expect("disjoint by construction")
    })
}

proptest! {
    #[test]
    fn value_round_trip(v in value_strategy()) {
        let mut e = Encoder::new();
        e.put_value(&v);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(d.get_value().unwrap(), v);
        prop_assert!(d.is_done());
    }

    #[test]
    fn lifespan_round_trip(ls in lifespan_strategy()) {
        let mut e = Encoder::new();
        e.put_lifespan(&ls);
        let bytes = e.finish();
        prop_assert_eq!(Decoder::new(&bytes).get_lifespan().unwrap(), ls);
    }

    #[test]
    fn temporal_value_round_trip(tv in temporal_strategy()) {
        let mut e = Encoder::new();
        e.put_temporal_value(&tv);
        let bytes = e.finish();
        prop_assert_eq!(Decoder::new(&bytes).get_temporal_value().unwrap(), tv);
    }

    #[test]
    fn varints_round_trip(u in any::<u64>(), i in any::<i64>()) {
        let mut e = Encoder::new();
        e.put_u64(u);
        e.put_i64(i);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        prop_assert_eq!(d.get_u64().unwrap(), u);
        prop_assert_eq!(d.get_i64().unwrap(), i);
    }

    #[test]
    fn truncated_input_errors_not_panics(tv in temporal_strategy(), cut_frac in 0.0f64..1.0) {
        let mut e = Encoder::new();
        e.put_temporal_value(&tv);
        let bytes = e.finish();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            // Must return an error (or, for prefix-complete cuts, a value) —
            // but never panic.
            let _ = Decoder::new(&bytes[..cut]).get_temporal_value();
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut d = Decoder::new(&bytes);
        let _ = d.get_value();
        let mut d = Decoder::new(&bytes);
        let _ = d.get_lifespan();
        let mut d = Decoder::new(&bytes);
        let _ = d.get_temporal_value();
        let mut d = Decoder::new(&bytes);
        let _ = d.get_scheme();
        let mut d = Decoder::new(&bytes);
        let _ = d.get_tuple();
    }

    #[test]
    fn tuple_round_trip(life in lifespan_strategy(), tv in temporal_strategy()) {
        let mut values = std::collections::BTreeMap::new();
        values.insert(Attribute::new("A"), tv);
        let t = Tuple::from_parts(life, values);
        let mut e = Encoder::new();
        e.put_tuple(&t);
        let bytes = e.finish();
        prop_assert_eq!(Decoder::new(&bytes).get_tuple().unwrap(), t);
    }
}
