//! Out-of-core acceptance tests: a [`PagedDatabase`] must materialize
//! byte-identical relations to the eager loader while reading through a
//! bounded buffer pool, and a windowed open must *provably* never touch
//! partitions whose summaries exclude the window.

use hrdm_core::prelude::*;
use hrdm_storage::{
    BufferPool, Database, DbError, PagedDatabase, PartitionPolicy, WalRecord, PAGE_SIZE,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-paged-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

const T_MAX: i64 = 1 << 20;

fn scheme() -> Scheme {
    Scheme::builder()
        .key_attr("K", ValueKind::Int, Lifespan::interval(0, T_MAX))
        .attr("V", HistoricalDomain::int(), Lifespan::interval(0, T_MAX))
        .build()
        .unwrap()
}

fn tup(k: i64, lo: i64, hi: i64) -> Tuple {
    let life = Lifespan::interval(lo, hi);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k * 10)))
        .finish(&scheme())
        .unwrap()
}

/// A checkpointed database with `n` tuples spread over many 4096-chronon
/// partitions: tuple `k` lives in `[k·37 mod T, +25]`.
fn seed_db(dir: &std::path::Path, n: i64) {
    let mut db = Database::open(dir).unwrap();
    db.set_partition_policy(PartitionPolicy::SpanLog2(12));
    db.create_relation("emp", scheme()).unwrap();
    let ops: Vec<WalRecord> = (0..n)
        .map(|k| {
            let lo = (k * 37) % (T_MAX - 30);
            WalRecord::Insert {
                relation: "emp".into(),
                tuple: tup(k, lo, lo + 25),
            }
        })
        .collect();
    for r in db.commit_batch(ops) {
        r.unwrap();
    }
    db.checkpoint().unwrap();
}

#[test]
fn full_snapshot_matches_eager_load() {
    let dir = tmp("full");
    seed_db(&dir, 300);
    let eager = Database::load(&dir).unwrap();
    let paged = PagedDatabase::open(&dir).unwrap();
    let snap = paged.snapshot().unwrap();
    assert_eq!(
        snap.relation("emp").unwrap(),
        eager.relation("emp").unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_snapshot_matches_filtered_eager_load() {
    let dir = tmp("windowed");
    seed_db(&dir, 300);
    let eager = Database::load(&dir).unwrap();
    let paged = PagedDatabase::open(&dir).unwrap();
    for (lo, hi) in [(0, 100), (5_000, 9_000), (T_MAX - 200, T_MAX), (7, 7)] {
        let w = Lifespan::interval(lo, hi);
        let snap = paged.window_snapshot(Some(&w)).unwrap();
        let want: Vec<Tuple> = eager
            .relation("emp")
            .unwrap()
            .iter()
            .filter(|t| t.lifespan().intersects(&w))
            .cloned()
            .collect();
        let got: Vec<Tuple> = snap.relation("emp").unwrap().iter().cloned().collect();
        assert_eq!(got, want, "window [{lo}, {hi}]");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole witness: a narrow window opens only the partitions its
/// chronons can live in; every other partition's heap stays cold — not
/// merely unread, never even *opened* — and the pool faults stay bounded
/// by the opened partitions' sizes.
#[test]
fn narrow_window_leaves_cold_partitions_untouched() {
    let dir = tmp("cold");
    seed_db(&dir, 2_000);
    let pool = BufferPool::new(8);
    let paged = PagedDatabase::open_with_pool(&dir, Arc::clone(&pool)).unwrap();
    let total_parts = paged.partition_map("emp").unwrap().iter().count();
    assert!(total_parts > 10, "need many partitions, got {total_parts}");

    let w = Lifespan::interval(0, 4_000); // ≈ one 4096-chronon partition
    let before = pool.stats();
    let snap = paged.window_snapshot(Some(&w)).unwrap();
    let after = pool.stats();

    assert!(!snap.relation("emp").unwrap().is_empty());
    let opened = paged.opened_partitions("emp");
    assert!(
        opened.len() <= 2,
        "a 4000-chronon window must open ≤ 2 span-4096 partitions, opened {opened:?}"
    );
    // Faults are bounded by opened heaps + the B+tree — far below the
    // whole relation (2000 tuples ≫ 8-frame pool; a full scan would
    // fault hundreds of pages through this pool).
    let faulted = after.misses - before.misses;
    assert!(
        faulted <= 16,
        "narrow window faulted {faulted} pages; cold partitions were read"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_tail_inserts_are_visible() {
    let dir = tmp("tail");
    seed_db(&dir, 100);
    {
        let mut db = Database::open(&dir).unwrap();
        for k in 100..140 {
            let lo = (k * 37) % (T_MAX - 30);
            db.insert("emp", tup(k, lo, lo + 25)).unwrap();
        }
        // No checkpoint: the last 40 tuples live only in the WAL tail.
    }
    let eager = Database::load(&dir).unwrap();
    let paged = PagedDatabase::open(&dir).unwrap();
    assert_eq!(paged.tuple_count("emp"), Some(140));
    let snap = paged.snapshot().unwrap();
    assert_eq!(
        snap.relation("emp").unwrap(),
        eager.relation("emp").unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tail_created_relation_is_visible() {
    let dir = tmp("tail-create");
    seed_db(&dir, 50);
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("dept", scheme()).unwrap();
        db.insert("dept", tup(1, 10, 40)).unwrap();
    }
    let paged = PagedDatabase::open(&dir).unwrap();
    assert_eq!(paged.tuple_count("dept"), Some(1));
    let snap = paged.snapshot().unwrap();
    assert_eq!(snap.relation("dept").unwrap().len(), 1);
    // Windowing applies to the tail too.
    let w = Lifespan::interval(500, 600);
    let snap = paged.window_snapshot(Some(&w)).unwrap();
    assert!(snap.relation("dept").unwrap().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_without_checkpoint_is_a_mode_error() {
    let dir = tmp("no-checkpoint");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        // Dropped without checkpoint: WAL only, no catalog.
    }
    match PagedDatabase::open(&dir) {
        Err(DbError::Mode(msg)) => assert!(msg.contains("checkpoint"), "{msg}"),
        other => panic!("expected Mode error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heavy_wal_tail_is_a_mode_error() {
    let dir = tmp("heavy-tail");
    seed_db(&dir, 20);
    {
        let mut db = Database::open(&dir).unwrap();
        db.put_relation("emp", {
            let mut r = Relation::new(scheme());
            r.insert(tup(1, 0, 10)).unwrap();
            r
        })
        .unwrap();
        // Dropped without checkpoint: the tail holds a PutRelation.
    }
    match PagedDatabase::open(&dir) {
        Err(DbError::Mode(msg)) => assert!(msg.contains("checkpoint"), "{msg}"),
        other => panic!("expected Mode error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Correctness is pool-size independent: a pool far smaller than the
/// data (forcing eviction mid-materialization) yields the same bytes.
#[test]
fn tiny_pool_forces_eviction_without_corruption() {
    let dir = tmp("tiny-pool");
    seed_db(&dir, 1_500);
    let eager = Database::load(&dir).unwrap();
    let pool = BufferPool::new(2);
    let paged = PagedDatabase::open_with_pool(&dir, Arc::clone(&pool)).unwrap();
    let snap = paged.snapshot().unwrap();
    assert_eq!(
        snap.relation("emp").unwrap(),
        eager.relation("emp").unwrap()
    );
    assert!(
        pool.stats().evictions > 0,
        "a 2-frame pool must evict while materializing 1500 tuples"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Scaled-down acceptance run (the 10M-tuple version is `#[ignore]`d
/// below): 200k tuples under a pool capped well below the relation's
/// footprint, windowed open, zero cold faults.
#[test]
fn acceptance_200k_windowed_under_small_pool() {
    let dir = tmp("acc-200k");
    let n: i64 = 200_000;
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(12));
        db.create_relation("emp", scheme()).unwrap();
        // Batches keep the WAL fsync count (and test runtime) sane.
        for chunk in 0..(n / 10_000) {
            let ops: Vec<WalRecord> = (chunk * 10_000..(chunk + 1) * 10_000)
                .map(|k| {
                    let lo = (k * 37) % (T_MAX - 30);
                    WalRecord::Insert {
                        relation: "emp".into(),
                        tuple: tup(k, lo, lo + 25),
                    }
                })
                .collect();
            for r in db.commit_batch(ops) {
                r.unwrap();
            }
        }
        db.checkpoint().unwrap();
    }

    let pool = BufferPool::new(64); // 512 KiB of 8 KiB frames
    let paged = PagedDatabase::open_with_pool(&dir, Arc::clone(&pool)).unwrap();
    assert_eq!(paged.tuple_count("emp"), Some(n as usize));

    let w = Lifespan::interval(8_192, 12_000); // within one partition
    let before = pool.stats();
    let snap = paged.window_snapshot(Some(&w)).unwrap();
    let after = pool.stats();

    let rel = snap.relation("emp").unwrap();
    assert!(!rel.is_empty());
    for t in rel.iter() {
        assert!(t.lifespan().intersects(&w));
    }
    let opened = paged.opened_partitions("emp");
    let total = paged.partition_map("emp").unwrap().iter().count();
    assert!(
        opened.len() * 8 < total,
        "opened {} of {total} partitions for a one-partition window",
        opened.len()
    );
    // Fault budget: the opened partitions' heap pages + B+tree pages.
    // 200k tuples ≈ 780+ heap pages total; a window over 1/256th of the
    // chronon domain must fault a small fraction of that.
    let faulted = (after.misses - before.misses) as usize;
    let total_heap_pages = n as usize / 10; // ~80 B/record ⇒ ~100/page
    assert!(
        faulted * 8 < total_heap_pages,
        "windowed open faulted {faulted} pages of ~{total_heap_pages}"
    );
    assert!(
        after.resident <= 64,
        "resident {} frames exceeds the 64-frame cap",
        after.resident
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The full-scale acceptance criterion: a 10M-tuple relation queryable
/// with partition pruning under a 256 MiB pool cap. Run explicitly:
/// `cargo test -p hrdm-storage --test paged --release -- --ignored`.
#[test]
#[ignore = "multi-GiB, minutes-long; run explicitly in release mode"]
fn acceptance_10m_windowed_under_256mib_pool() {
    let dir = tmp("acc-10m");
    let n: i64 = 10_000_000;
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(12));
        db.create_relation("emp", scheme()).unwrap();
        for chunk in 0..(n / 50_000) {
            let ops: Vec<WalRecord> = (chunk * 50_000..(chunk + 1) * 50_000)
                .map(|k| {
                    let lo = (k * 37) % (T_MAX - 30);
                    WalRecord::Insert {
                        relation: "emp".into(),
                        tuple: tup(k, lo, lo + 25),
                    }
                })
                .collect();
            for r in db.commit_batch(ops) {
                r.unwrap();
            }
        }
        db.checkpoint().unwrap();
    }

    let cap = (256 << 20) / PAGE_SIZE; // the default 256 MiB budget
    let pool = BufferPool::new(cap);
    let paged = PagedDatabase::open_with_pool(&dir, Arc::clone(&pool)).unwrap();
    let w = Lifespan::interval(8_192, 12_287);
    let snap = paged.window_snapshot(Some(&w)).unwrap();
    let rel = snap.relation("emp").unwrap();
    assert!(!rel.is_empty());
    for t in rel.iter() {
        assert!(t.lifespan().intersects(&w));
    }
    let after = pool.stats();
    assert!(after.resident <= cap);
    let opened = paged.opened_partitions("emp");
    let total = paged.partition_map("emp").unwrap().iter().count();
    assert!(opened.len() * 16 < total);
    std::fs::remove_dir_all(&dir).ok();
}
