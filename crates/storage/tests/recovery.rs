//! Crash-injection tests for the durable attached mode: a kill at any
//! instant — mid-write, mid-checkpoint, with a torn WAL tail — must leave
//! a database that `Database::open` recovers without losing an
//! acknowledged write.

use hrdm_core::prelude::*;
use hrdm_storage::{Database, Wal, WalRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-recovery-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn scheme() -> Scheme {
    Scheme::builder()
        .key_attr("K", ValueKind::Int, Lifespan::interval(0, 100))
        .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 100))
        .build()
        .unwrap()
}

fn tup(k: i64, lo: i64, hi: i64) -> Tuple {
    let life = Lifespan::interval(lo, hi);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k * 10)))
        .finish(&scheme())
        .unwrap()
}

/// The single WAL file of the directory (there is exactly one per epoch).
fn wal_file(dir: &Path) -> PathBuf {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("wal.") && name.ends_with(".log")
        })
        .collect();
    assert_eq!(found.len(), 1, "exactly one WAL per epoch");
    found.pop().unwrap()
}

/// Acceptance scenario 1: insert → process "kill" (no checkpoint) →
/// `Database::open` recovers the inserted tuples from the WAL alone.
#[test]
fn kill_without_checkpoint_recovers_from_wal() {
    let dir = tmp("no-checkpoint");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        for k in 0..50 {
            db.insert("emp", tup(k, k, k + 20)).unwrap();
        }
        // Simulated kill: drop without checkpoint or save. Every insert
        // was fsync'd to the WAL before it was acknowledged.
    }
    let back = Database::open(&dir).unwrap();
    let rel = back.relation("emp").expect("relation recovered");
    assert_eq!(rel.len(), 50);
    assert_eq!(rel.tuples()[17], tup(17, 17, 37));
    // The recovered database has live indexes for the planner.
    assert_eq!(back.indexes("emp").unwrap().tuple_count(), 50);
    std::fs::remove_dir_all(dir).ok();
}

/// Acceptance scenario 2a: a kill *before* the checkpoint's commit point
/// (the catalog rename) leaves the old epoch fully intact — debris of the
/// aborted checkpoint (new-epoch heap files, some torn) is ignored.
#[test]
fn kill_mid_checkpoint_before_commit_keeps_old_epoch() {
    let dir = tmp("mid-checkpoint-pre");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.insert("emp", tup(2, 5, 30)).unwrap();
    }
    // Fabricate the moment just before the commit rename: new-epoch files
    // exist (one of them torn mid-write), the catalog still says epoch 0.
    std::fs::write(dir.join("emp.1.heap"), b"partial garbage, not a page").unwrap();
    std::fs::write(dir.join("wal.1.log"), b"").unwrap();
    std::fs::write(dir.join("catalog.hrdm.tmp"), b"half a catal").unwrap();

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.epoch(), Some(0));
    assert_eq!(back.relation("emp").unwrap().len(), 2);
    // The debris was swept.
    assert!(!dir.join("emp.1.heap").exists());
    assert!(!dir.join("catalog.hrdm.tmp").exists());
    std::fs::remove_dir_all(dir).ok();
}

/// Acceptance scenario 2b: a kill *after* the commit point but before the
/// old epoch's files are swept — both generations on disk, the new catalog
/// must win and the old WAL must not be replayed (no double-apply).
#[test]
fn kill_mid_checkpoint_after_commit_uses_new_epoch() {
    let dir = tmp("mid-checkpoint-post");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.checkpoint().unwrap();
        assert_eq!(db.epoch(), Some(1));
    }
    // Resurrect plausible old-epoch debris: a WAL that would double-apply
    // the insert if it were (wrongly) replayed, and a stale heap file.
    {
        let mut old_wal = Wal::open(&dir.join("wal.0.log")).unwrap();
        old_wal
            .append(&WalRecord::CreateRelation {
                name: "emp".into(),
                scheme: scheme(),
            })
            .unwrap();
        old_wal
            .append(&WalRecord::Insert {
                relation: "emp".into(),
                tuple: tup(1, 0, 10),
            })
            .unwrap();
    }
    std::fs::write(dir.join("emp.0.heap"), b"stale").unwrap();

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.epoch(), Some(1));
    assert_eq!(back.relation("emp").unwrap().len(), 1);
    assert!(
        !dir.join("wal.0.log").exists(),
        "old WAL swept, not replayed"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// A torn final WAL record (the classic kill-mid-append) is truncated away
/// on open; everything before it survives, and the database keeps working.
#[test]
fn torn_wal_tail_recovers_prefix_at_every_cut() {
    let dir = tmp("torn-tail");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        for k in 0..10 {
            db.insert("emp", tup(k, 0, 10 + k)).unwrap();
        }
    }
    let wal = wal_file(&dir);
    let full = std::fs::read(&wal).unwrap();
    // Cut the log at a spread of byte offsets; each cut must recover a
    // *prefix* of the inserts (0..=10 tuples), never an error.
    for cut in [full.len() - 1, full.len() - 7, full.len() / 2, 40, 9, 1] {
        let case = tmp("torn-cut");
        std::fs::create_dir_all(&case).unwrap();
        std::fs::write(case.join("wal.0.log"), &full[..cut]).unwrap();
        let back = Database::open(&case).unwrap();
        let n = back.relation("emp").map_or(0, Relation::len);
        assert!(n <= 10, "cut {cut}: {n} tuples");
        for (i, t) in back
            .relation("emp")
            .map(Relation::tuples)
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            assert_eq!(t, &tup(i as i64, 0, 10 + i as i64), "cut {cut} prefix");
        }
        // The truncation healed the log: a reopen changes nothing.
        drop(back);
        let again = Database::open(&case).unwrap();
        assert_eq!(again.relation("emp").map_or(0, Relation::len), n);
        std::fs::remove_dir_all(case).ok();
    }
    std::fs::remove_dir_all(dir).ok();
}

/// Writes after recovery-from-torn-tail land cleanly on the healed log.
#[test]
fn writes_continue_after_torn_tail_recovery() {
    let dir = tmp("torn-then-write");
    {
        let mut db = Database::open(&dir).unwrap();
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.insert("emp", tup(2, 0, 10)).unwrap();
    }
    let wal = wal_file(&dir);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let mut back = Database::open(&dir).unwrap();
    assert_eq!(back.relation("emp").unwrap().len(), 1, "tuple 2 torn away");
    // Key 2 is free again (its insert was never durable) — rewrite it.
    back.insert("emp", tup(2, 5, 15)).unwrap();
    back.insert("emp", tup(3, 0, 10)).unwrap();
    drop(back);
    let again = Database::open(&dir).unwrap();
    assert_eq!(again.relation("emp").unwrap().len(), 3);
    std::fs::remove_dir_all(dir).ok();
}

// ---------------------------------------------------------------------------
// Partition-aware crash injection: checkpoints now write one heap file per
// chronon-range partition and rewrite only the dirty ones, so the
// interesting kills are mid-checkpoint with a *partial* set of new-epoch
// partition files on disk, torn per-partition files, and partition maps
// that changed between epochs.
// ---------------------------------------------------------------------------

/// A kill mid-checkpoint after only *some* dirty partitions were rewritten
/// (one of them torn mid-write): the catalog still names the old epoch, so
/// recovery must serve the old epoch untouched and sweep the debris.
#[test]
fn kill_mid_checkpoint_with_partially_rewritten_partitions() {
    let dir = tmp("partial-partitions");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(hrdm_storage::PartitionPolicy::SpanLog2(4)); // span 16
        db.create_relation("emp", scheme()).unwrap();
        // Three partitions: births at 0, 20, 40.
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.insert("emp", tup(2, 20, 30)).unwrap();
        db.insert("emp", tup(3, 40, 50)).unwrap();
        db.checkpoint().unwrap();
        db.insert("emp", tup(4, 1, 9)).unwrap(); // dirties partition 0 only
    }
    // Fabricate the kill: epoch-2 files for *some* partitions exist — one
    // complete-looking, one torn mid-write — and the catalog still says
    // epoch 1.
    std::fs::copy(dir.join("emp.1.p1.heap"), dir.join("emp.2.p1.heap")).unwrap();
    std::fs::write(dir.join("emp.2.p0.heap"), b"torn partition heap").unwrap();
    std::fs::write(dir.join("emp.2.p0.heap.tmp"), b"half").unwrap();

    let back = Database::open(&dir).unwrap();
    assert_eq!(back.epoch(), Some(1));
    assert_eq!(back.relation("emp").unwrap().len(), 4, "WAL tail replayed");
    // Pre-commit debris of the aborted checkpoint was swept.
    assert!(!dir.join("emp.2.p0.heap").exists());
    assert!(!dir.join("emp.2.p1.heap").exists());
    assert!(!dir.join("emp.2.p0.heap.tmp").exists());
    std::fs::remove_dir_all(dir).ok();
}

/// A torn *committed* partition heap file is real corruption (everything
/// under the catalog's epoch was fsync'd before the commit rename), so
/// open must fail loudly, naming the offending file — never half-load.
#[test]
fn torn_committed_partition_heap_fails_loudly() {
    let dir = tmp("torn-committed-partition");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(hrdm_storage::PartitionPolicy::SpanLog2(4));
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.insert("emp", tup(2, 20, 30)).unwrap();
        db.checkpoint().unwrap();
    }
    let victim = dir.join("emp.1.p1.heap");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let err = match Database::open(&dir) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("torn committed partition file must not load"),
    };
    assert!(
        err.contains("emp.1.p1.heap"),
        "error must name the torn partition file: {err}"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// A partition heap whose tuple count diverges from the catalog manifest
/// is detected (a swapped or truncated-at-a-page-boundary file would
/// otherwise load silently).
#[test]
fn partition_manifest_count_mismatch_detected() {
    let dir = tmp("manifest-mismatch");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(hrdm_storage::PartitionPolicy::SpanLog2(4));
        db.create_relation("emp", scheme()).unwrap();
        db.insert("emp", tup(1, 0, 10)).unwrap();
        db.insert("emp", tup(2, 0, 12)).unwrap(); // same partition as 1
        db.insert("emp", tup(3, 40, 50)).unwrap();
        db.checkpoint().unwrap();
    }
    // Swap partition 2's file in place of partition 0's: both are intact
    // heap files, but the tuple counts disagree with the manifest.
    std::fs::copy(dir.join("emp.1.p2.heap"), dir.join("emp.1.p0.heap")).unwrap();
    let err = match Database::open(&dir) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("manifest mismatch must not load"),
    };
    assert!(
        err.contains("manifest") || err.contains("key"),
        "count/content mismatch must be detected: {err}"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// The partition map changes between epochs (repartition, then
/// checkpoint): recovery always follows the *persisted* policy of the
/// epoch it lands on — including a kill after the repartition but before
/// the checkpoint that would have persisted it.
#[test]
fn recovery_across_partition_map_change_between_epochs() {
    use hrdm_storage::PartitionPolicy;
    let dir = tmp("repartition-epochs");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(6)); // span 64
        db.create_relation("emp", scheme()).unwrap();
        for k in 0..12 {
            db.insert("emp", tup(k, k * 5, k * 5 + 8)).unwrap();
        }
        db.checkpoint().unwrap(); // epoch 1 persists span 64
        db.set_partition_policy(PartitionPolicy::SpanLog2(3)); // span 8: splits hot partitions
        db.insert("emp", tup(50, 3, 9)).unwrap();
        db.checkpoint().unwrap(); // epoch 2 persists span 8
        db.insert("emp", tup(51, 60, 70)).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(5)); // never checkpointed
                                                               // Kill.
    }
    let back = Database::open(&dir).unwrap();
    assert_eq!(back.epoch(), Some(2));
    assert_eq!(back.relation("emp").unwrap().len(), 14);
    // The never-checkpointed policy died with the process; epoch 2's
    // persisted policy governs recovery.
    assert_eq!(back.partition_policy(), PartitionPolicy::SpanLog2(3));
    let parts = back.partitions("emp").unwrap();
    assert_eq!(parts.tuple_count(), 14);
    // And the rebuilt map answers pruning queries over the merged state.
    let hits = parts.prune_positions(&Lifespan::interval(0, 10));
    let expect: Vec<usize> = back
        .relation("emp")
        .unwrap()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.lifespan().intersects(&Lifespan::interval(0, 10)))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits, expect);
    std::fs::remove_dir_all(dir).ok();
}

/// `checkpoint()` rewrites only dirty partitions: clean ones are carried
/// into the new epoch as hard links to the old epoch's files (same
/// inode), dirty ones get fresh files.
#[cfg(unix)]
#[test]
fn checkpoint_links_clean_partitions_and_rewrites_dirty_ones() {
    use std::os::unix::fs::MetadataExt;
    let dir = tmp("dirty-only");
    let mut db = Database::open(&dir).unwrap();
    db.set_partition_policy(hrdm_storage::PartitionPolicy::SpanLog2(4));
    db.create_relation("emp", scheme()).unwrap();
    db.insert("emp", tup(1, 0, 10)).unwrap(); // partition 0
    db.insert("emp", tup(2, 20, 30)).unwrap(); // partition 1
    db.insert("emp", tup(3, 40, 50)).unwrap(); // partition 2
    db.checkpoint().unwrap();
    let ino = |p: std::path::PathBuf| std::fs::metadata(p).unwrap().ino();
    let old: Vec<u64> = (0..3)
        .map(|k| ino(dir.join(format!("emp.1.p{k}.heap"))))
        .collect();

    db.insert("emp", tup(4, 21, 29)).unwrap(); // dirties partition 1 only
    db.checkpoint().unwrap();
    let new: Vec<u64> = (0..3)
        .map(|k| ino(dir.join(format!("emp.2.p{k}.heap"))))
        .collect();
    assert_eq!(new[0], old[0], "clean partition 0 hard-linked");
    assert_eq!(new[2], old[2], "clean partition 2 hard-linked");
    assert_ne!(new[1], old[1], "dirty partition 1 rewritten");

    // The linked epoch still opens to the full state.
    drop(db);
    let back = Database::open(&dir).unwrap();
    assert_eq!(back.relation("emp").unwrap().len(), 4);
    std::fs::remove_dir_all(dir).ok();
}

// ---------------------------------------------------------------------------
// Property: for a random op sequence with a kill at a random point (torn
// tail included), open() recovers a state equal to some prefix of the
// acknowledged history — and never errors.
// ---------------------------------------------------------------------------

/// One scripted mutation against the database.
#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Insert {
        rel: u8,
        key: i64,
        lo: i64,
        len: i64,
    },
    Put {
        rel: u8,
        keys: Vec<i64>,
    },
    Checkpoint,
}

fn rel_name(id: u8) -> String {
    format!("rel {}", id % 3) // spaces exercise heap-path escaping too
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3).prop_map(Op::Create),
        ((0u8..3), (0i64..40), (0i64..60), (1i64..30))
            .prop_map(|(rel, key, lo, len)| { Op::Insert { rel, key, lo, len } }),
        ((0u8..3), prop::collection::vec(0i64..40, 0..5))
            .prop_map(|(rel, keys)| Op::Put { rel, keys }),
        Just(Op::Checkpoint),
    ]
}

/// Applies `op` to an attached database, mirroring it on a detached oracle.
/// Both must agree on success/failure. Returns whether the op was acked.
fn apply(db: &mut Database, oracle: &mut Database, op: &Op) -> bool {
    match op {
        Op::Create(id) => {
            let a = db.create_relation(&rel_name(*id), scheme());
            let b = oracle.create_relation(&rel_name(*id), scheme());
            assert_eq!(a.is_ok(), b.is_ok(), "create {id}");
            a.is_ok()
        }
        Op::Insert { rel, key, lo, len } => {
            let t = tup(*key, *lo, lo + len);
            let a = db.insert(&rel_name(*rel), t.clone());
            let b = oracle.insert(&rel_name(*rel), t);
            assert_eq!(a.is_ok(), b.is_ok(), "insert {key} into {rel}");
            a.is_ok()
        }
        Op::Put { rel, keys } => {
            let mut uniq: Vec<i64> = keys.clone();
            uniq.sort_unstable();
            uniq.dedup();
            let tuples: Vec<Tuple> = uniq.iter().map(|&k| tup(k, 0, 10)).collect();
            let contents = Relation::with_tuples(scheme(), tuples).unwrap();
            let a = db.put_relation(&rel_name(*rel), contents.clone());
            let b = oracle.put_relation(&rel_name(*rel), contents);
            assert_eq!(a.is_ok(), b.is_ok(), "put into {rel}");
            a.is_ok()
        }
        Op::Checkpoint => {
            db.checkpoint().unwrap();
            true // no-op on the oracle: contents are unchanged
        }
    }
}

type Snapshot = BTreeMap<String, Relation>;

fn snapshot(db: &Database) -> Snapshot {
    db.relation_names()
        .map(|n| (n.to_string(), db.relation(n).unwrap().clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kill_recovers_a_prefix_consistent_state(
        ops in prop::collection::vec(op_strategy(), 1..14),
        cut_back in 0u64..96,
    ) {
        let dir = tmp("prop");
        let mut db = Database::open(&dir).unwrap();
        let mut oracle = Database::new();
        // History of states after each acknowledged mutation (the empty
        // state is a valid recovery target too).
        let mut history: Vec<Snapshot> = vec![snapshot(&oracle)];
        for op in &ops {
            if apply(&mut db, &mut oracle, op) {
                history.push(snapshot(&oracle));
            }
        }
        // Kill: drop the live database, then tear the WAL tail by a random
        // number of bytes (0 = clean kill between appends).
        drop(db);
        let wal = wal_file(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let torn_len = len.saturating_sub(cut_back);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(torn_len)
            .unwrap();

        let back = Database::open(&dir).unwrap(); // must never error
        let got = snapshot(&back);
        let matches_prefix = history.iter().any(|h| h == &got);
        prop_assert!(
            matches_prefix,
            "recovered state equals no acknowledged prefix: {} relations, history of {}",
            got.len(),
            history.len()
        );
        // Torn bytes can only lose the *unacknowledged tail*: everything
        // acknowledged before the surviving WAL prefix is present, so the
        // recovered state can never be shorter than the last checkpoint.
        std::fs::remove_dir_all(dir).ok();
    }
}
