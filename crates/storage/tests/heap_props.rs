//! Property test: a [`HeapFile`] driven through an arbitrary
//! insert/delete/sync/reopen schedule stays equivalent to a trivial
//! in-memory model — under a pool small enough that eviction and
//! re-faulting interleave with every operation.

use hrdm_storage::{BufferPool, HeapFile, SlotId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp() -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-heap-props-{}-{}.heap",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_file(&p).ok();
    p
}

/// One step of the schedule. Deletes address the model's `i % live`-th
/// surviving record so every generated index is meaningful.
#[derive(Clone, Debug)]
enum Op {
    /// Insert a record of the given length (patterned bytes).
    Insert(usize),
    /// Delete the `i`-th live record (mod the live count).
    Delete(usize),
    /// Flush dirty pages to disk.
    Sync,
    /// Sync, drop the handle, and reopen the file cold.
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Hand-rolled weights (the vendored proptest's `prop_oneof!` has no
    // weighted arms): 5 small inserts : 1 near-page-size insert (forces
    // fresh page allocations) : 3 deletes : 1 sync : 1 reopen.
    (0u8..11, any::<usize>()).prop_map(|(k, x)| match k {
        0..=4 => Op::Insert(1 + x % 599),
        5 => Op::Insert(7_000 + x % 1_180),
        6..=8 => Op::Delete(x),
        9 => Op::Sync,
        _ => Op::Reopen,
    })
}

/// Deterministic, length- and sequence-dependent record bytes, so two
/// records never collide by accident.
fn record(seq: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq.wrapping_mul(31).wrapping_add(i) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::from_env_or(64))]

    #[test]
    fn heap_schedule_matches_in_memory_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let path = tmp();
        // 2 frames: every multi-page state forces eviction + re-fault.
        let pool = BufferPool::new(2);
        let mut heap = HeapFile::create_in(&path, Arc::clone(&pool)).unwrap();
        let mut model: BTreeMap<(u32, SlotId), Vec<u8>> = BTreeMap::new();

        for (seq, op) in ops.into_iter().enumerate() {
            match op {
                Op::Insert(len) => {
                    let bytes = record(seq, len);
                    let id = heap.insert(&bytes).unwrap();
                    let prev = model.insert((id.page, id.slot), bytes);
                    prop_assert!(prev.is_none(), "RecordId reused while live");
                }
                Op::Delete(i) => {
                    if model.is_empty() {
                        continue;
                    }
                    let key = *model.keys().nth(i % model.len()).unwrap();
                    let id = hrdm_storage::RecordId { page: key.0, slot: key.1 };
                    prop_assert!(heap.delete(id).unwrap());
                    model.remove(&key);
                    // A second delete of the same id is a no-op.
                    prop_assert!(!heap.delete(id).unwrap());
                }
                Op::Sync => heap.sync().unwrap(),
                Op::Reopen => {
                    heap.sync().unwrap();
                    drop(heap);
                    heap = HeapFile::open_in(&path, Arc::clone(&pool)).unwrap();
                }
            }

            // Point reads agree with the model.
            for (&(page, slot), bytes) in &model {
                let id = hrdm_storage::RecordId { page, slot };
                prop_assert_eq!(heap.get(id).unwrap().as_deref(), Some(&bytes[..]));
            }
        }

        // Final full scan agrees with the model exactly (same ids, same
        // bytes, ascending order).
        let scanned: Vec<_> = heap.scan().map(|r| r.unwrap()).collect();
        prop_assert_eq!(scanned.len(), model.len());
        for ((id, rec), (&(page, slot), bytes)) in scanned.iter().zip(model.iter()) {
            prop_assert_eq!((id.page, id.slot), (page, slot));
            prop_assert_eq!(rec, bytes);
        }

        drop(heap);
        std::fs::remove_file(&path).ok();
    }
}
