//! Per-query span tracing: wall-time trees built with RAII guards.
//!
//! A [`Span`] wraps one unit of work (a plan operator, a commit
//! phase). Entering a span pushes a node onto a **thread-local** open
//! stack; dropping the guard pops it, stamps the elapsed wall time,
//! and attaches it to its parent — so nested `Span::enter` calls build
//! the same tree as the call graph. Collection only happens inside
//! [`with_trace`]; outside it (or with observability disabled) a span
//! is one thread-local read and no allocation, which is what lets the
//! planner leave spans permanently in `eval_plan` without a
//! measurable cost in production paths.

use std::cell::RefCell;
use std::time::Instant;

/// One node of a trace tree: a named unit of work, its inclusive wall
/// time, the rows it produced (when recorded), and its children in
/// execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    /// The span name given to [`Span::enter`].
    pub name: &'static str,
    /// Inclusive wall time of the span, in nanoseconds.
    pub wall_ns: u64,
    /// Output rows recorded with [`SpanGuard::record_rows`], if any.
    pub rows: Option<u64>,
    /// Child spans, in the order they were entered.
    pub children: Vec<TraceNode>,
}

struct OpenSpan {
    node: TraceNode,
    started: Instant,
}

struct Collector {
    /// Open spans, innermost last.
    stack: Vec<OpenSpan>,
    /// Completed top-level spans.
    roots: Vec<TraceNode>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Runs `f` with span collection active on this thread and returns its
/// result together with the completed top-level trace trees (one per
/// outermost [`Span::enter`] during `f`). Nested `with_trace` calls
/// each collect their own trees; the outer collection pauses for the
/// duration. If observability is disabled ([`crate::enabled`] is
/// false), `f` runs untraced and the tree list is empty.
pub fn with_trace<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceNode>) {
    if !crate::enabled() {
        return (f(), Vec::new());
    }
    let previous = ACTIVE.with(|a| {
        a.borrow_mut().replace(Collector {
            stack: Vec::new(),
            roots: Vec::new(),
        })
    });
    // Restore the previous collector even if `f` panics, so a caught
    // panic (e.g. in tests) cannot leak a stale collector into later
    // work on this thread.
    struct Restore(Option<Collector>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let restore = Restore(previous);
    let result = f();
    let collector = ACTIVE.with(|a| a.borrow_mut().take());
    let roots = collector.map(|c| c.roots).unwrap_or_default();
    drop(restore);
    (result, roots)
}

/// A traced unit of work. See [`with_trace`].
pub struct Span;

impl Span {
    /// Opens a span named `name`. The returned guard closes it on
    /// drop, recording the elapsed wall time into the active trace.
    /// When no trace is active this is one thread-local read.
    pub fn enter(name: &'static str) -> SpanGuard {
        let index = ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            match active.as_mut() {
                Some(c) => {
                    c.stack.push(OpenSpan {
                        node: TraceNode {
                            name,
                            wall_ns: 0,
                            rows: None,
                            children: Vec::new(),
                        },
                        started: Instant::now(),
                    });
                    Some(c.stack.len() - 1)
                }
                None => None,
            }
        });
        SpanGuard { index }
    }
}

/// RAII guard for an open [`Span`]; closes the span on drop.
pub struct SpanGuard {
    /// This span's position in the open stack, `None` when untraced.
    index: Option<usize>,
}

impl SpanGuard {
    /// Records the number of rows this span's operator produced; shown
    /// as `rows=N` in EXPLAIN ANALYZE output.
    pub fn record_rows(&self, rows: u64) {
        let Some(index) = self.index else { return };
        ACTIVE.with(|a| {
            if let Some(c) = a.borrow_mut().as_mut() {
                if let Some(open) = c.stack.get_mut(index) {
                    open.node.rows = Some(rows);
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.index.is_none() {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(c) = a.borrow_mut().as_mut() {
                if let Some(mut open) = c.stack.pop() {
                    open.node.wall_ns = open.started.elapsed().as_nanos() as u64;
                    match c.stack.last_mut() {
                        Some(parent) => parent.node.children.push(open.node),
                        None => c.roots.push(open.node),
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_mirrors_the_call_graph() {
        let ((), roots) = with_trace(|| {
            let outer = Span::enter("outer");
            {
                let a = Span::enter("a");
                a.record_rows(3);
                drop(a);
                let _b = Span::enter("b");
            }
            outer.record_rows(1);
        });
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.rows, Some(1));
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].name, "a");
        assert_eq!(outer.children[0].rows, Some(3));
        assert_eq!(outer.children[1].name, "b");
        assert!(outer.children[1].children.is_empty());
    }

    #[test]
    fn spans_outside_a_trace_are_free_of_effect() {
        let guard = Span::enter("untraced");
        guard.record_rows(9);
        drop(guard);
        let ((), roots) = with_trace(|| {
            let _s = Span::enter("traced");
        });
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "traced");
    }

    #[test]
    fn wall_time_is_inclusive_of_children() {
        let ((), roots) = with_trace(|| {
            let _outer = Span::enter("outer");
            let inner = Span::enter("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(inner);
        });
        let outer = &roots[0];
        let inner = &outer.children[0];
        assert!(inner.wall_ns > 0);
        assert!(outer.wall_ns >= inner.wall_ns);
    }
}
