//! A named registry of metric families and its Prometheus text
//! exposition renderer.
//!
//! Registration takes a `Mutex` once per family; the returned
//! [`Arc`]ed handles are then recorded into lock-free. The process-wide
//! [`global`] registry is where the storage and query layers register
//! their families (they have no per-instance home); per-instance
//! components (the network server) keep their own [`Registry`] and
//! concatenate it with the global one when rendering.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    metric: Metric,
}

/// A named collection of metric families, rendered in Prometheus text
/// exposition format. Families are registered once (get-or-create by
/// name) and recorded into through the returned handles without any
/// further locking.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or registers the counter family `name`. Panics if `name`
    /// is already registered as a different metric type (a programming
    /// error: one name, one type).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut families = self.families.lock().expect("registry poisoned");
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &fam.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Gets or registers the gauge family `name`. Panics on a type
    /// mismatch with an existing registration.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut families = self.families.lock().expect("registry poisoned");
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &fam.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Gets or registers the histogram family `name`. Panics on a type
    /// mismatch with an existing registration.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut families = self.families.lock().expect("registry poisoned");
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &fam.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Registers an *existing* counter cell under `name`, so a
    /// component whose counters double as functional state (e.g. the
    /// server's `ServerStats` cells) can expose them without keeping
    /// two copies. Returns the handle passed in.
    pub fn register_counter(&self, name: &str, help: &str, cell: Arc<Counter>) -> Arc<Counter> {
        let mut families = self.families.lock().expect("registry poisoned");
        families.insert(
            name.to_string(),
            Family {
                help: help.to_string(),
                metric: Metric::Counter(Arc::clone(&cell)),
            },
        );
        cell
    }

    /// Registers an existing gauge cell under `name` (see
    /// [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, help: &str, cell: Arc<Gauge>) -> Arc<Gauge> {
        let mut families = self.families.lock().expect("registry poisoned");
        families.insert(
            name.to_string(),
            Family {
                help: help.to_string(),
                metric: Metric::Gauge(Arc::clone(&cell)),
            },
        );
        cell
    }

    /// The named histogram's snapshot, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let families = self.families.lock().expect("registry poisoned");
        match families.get(name) {
            Some(Family {
                metric: Metric::Histogram(h),
                ..
            }) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// The named counter's current value, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let families = self.families.lock().expect("registry poisoned");
        match families.get(name) {
            Some(Family {
                metric: Metric::Counter(c),
                ..
            }) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders every family in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, then the samples — plain values
    /// for counters and gauges, cumulative `_bucket{le="…"}` lines
    /// plus `_sum`/`_count` for histograms. Families render in name
    /// order, so output is deterministic for a given state. HELP text
    /// is escaped per the exposition format ([`escape_help`]).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, fam) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            match &fam.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let snap = h.snapshot();
                    let buckets = snap.buckets();
                    let last_nonempty = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &c) in buckets.iter().enumerate().take(last_nonempty + 1) {
                        cumulative += c;
                        let le = HistogramSnapshot::upper_bound(i);
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                }
            }
        }
        out
    }
}

/// The process-wide registry. Layers without a per-instance home
/// (WAL, checkpoint, group commit, query operators) register their
/// families here; `\metrics` renders it alongside any per-instance
/// registries.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Escapes HELP text per the Prometheus text exposition format:
/// backslash and newline become `\\` and `\n`. (Double quotes are
/// legal in HELP text and stay raw.)
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `hrdm_build_info` (constant-1 gauge with `version` and
/// `git_hash` labels) and `hrdm_uptime_seconds` families, so scrapes
/// can detect restarts and version skew across replicas. Label values
/// are escaped with [`escape_label_value`].
pub fn render_build_info(version: &str, git_hash: &str, uptime_secs: u64) -> String {
    let mut out = String::new();
    out.push_str("# HELP hrdm_build_info Build metadata (constant 1; labels carry the data).\n");
    out.push_str("# TYPE hrdm_build_info gauge\n");
    let _ = writeln!(
        out,
        "hrdm_build_info{{version=\"{}\",git_hash=\"{}\"}} 1",
        escape_label_value(version),
        escape_label_value(git_hash)
    );
    out.push_str("# HELP hrdm_uptime_seconds Seconds since this process started serving.\n");
    out.push_str("# TYPE hrdm_uptime_seconds gauge\n");
    let _ = writeln!(out, "hrdm_uptime_seconds {uptime_secs}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("x_total"), Some(3));
    }

    #[test]
    fn renders_all_three_types() {
        let r = Registry::new();
        r.counter("c_total", "events").add(5);
        r.gauge("g", "level").set(-2);
        let h = r.histogram("h_ns", "latencies");
        h.record(0);
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP c_total events"), "{text}");
        assert!(text.contains("# TYPE c_total counter\nc_total 5"), "{text}");
        assert!(text.contains("# TYPE g gauge\ng -2"), "{text}");
        assert!(text.contains("# TYPE h_ns histogram"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"3\"} 2"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("h_ns_sum 103"), "{text}");
        assert!(text.contains("h_ns_count 3"), "{text}");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "as counter");
        r.gauge("m", "as gauge");
    }

    #[test]
    fn help_text_is_escaped_in_the_exposition() {
        let r = Registry::new();
        r.counter("esc_total", "line one\nback\\slash").add(1);
        let text = r.render_prometheus();
        assert!(
            text.contains(r"# HELP esc_total line one\nback\\slash"),
            "{text}"
        );
        // The exposition must stay one line per sample/comment.
        assert!(text.lines().all(|l| !l.is_empty()), "{text}");
    }

    #[test]
    fn escape_helpers_cover_the_format() {
        assert_eq!(escape_help(r"a\b"), r"a\\b");
        assert_eq!(escape_help("a\nb"), r"a\nb");
        assert_eq!(escape_help(r#"quote " stays"#), r#"quote " stays"#);
        assert_eq!(escape_label_value("v\"1\"\n\\"), r#"v\"1\"\n\\"#);
    }

    #[test]
    fn build_info_renders_escaped_labels() {
        let text = render_build_info("0.1.0", "dead\"beef", 42);
        assert!(
            text.contains(r#"hrdm_build_info{version="0.1.0",git_hash="dead\"beef"} 1"#),
            "{text}"
        );
        assert!(text.contains("hrdm_uptime_seconds 42"), "{text}");
        assert!(text.contains("# TYPE hrdm_build_info gauge"), "{text}");
    }
}
