//! # hrdm-obs — observability for the HRDM engine
//!
//! The instrumentation layer every other crate reports through, built
//! std-only like the rest of the workspace:
//!
//! * [`metrics`] — lock-cheap primitives: [`Counter`], [`Gauge`], and
//!   log2-bucketed [`Histogram`]s with p50/p95/p99 extraction. All of
//!   them are a handful of relaxed atomic operations on the hot path.
//! * [`registry`] — a named [`Registry`] of metric families rendered in
//!   Prometheus text exposition format, plus the process-wide
//!   [`registry::global`] registry the storage and query layers record
//!   into.
//! * [`span`] — a per-query tracing facility: [`Span::enter`] records
//!   wall time (and row counts) into a trace tree, collected with
//!   [`span::with_trace`]. When no trace is active a span costs one
//!   thread-local read.
//! * [`slowlog`] — a bounded FIFO ring buffer of the worst recent
//!   requests with their plans, mirroring the Cancel-id bound of the
//!   wire protocol (default 32 entries, oldest evicted first).
//! * [`trace`] — request-scoped trace ids: a [`TraceContext`] minted
//!   by the originator, carried in the wire frame header, installed as
//!   a thread-local ambient id while the request is served, and read
//!   back by every reporting surface.
//! * [`event`] — the flight recorder: a bounded ring of structured
//!   engine events (commits, checkpoints, pool activity, sessions,
//!   errors, slow queries) with anomaly-triggered trailing-window
//!   snapshots.
//! * [`window`] — rolling per-second ring buckets over the hot
//!   counters and histograms: 60s rates (`hrdm_net_qps`), rolling
//!   latency percentiles, pool hit ratio, and the top-relations
//!   leaderboard behind `\top`.
//!
//! ## The kill switch
//!
//! Setting `HRDM_OBS_OFF=1` in the environment disables every *purely
//! observational* recording site (the WAL/checkpoint/query/net
//! recordings into the global registry, and span collection). It does
//! **not** disable the [`Counter`]/[`Gauge`] cells that back
//! `CommitStats`/`ServerStats` — those feed `\stats` and are part of
//! the engine's functional surface. The switch exists so the bench
//! suite can price the observational overhead (<5% is the budget, CI
//! enforced); [`set_enabled`] flips the same switch programmatically
//! for in-process A/B runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod registry;
pub mod slowlog;
pub mod span;
pub mod trace;
pub mod window;

pub use event::{recorder, EventKind, EventRecord, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{global, Registry};
pub use slowlog::{SlowEntry, SlowLog, SLOWLOG_CAPACITY};
pub use span::{with_trace, Span, SpanGuard, TraceNode};
pub use trace::TraceContext;
pub use window::{LatencyWindow, RateWindow, TopRelations};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether observational recording is on. Initialized lazily from the
/// `HRDM_OBS_OFF` environment variable (any non-empty value other than
/// `0` disables), overridable with [`set_enabled`]. One relaxed atomic
/// load on the hot path once initialized.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = std::env::var("HRDM_OBS_OFF").is_ok_and(|v| !v.is_empty() && v != "0");
            let state = if off { 2 } else { 1 };
            // Racing initializers compute the same answer; last store wins.
            ENABLED.store(state, Ordering::Relaxed);
            !off
        }
    }
}

/// Programmatically enables or disables observational recording,
/// overriding `HRDM_OBS_OFF`. Used by the bench suite to compare
/// instrumented and uninstrumented runs inside one process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}
