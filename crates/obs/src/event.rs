//! The flight recorder: a bounded ring of structured engine events.
//!
//! Counters say *how much*; the recorder says *what happened, in what
//! order*. Engine components append coarse milestone events — a commit
//! batch applied, a checkpoint beginning and ending, a buffer-pool
//! eviction or writeback, a cancel, a session opening or closing, an
//! error, a slow query — each stamped with a monotonic sequence
//! number, coarse wall-clock time, and the [`crate::trace`] id current
//! on the recording thread (so events can be joined back to the
//! request that caused them).
//!
//! ## Cost model
//!
//! Recording takes one short mutex around a `VecDeque` push. Events
//! are *batch-scale*, never row-scale: the hottest producer is the
//! buffer pool under forced eviction, which records once per eviction
//! sweep, not per page. The ring is bounded at [`RING_CAPACITY`];
//! overflow drops the oldest event and counts it, so a quiet anomaly
//! investigated hours later still has the most recent history.
//!
//! ## Anomaly snapshots
//!
//! The ring alone can rotate past the interesting part before anyone
//! looks. Components that detect an anomaly (an error frame sent, a
//! slowlog admission) call [`FlightRecorder::anomaly`], which clones
//! the trailing [`ANOMALY_WINDOW`] events into a small FIFO of
//! [`AnomalySnapshot`]s — a frozen "what led up to this" window that
//! survives ring rotation. All recording is a no-op under the
//! `HRDM_OBS_OFF` kill switch.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Bound on ring entries (oldest dropped beyond this).
pub const RING_CAPACITY: usize = 1024;
/// Trailing events captured per anomaly snapshot.
pub const ANOMALY_WINDOW: usize = 64;
/// Bound on retained anomaly snapshots (oldest dropped beyond this).
pub const ANOMALY_CAPACITY: usize = 4;
/// Bound on a single event's detail text, in bytes (longer is cut).
pub const DETAIL_CAP: usize = 256;

/// What kind of milestone an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum EventKind {
    CommitApplied,
    CheckpointBegin,
    CheckpointEnd,
    PoolEviction,
    PoolWriteback,
    Cancel,
    SessionOpen,
    SessionClose,
    Error,
    SlowQuery,
}

impl EventKind {
    /// The stable wire/text name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::CommitApplied => "commit",
            EventKind::CheckpointBegin => "checkpoint-begin",
            EventKind::CheckpointEnd => "checkpoint-end",
            EventKind::PoolEviction => "pool-evict",
            EventKind::PoolWriteback => "pool-writeback",
            EventKind::Cancel => "cancel",
            EventKind::SessionOpen => "session-open",
            EventKind::SessionClose => "session-close",
            EventKind::Error => "error",
            EventKind::SlowQuery => "slow-query",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic per-recorder sequence number (1-based).
    pub seq: u64,
    /// Coarse wall-clock stamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The trace id current on the recording thread (0 = none).
    pub trace: u128,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context, capped at [`DETAIL_CAP`] bytes.
    pub detail: String,
}

impl EventRecord {
    /// One-line text rendering (`\events` and anomaly dumps use this).
    pub fn render(&self) -> String {
        let trace = if self.trace == 0 {
            "-".to_string()
        } else {
            crate::trace::render(self.trace)
        };
        format!(
            "#{:<6} t={} trace={} {} {}",
            self.seq,
            self.unix_ms,
            trace,
            self.kind.as_str(),
            self.detail
        )
    }
}

/// A frozen trailing window captured when an anomaly was detected.
#[derive(Clone, Debug)]
pub struct AnomalySnapshot {
    /// Sequence number of the newest event in the window at capture.
    pub at_seq: u64,
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Why the snapshot was taken (e.g. `error frame`, `slowlog`).
    pub reason: String,
    /// The trailing events, oldest first.
    pub window: Vec<EventRecord>,
}

struct Inner {
    ring: VecDeque<EventRecord>,
    anomalies: VecDeque<AnomalySnapshot>,
    seq: u64,
    recorded: u64,
    dropped: u64,
    anomaly_count: u64,
}

/// The bounded event ring. See the module docs for the cost model.
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Inner>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` events.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                anomalies: VecDeque::new(),
                seq: 0,
                recorded: 0,
                dropped: 0,
                anomaly_count: 0,
            }),
        }
    }

    /// Appends an event stamped with the thread's current trace id.
    /// No-op when observability is disabled.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) {
        self.record_traced(crate::trace::current().unwrap_or(0), kind, detail);
    }

    /// Appends an event with an explicit trace id (0 = none). No-op
    /// when observability is disabled.
    pub fn record_traced(&self, trace: u128, kind: EventKind, detail: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let mut detail = detail.into();
        if detail.len() > DETAIL_CAP {
            let cut = (0..=DETAIL_CAP)
                .rev()
                .find(|&i| detail.is_char_boundary(i))
                .unwrap_or(0);
            detail.truncate(cut);
        }
        let unix_ms = now_ms();
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.seq += 1;
        inner.recorded += 1;
        let seq = inner.seq;
        if inner.ring.len() >= self.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(EventRecord {
            seq,
            unix_ms,
            trace,
            kind,
            detail,
        });
    }

    /// Freezes the trailing [`ANOMALY_WINDOW`] events into a retained
    /// [`AnomalySnapshot`]. No-op when observability is disabled.
    pub fn anomaly(&self, reason: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let unix_ms = now_ms();
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.anomaly_count += 1;
        let window: Vec<EventRecord> = inner
            .ring
            .iter()
            .rev()
            .take(ANOMALY_WINDOW)
            .rev()
            .cloned()
            .collect();
        let at_seq = window.last().map_or(inner.seq, |e| e.seq);
        if inner.anomalies.len() >= ANOMALY_CAPACITY {
            inner.anomalies.pop_front();
        }
        inner.anomalies.push_back(AnomalySnapshot {
            at_seq,
            unix_ms,
            reason: reason.into(),
            window,
        });
    }

    /// The newest `limit` events, oldest first (0 = everything held).
    pub fn snapshot(&self, limit: usize) -> Vec<EventRecord> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        let take = if limit == 0 {
            inner.ring.len()
        } else {
            limit.min(inner.ring.len())
        };
        inner.ring.iter().rev().take(take).rev().cloned().collect()
    }

    /// Retained anomaly snapshots, oldest first.
    pub fn anomalies(&self) -> Vec<AnomalySnapshot> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .anomalies
            .iter()
            .cloned()
            .collect()
    }

    /// (events recorded, events dropped by rotation, anomalies taken).
    pub fn totals(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        (inner.recorded, inner.dropped, inner.anomaly_count)
    }

    /// Renders the recorder state as Prometheus-comment lines plus
    /// `hrdm_events_*` summary families, safe to append to an
    /// exposition document.
    pub fn render_summary(&self) -> String {
        let (recorded, dropped, anomalies) = self.totals();
        let mut out = String::new();
        out.push_str("# HELP hrdm_events_recorded_total Flight-recorder events recorded.\n");
        out.push_str("# TYPE hrdm_events_recorded_total counter\n");
        out.push_str(&format!("hrdm_events_recorded_total {recorded}\n"));
        out.push_str(
            "# HELP hrdm_events_dropped_total Flight-recorder events lost to ring rotation.\n",
        );
        out.push_str("# TYPE hrdm_events_dropped_total counter\n");
        out.push_str(&format!("hrdm_events_dropped_total {dropped}\n"));
        out.push_str("# HELP hrdm_events_anomalies_total Anomaly snapshots captured.\n");
        out.push_str("# TYPE hrdm_events_anomalies_total counter\n");
        out.push_str(&format!("hrdm_events_anomalies_total {anomalies}\n"));
        out
    }
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// The process-wide recorder every engine component records into.
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rotates_and_counts_drops() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(EventKind::CommitApplied, format!("b{i}"));
        }
        let held = r.snapshot(0);
        assert_eq!(held.len(), 3);
        assert_eq!(held[0].detail, "b2");
        assert_eq!(held[2].detail, "b4");
        let seqs: Vec<u64> = held.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "sequence survives rotation");
        let (recorded, dropped, _) = r.totals();
        assert_eq!((recorded, dropped), (5, 2));
    }

    #[test]
    fn snapshot_limit_takes_newest() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(EventKind::SessionOpen, format!("s{i}"));
        }
        let last2 = r.snapshot(2);
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].detail, "s3");
        assert_eq!(last2[1].detail, "s4");
    }

    #[test]
    fn events_stamp_the_current_trace() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(8);
        {
            let _scope = crate::trace::set_current(0xfeed);
            r.record(EventKind::SlowQuery, "slow");
        }
        r.record(EventKind::CommitApplied, "untraced");
        let held = r.snapshot(0);
        assert_eq!(held[0].trace, 0xfeed);
        assert_eq!(held[1].trace, 0);
        assert!(held[0].render().contains(&crate::trace::render(0xfeed)));
        assert!(held[1].render().contains("trace=-"));
    }

    #[test]
    fn anomalies_freeze_the_trailing_window() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(4);
        for i in 0..4 {
            r.record(EventKind::CommitApplied, format!("b{i}"));
        }
        r.anomaly("error frame");
        // Rotate the ring completely; the snapshot must not change.
        for i in 4..12 {
            r.record(EventKind::CommitApplied, format!("b{i}"));
        }
        let snaps = r.anomalies();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].reason, "error frame");
        let details: Vec<&str> = snaps[0].window.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["b0", "b1", "b2", "b3"]);
        assert_eq!(snaps[0].at_seq, 4);

        for n in 0..ANOMALY_CAPACITY + 2 {
            r.anomaly(format!("a{n}"));
        }
        assert_eq!(r.anomalies().len(), ANOMALY_CAPACITY);
    }

    #[test]
    fn detail_is_capped_at_a_char_boundary() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(2);
        let long = "é".repeat(DETAIL_CAP); // 2 bytes per char
        r.record(EventKind::Error, long);
        let held = r.snapshot(0);
        assert!(held[0].detail.len() <= DETAIL_CAP);
        assert!(!held[0].detail.is_empty());
    }

    #[test]
    fn summary_renders_counter_families() {
        crate::set_enabled(true);
        let r = FlightRecorder::new(2);
        r.record(EventKind::CommitApplied, "x");
        let text = r.render_summary();
        assert!(text.contains("hrdm_events_recorded_total"));
        assert!(text.contains("# TYPE hrdm_events_dropped_total counter"));
    }
}
