//! Request-scoped trace propagation.
//!
//! A trace id is a non-zero `u128` minted once per request by whoever
//! originates it (the net client mints one per wire request; local
//! shells may mint their own). It travels in the wire frame header, so
//! every surface a request touches — the span tree, `EXPLAIN ANALYZE`,
//! the slow-query log, structured error frames, and the flight
//! recorder — can report the id the originator already holds.
//!
//! ## The ambient current trace
//!
//! Rather than threading the id through every call signature, the
//! serving thread installs it with [`set_current`] for the duration of
//! one request; recording sites read it back with [`current`]. The
//! slot is thread-local, so concurrent sessions on separate worker
//! threads never observe each other's ids. The guard restores the
//! previous value on drop (nesting is safe), including on unwind.
//!
//! Zero is the reserved "no trace" id: [`set_current`] with 0 installs
//! nothing and [`current`] never returns it. Under the `HRDM_OBS_OFF`
//! kill switch [`TraceContext::mint`] returns the zero context, so
//! disabling observability silently disables propagation everywhere
//! without any call-site changes.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

thread_local! {
    static CURRENT: Cell<u128> = const { Cell::new(0) };
}

/// Process-wide mint counter: guarantees ids minted by one process are
/// distinct even within a single clock tick.
static MINT_SEQ: AtomicU64 = AtomicU64::new(0);

/// The identity of one request: a process-unique id plus the name of
/// the component that minted it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace id (0 = absent, never minted while enabled).
    pub id: u128,
    /// Who minted it (e.g. the client name sent in `Hello`).
    pub origin: String,
}

impl TraceContext {
    /// Mints a fresh context. The id mixes wall-clock nanoseconds, a
    /// process-wide counter, and a hash of `origin`, giving ids that
    /// are unique per process and overwhelmingly unique across
    /// processes — collision resistance for dashboards, not security.
    /// Returns the zero context when observability is disabled.
    pub fn mint(origin: &str) -> TraceContext {
        let id = if crate::enabled() { mint_id(origin) } else { 0 };
        TraceContext {
            id,
            origin: origin.to_string(),
        }
    }

    /// The zero (absent) context.
    pub fn none() -> TraceContext {
        TraceContext {
            id: 0,
            origin: String::new(),
        }
    }
}

fn mint_id(origin: &str) -> u128 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let seq = MINT_SEQ.fetch_add(1, Ordering::Relaxed);
    // FNV-1a over the origin, folded with the counter into the low half.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in origin.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let low = h ^ seq.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    let id = (nanos << 32) ^ u128::from(low);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Restores the previously-current trace id when dropped.
pub struct TraceScope {
    prev: u128,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Installs `id` as the calling thread's current trace for the lifetime
/// of the returned guard. Id 0 (and the kill switch) install nothing —
/// the guard still restores correctly.
pub fn set_current(id: u128) -> TraceScope {
    let prev = CURRENT.with(|c| c.get());
    if id != 0 && crate::enabled() {
        CURRENT.with(|c| c.set(id));
    }
    TraceScope { prev }
}

/// The calling thread's current trace id, if a non-zero one is
/// installed and observability is enabled.
pub fn current() -> Option<u128> {
    if !crate::enabled() {
        return None;
    }
    let id = CURRENT.with(|c| c.get());
    if id == 0 {
        None
    } else {
        Some(id)
    }
}

/// Renders a trace id as the canonical 32-digit lowercase hex string.
pub fn render(id: u128) -> String {
    format!("{id:032x}")
}

/// Parses the canonical 32-digit hex rendering back into an id.
pub fn parse(s: &str) -> Option<u128> {
    if s.len() != 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        crate::set_enabled(true);
        let a = TraceContext::mint("t");
        let b = TraceContext::mint("t");
        assert_ne!(a.id, 0);
        assert_ne!(b.id, 0);
        assert_ne!(a.id, b.id);
        assert_eq!(a.origin, "t");
    }

    #[test]
    fn scope_installs_and_restores() {
        crate::set_enabled(true);
        assert_eq!(current(), None);
        {
            let _outer = set_current(7);
            assert_eq!(current(), Some(7));
            {
                let _inner = set_current(9);
                assert_eq!(current(), Some(9));
            }
            assert_eq!(current(), Some(7));
            {
                let _zero = set_current(0);
                assert_eq!(current(), Some(7), "zero installs nothing");
            }
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn render_parse_round_trip() {
        let id = 0x00ab_cdef_0123_4567_89ab_cdef_0123_4567u128;
        let s = render(id);
        assert_eq!(s.len(), 32);
        assert_eq!(parse(&s), Some(id));
        assert_eq!(parse("zz"), None);
    }
}
