//! Windowed metrics: rolling per-second ring buckets over hot counters
//! and histograms.
//!
//! A [`Counter`](crate::Counter) answers "how many ever"; operators
//! want "how many *lately*". Each window keeps [`SLOTS`] per-second
//! buckets in a ring indexed by `unix_second % SLOTS`, each slot
//! stamped with the second it currently represents. Recording claims
//! the slot for the current second (zeroing it when it still holds an
//! older lap of the ring) and accumulates with relaxed atomics — no
//! locks, no background threads. Reads sum the slots stamped within
//! the trailing [`WINDOW_SECS`], yielding rolling rates
//! (`hrdm_net_qps`), rolling latency percentiles (the 60s p99), and
//! ratios (pool hit-rate).
//!
//! The slot-claim CAS has a benign race: an increment landing between
//! another thread's claim and its zeroing store can be lost. Windows
//! are monitoring views, not accounting — a lost tick per second-edge
//! is noise, and the totals counters remain exact.
//!
//! All recording gates on [`crate::enabled`]; a disabled window stays
//! empty and renders zero rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{bucket_of, BUCKETS};
use crate::HistogramSnapshot;

/// The rolling window length, in seconds.
pub const WINDOW_SECS: u64 = 60;
/// Ring slots; must exceed [`WINDOW_SECS`] so a reader never sums a
/// slot being reclaimed for the second it is about to represent.
pub const SLOTS: usize = 64;

fn now_sec() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

struct RateSlot {
    stamp: AtomicU64,
    sum: AtomicU64,
}

/// A rolling event-count window (QPS, rows/s, hits/s).
pub struct RateWindow {
    slots: Vec<RateSlot>,
}

impl Default for RateWindow {
    fn default() -> RateWindow {
        RateWindow::new()
    }
}

impl RateWindow {
    /// An empty window.
    pub fn new() -> RateWindow {
        RateWindow {
            slots: (0..SLOTS)
                .map(|_| RateSlot {
                    stamp: AtomicU64::new(u64::MAX),
                    sum: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Adds `n` events at the current second. No-op when disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.add_at(now_sec(), n);
        }
    }

    /// Adds `n` events at an explicit second (test hook; does not gate
    /// on the kill switch).
    pub fn add_at(&self, sec: u64, n: u64) {
        let slot = &self.slots[(sec % SLOTS as u64) as usize];
        let st = slot.stamp.load(Ordering::Relaxed);
        if st != sec
            && slot
                .stamp
                .compare_exchange(st, sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            slot.sum.store(0, Ordering::Relaxed);
        }
        slot.sum.fetch_add(n, Ordering::Relaxed);
    }

    /// Total events recorded in the trailing window.
    pub fn total(&self) -> u64 {
        self.total_at(now_sec())
    }

    /// Total at an explicit second (test hook).
    pub fn total_at(&self, sec: u64) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                let st = s.stamp.load(Ordering::Relaxed);
                if st <= sec && sec - st < WINDOW_SECS {
                    s.sum.load(Ordering::Relaxed)
                } else {
                    0
                }
            })
            .sum()
    }

    /// The rolling per-second rate (total / [`WINDOW_SECS`]).
    pub fn per_second(&self) -> f64 {
        self.per_second_at(now_sec())
    }

    /// The rate at an explicit second (test hook).
    pub fn per_second_at(&self, sec: u64) -> f64 {
        self.total_at(sec) as f64 / WINDOW_SECS as f64
    }
}

struct LatencySlot {
    stamp: AtomicU64,
    buckets: Vec<AtomicU64>,
}

/// A rolling log2-bucketed histogram window (rolling percentiles).
pub struct LatencyWindow {
    slots: Vec<LatencySlot>,
}

impl Default for LatencyWindow {
    fn default() -> LatencyWindow {
        LatencyWindow::new()
    }
}

impl LatencyWindow {
    /// An empty window.
    pub fn new() -> LatencyWindow {
        LatencyWindow {
            slots: (0..SLOTS)
                .map(|_| LatencySlot {
                    stamp: AtomicU64::new(u64::MAX),
                    buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
        }
    }

    /// Records one observation at the current second. No-op when
    /// disabled.
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.record_at(now_sec(), v);
        }
    }

    /// Records at an explicit second (test hook; does not gate on the
    /// kill switch).
    pub fn record_at(&self, sec: u64, v: u64) {
        let slot = &self.slots[(sec % SLOTS as u64) as usize];
        let st = slot.stamp.load(Ordering::Relaxed);
        if st != sec
            && slot
                .stamp
                .compare_exchange(st, sec, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        slot.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The trailing window merged into one snapshot for quantiles.
    pub fn merged(&self) -> HistogramSnapshot {
        self.merged_at(now_sec())
    }

    /// The merge at an explicit second (test hook).
    pub fn merged_at(&self, sec: u64) -> HistogramSnapshot {
        let mut merged = vec![0u64; BUCKETS];
        for slot in &self.slots {
            let st = slot.stamp.load(Ordering::Relaxed);
            if st <= sec && sec - st < WINDOW_SECS {
                for (m, b) in merged.iter_mut().zip(&slot.buckets) {
                    *m += b.load(Ordering::Relaxed);
                }
            }
        }
        HistogramSnapshot::from_buckets(merged)
    }
}

/// Rolling buffer-pool windows, fed by the storage layer's fault path.
pub struct PoolWindows {
    /// Page faults served from the pool.
    pub hits: RateWindow,
    /// Page faults that went to disk.
    pub misses: RateWindow,
}

impl PoolWindows {
    /// The rolling hit ratio in [0, 1], or `None` with no traffic.
    pub fn hit_ratio(&self) -> Option<f64> {
        let sec = now_sec();
        let hits = self.hits.total_at(sec);
        let misses = self.misses.total_at(sec);
        let total = hits + misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

/// The process-wide pool windows (storage records, servers render).
pub fn pool_windows() -> &'static PoolWindows {
    static GLOBAL: OnceLock<PoolWindows> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolWindows {
        hits: RateWindow::new(),
        misses: RateWindow::new(),
    })
}

/// Bound on tracked relations in [`TopRelations`].
pub const TOP_RELATIONS_CAP: usize = 64;

/// A bounded leaderboard of relations by rows streamed out of scans.
/// When full, a new relation displaces the current minimum only if it
/// streamed more rows — the board converges on the heavy hitters.
pub struct TopRelations {
    cap: usize,
    inner: Mutex<std::collections::BTreeMap<String, u64>>,
}

impl Default for TopRelations {
    fn default() -> TopRelations {
        TopRelations::new(TOP_RELATIONS_CAP)
    }
}

impl TopRelations {
    /// A board tracking at most `cap` relations.
    pub fn new(cap: usize) -> TopRelations {
        TopRelations {
            cap: cap.max(1),
            inner: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Credits `rows` streamed rows to `relation`. No-op when disabled
    /// or when `rows` is zero.
    pub fn record(&self, relation: &str, rows: u64) {
        if rows == 0 || !crate::enabled() {
            return;
        }
        let mut map = self.inner.lock().expect("top-relations poisoned");
        if let Some(v) = map.get_mut(relation) {
            *v += rows;
            return;
        }
        if map.len() >= self.cap {
            let min = map
                .iter()
                .min_by_key(|(_, &v)| v)
                .map(|(k, &v)| (k.clone(), v));
            match min {
                Some((_, v)) if v >= rows => return,
                Some((k, _)) => {
                    map.remove(&k);
                }
                None => {}
            }
        }
        map.insert(relation.to_string(), rows);
    }

    /// The top `n` relations by rows streamed, descending.
    pub fn top(&self, n: usize) -> Vec<(String, u64)> {
        let map = self.inner.lock().expect("top-relations poisoned");
        let mut all: Vec<(String, u64)> = map.iter().map(|(k, &v)| (k.clone(), v)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }
}

/// The process-wide streamed-rows leaderboard (scans record, `\top`
/// renders).
pub fn top_relations() -> &'static TopRelations {
    static GLOBAL: OnceLock<TopRelations> = OnceLock::new();
    GLOBAL.get_or_init(TopRelations::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_window_sums_only_the_trailing_minute() {
        let w = RateWindow::new();
        let base = 10_000u64;
        w.add_at(base, 5);
        w.add_at(base + 30, 7);
        assert_eq!(w.total_at(base + 30), 12);
        // The first burst ages out of the window.
        assert_eq!(w.total_at(base + 65), 7);
        // The ring lap reclaims the slot for the new second.
        w.add_at(base + SLOTS as u64, 3);
        assert_eq!(w.total_at(base + SLOTS as u64), 10);
        assert!((w.per_second_at(base + SLOTS as u64) - 10.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn latency_window_merges_percentiles() {
        let w = LatencyWindow::new();
        let base = 20_000u64;
        for _ in 0..97 {
            w.record_at(base, 100);
        }
        for _ in 0..3 {
            w.record_at(base + 1, 1_000_000);
        }
        let snap = w.merged_at(base + 1);
        assert_eq!(snap.count(), 100);
        assert!(snap.p50().unwrap() < 1_000);
        assert!(snap.p99().unwrap() >= 1_000_000 / 2);
        // Everything ages out.
        assert_eq!(w.merged_at(base + 200).count(), 0);
    }

    #[test]
    fn pool_hit_ratio_reflects_traffic() {
        let w = PoolWindows {
            hits: RateWindow::new(),
            misses: RateWindow::new(),
        };
        assert_eq!(w.hit_ratio(), None);
        w.hits.add_at(now_sec(), 3);
        w.misses.add_at(now_sec(), 1);
        let ratio = w.hit_ratio().unwrap();
        assert!((ratio - 0.75).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn top_relations_keeps_heavy_hitters() {
        crate::set_enabled(true);
        let t = TopRelations::new(2);
        t.record("a", 10);
        t.record("b", 5);
        t.record("c", 1); // below the minimum: not admitted
        assert_eq!(t.top(8).len(), 2);
        t.record("c", 50); // displaces b
        let top = t.top(8);
        assert_eq!(top[0], ("c".to_string(), 50));
        assert_eq!(top[1], ("a".to_string(), 10));
        t.record("a", 5); // existing keys accumulate
        assert_eq!(t.top(1)[0], ("c".to_string(), 50));
        assert_eq!(t.top(8)[1], ("a".to_string(), 15));
    }
}
