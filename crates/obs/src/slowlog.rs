//! A bounded log of the worst recent requests, with their plans.
//!
//! ## The eviction rule
//!
//! The log is a FIFO ring bounded at [`SLOWLOG_CAPACITY`] entries
//! (32 by default): when a 33rd entry arrives, the **oldest** entry is
//! evicted, exactly like the wire protocol's stale-Cancel bound
//! (`MAX_STALE_CANCELS`, 64, FIFO). The bound is on *entries*, not
//! bytes — query text and plan text are stored verbatim — so a burst
//! of slow requests can rotate the whole log; the evicted count is
//! kept so `\metrics` can report how much history was dropped. Entries
//! are whatever the recording component deems slow (the server records
//! every request at or above its threshold); "worst" therefore means
//! the most recent qualifying requests, not a global top-K.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default bound on retained entries (FIFO-evicted beyond this).
pub const SLOWLOG_CAPACITY: usize = 32;

/// One retained request: what ran, how long it took, and its plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request kind (e.g. `query`, `execute`).
    pub kind: &'static str,
    /// The request text (query text, or a short op description).
    pub text: String,
    /// End-to-end wall time, in nanoseconds.
    pub total_ns: u64,
    /// The physical plan, when the request had one.
    pub plan: Option<String>,
    /// The trace id of the request that was admitted (0 = none), so a
    /// slowlog line can be joined back to the client that holds it.
    pub trace: u128,
}

struct Inner {
    entries: VecDeque<SlowEntry>,
    evicted: u64,
}

/// The bounded slow-request log. `record` takes one short mutex — it
/// runs at most once per request, never inside an operator hot loop.
pub struct SlowLog {
    cap: usize,
    inner: Mutex<Inner>,
}

impl Default for SlowLog {
    fn default() -> SlowLog {
        SlowLog::new(SLOWLOG_CAPACITY)
    }
}

impl SlowLog {
    /// A log retaining at most `cap` entries (oldest evicted first).
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                evicted: 0,
            }),
        }
    }

    /// Appends an entry, FIFO-evicting the oldest when full.
    pub fn record(&self, entry: SlowEntry) {
        let mut inner = self.inner.lock().expect("slowlog poisoned");
        if inner.entries.len() >= self.cap {
            inner.entries.pop_front();
            inner.evicted += 1;
        }
        inner.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.inner
            .lock()
            .expect("slowlog poisoned")
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// How many entries have been FIFO-evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("slowlog poisoned").evicted
    }

    /// Renders the log as Prometheus-comment lines (`# slowlog: …`),
    /// one per entry, slowest first, safe to append to an exposition
    /// document (comments other than HELP/TYPE are ignored by
    /// scrapers). Newlines inside texts and plans are flattened so
    /// each entry stays one line.
    pub fn render_comments(&self) -> String {
        let inner = self.inner.lock().expect("slowlog poisoned");
        let mut sorted: Vec<&SlowEntry> = inner.entries.iter().collect();
        sorted.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        let mut out = format!(
            "# slowlog: {} entr{} retained (cap {}), {} evicted\n",
            inner.entries.len(),
            if inner.entries.len() == 1 { "y" } else { "ies" },
            self.cap,
            inner.evicted
        );
        for e in sorted {
            let text = e.text.replace('\n', " ");
            let plan = e
                .plan
                .as_deref()
                .map(|p| p.trim_end().replace('\n', " | "))
                .unwrap_or_else(|| "-".to_string());
            let trace = if e.trace == 0 {
                "-".to_string()
            } else {
                crate::trace::render(e.trace)
            };
            out.push_str(&format!(
                "# slowlog: {} ns kind={} trace={trace} text={text:?} plan={plan:?}\n",
                e.total_ns, e.kind
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> SlowEntry {
        SlowEntry {
            kind: "query",
            text: format!("q{n}"),
            total_ns: n,
            plan: None,
            trace: 0,
        }
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let log = SlowLog::new(3);
        for n in 1..=5 {
            log.record(entry(n));
        }
        let kept: Vec<u64> = log.entries().iter().map(|e| e.total_ns).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(log.evicted(), 2);
    }

    #[test]
    fn comments_carry_the_trace_id() {
        crate::set_enabled(true);
        let log = SlowLog::new(4);
        log.record(SlowEntry {
            trace: 0xabcd,
            ..entry(9)
        });
        let text = log.render_comments();
        assert!(
            text.contains(&format!("trace={}", crate::trace::render(0xabcd))),
            "{text}"
        );
        log.record(entry(1));
        assert!(log.render_comments().contains("trace=-"));
    }

    #[test]
    fn comments_render_slowest_first() {
        let log = SlowLog::new(8);
        log.record(entry(10));
        log.record(entry(500));
        log.record(entry(20));
        let text = log.render_comments();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("3 entries retained (cap 8), 0 evicted"));
        assert!(lines[1].contains("500 ns"), "{text}");
        assert!(lines[2].contains("20 ns"), "{text}");
        assert!(lines[3].contains("10 ns"), "{text}");
        for line in &lines {
            assert!(line.starts_with('#'), "{line}");
        }
    }
}
