//! Lock-cheap metric primitives: counters, gauges, and log2-bucketed
//! histograms.
//!
//! Every primitive is a thin wrapper over atomics with `Relaxed`
//! ordering — recording is wait-free and never takes a lock, so the
//! write path of the engine can record from the group-commit leader,
//! the WAL append, or a query operator without serializing on the
//! metrics layer. Reads (snapshots, percentiles) tolerate being
//! slightly torn against concurrent writers; they are monitoring
//! reads, not transactional ones.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count (a Prometheus `counter`).
///
/// Also usable as a plain atomic cell ([`Counter::store`],
/// [`Counter::fetch_max`]) so per-instance stats structs like
/// `CommitStats` can delegate to it as their one source of truth.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the cell (for last-value cells, not true counters).
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the cell to `v` if it is larger (for high-water marks).
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
}

/// A value that can go up and down (a Prometheus `gauge`), e.g. active
/// connections.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` and returns the **previous** value, so the gauge can
    /// double as an admission counter (e.g. claim a connection slot and
    /// learn atomically whether the limit was already reached).
    pub fn fetch_add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` (for `i ≥ 1`) counts values
/// in `[2^(i-1), 2^i - 1]`; bucket 0 counts zeros. `u64::MAX` lands in
/// bucket 64.
pub(crate) const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, batch sizes, …).
///
/// Recording is one relaxed `fetch_add` into the value's power-of-two
/// bucket plus count/sum updates — no locks, no allocation. Quantile
/// estimates come from bucket upper bounds, so an estimate `e` of a
/// true quantile `q ≥ 1` satisfies `q ≤ e < 2q` (a factor-of-two
/// bracket, exact for zero). The proptest suite pins this bound
/// against a sorted-vector oracle.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index for a value: 0 for 0, else `64 - leading_zeros`.
pub(crate) fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold.
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the buckets for rendering and quantile
    /// extraction. Torn reads against concurrent writers are possible
    /// and harmless (the snapshot is a monitoring view).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// A frozen copy of a [`Histogram`]'s buckets, for quantiles and
/// rendering.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw per-bucket counts (the windowed
    /// metrics layer merges per-second buckets into one of these).
    pub(crate) fn from_buckets(buckets: Vec<u64>) -> HistogramSnapshot {
        HistogramSnapshot { buckets }
    }

    /// Total observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Per-bucket counts, index `i` covering `[2^(i-1), 2^i - 1]`
    /// (bucket 0 covers exactly zero).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The upper bound of bucket `i` — the largest value it can hold.
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper_bound(i)
    }

    /// An upper-bound estimate of the `q`-quantile (`0 < q ≤ 1`): the
    /// upper bound of the bucket holding the ⌈q·count⌉-th smallest
    /// observation. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// The median estimate (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_bracket_their_values() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_of(v);
            assert!(v <= bucket_upper_bound(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} above bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn quantiles_are_factor_two_estimates() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.p50().unwrap();
        assert!((500..1000).contains(&p50), "p50 = {p50}");
        let p99 = s.p99().unwrap();
        assert!((990..1980).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::new().snapshot().p50(), None);
    }

    #[test]
    fn counter_and_gauge_cells() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.fetch_max(3);
        assert_eq!(c.get(), 5);
        c.fetch_max(9);
        assert_eq!(c.get(), 9);
        c.store(2);
        assert_eq!(c.get(), 2);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
