//! The metrics registry under fire: an 8-thread counter/histogram
//! hammer (no lost updates), percentile estimates checked against a
//! sorted-vector oracle on random inputs, and span-tree nesting.

use hrdm_obs::{with_trace, Counter, Gauge, Histogram, Registry, Span};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Concurrency: relaxed atomics still lose nothing.
// ---------------------------------------------------------------------------

const THREADS: usize = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn eight_thread_counter_hammer_loses_no_updates() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            // Half the threads race to *register* the same families too,
            // not just to record — registration is get-or-create.
            let c = registry.counter("hammer_total", "hammered counter");
            let g = registry.gauge("hammer_gauge", "hammered gauge");
            for i in 0..PER_THREAD {
                c.inc();
                if (t + i as usize).is_multiple_of(2) {
                    g.inc();
                } else {
                    g.dec();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter_value("hammer_total"),
        Some(THREADS as u64 * PER_THREAD)
    );
    // Each thread's alternating inc/dec nets to zero over an even count.
    let g = registry.gauge("hammer_gauge", "hammered gauge");
    assert_eq!(g.get(), 0);
}

#[test]
fn eight_thread_histogram_hammer_loses_no_observations() {
    let h = Arc::new(Histogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = Arc::clone(&h);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                // Spread observations across many buckets.
                h.record((t as u64 + 1) * (i % 1024));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(h.count(), total);
    let snap = h.snapshot();
    assert_eq!(snap.count(), total);
    assert_eq!(snap.buckets().iter().sum::<u64>(), total);
}

#[test]
fn shared_cells_see_updates_from_all_handles() {
    let registry = Registry::new();
    let mine = Arc::new(Counter::new());
    let registered = registry.register_counter("shared_total", "a shared cell", Arc::clone(&mine));
    mine.add(3);
    registered.add(4);
    assert_eq!(registry.counter_value("shared_total"), Some(7));

    let gauge = Arc::new(Gauge::new());
    registry.register_gauge("shared_gauge", "a shared gauge", Arc::clone(&gauge));
    gauge.set(5);
    assert!(registry.render_prometheus().contains("shared_gauge 5"));
}

// ---------------------------------------------------------------------------
// Percentiles vs a sorted-vector oracle.
// ---------------------------------------------------------------------------

proptest! {
    /// For any observation set and quantile, the histogram's estimate
    /// brackets the oracle's exact answer: `exact ≤ estimate`, and
    /// `estimate < 2·exact` when `exact ≥ 1` (log2 buckets can only
    /// round *up*, by less than one power of two). A zero oracle value
    /// must be estimated exactly.
    #[test]
    fn quantile_estimates_bracket_the_oracle(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 1u32..=100,
    ) {
        let q = q as f64 / 100.0;
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = h.snapshot().quantile(q).expect("non-empty");
        prop_assert!(estimate >= exact, "estimate {estimate} < exact {exact}");
        if exact == 0 {
            prop_assert_eq!(estimate, 0);
        } else {
            prop_assert!(
                estimate < 2 * exact,
                "estimate {} not within 2x of exact {}", estimate, exact
            );
        }
    }

    /// count/sum are exact regardless of input.
    #[test]
    fn count_and_sum_are_exact(values in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }
}

// ---------------------------------------------------------------------------
// Span trees.
// ---------------------------------------------------------------------------

#[test]
fn span_trees_nest_like_the_call_graph_across_depths() {
    fn descend(depth: usize) {
        let span = Span::enter("level");
        if depth > 0 {
            descend(depth - 1);
            descend(depth - 1);
        }
        span.record_rows(depth as u64);
    }
    let ((), roots) = with_trace(|| descend(3));
    assert_eq!(roots.len(), 1);
    fn check(node: &hrdm_obs::TraceNode, depth: usize) {
        assert_eq!(node.rows, Some(depth as u64));
        let expected_children = if depth > 0 { 2 } else { 0 };
        assert_eq!(node.children.len(), expected_children);
        for c in &node.children {
            assert!(node.wall_ns >= c.wall_ns, "parent time includes child");
            check(c, depth - 1);
        }
    }
    check(&roots[0], 3);
}

#[test]
fn sibling_traces_do_not_interleave_across_threads() {
    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let ((), roots) = with_trace(|| {
                let outer = Span::enter("outer");
                let _inner = Span::enter("inner");
                outer.record_rows(t);
            });
            (t, roots)
        }));
    }
    for h in handles {
        let (t, roots) = h.join().unwrap();
        // Each thread sees exactly its own tree: one root, one child.
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].rows, Some(t));
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "inner");
    }
}
