//! `hrdmd` — the HRDM network server: a thread-per-connection TCP
//! front end over one shared [`ConcurrentDatabase`].
//!
//! ## Execution model
//!
//! * Every connection gets a **session**: a reader thread that decodes
//!   frames off the socket (and routes `Cancel` out of band) and a worker
//!   thread that serves requests in order, writing responses back.
//! * **Reads** (`Query`, `Prepare`, `Stats`) run against a per-request
//!   [`DbSnapshot`](hrdm_storage::DbSnapshot) — the same snapshot-isolated,
//!   zero-lock pipeline in-process readers use, so `EXPLAIN`, index scans,
//!   and partition pruning all work unchanged over the wire.
//! * **Writes** (`Execute`) funnel into the group-commit queue of the
//!   shared database; concurrent clients' operations form batches exactly
//!   like concurrent in-process writers (one fsync per batch).
//!
//! ## Limits (the server's DoS posture)
//!
//! * [`ServerConfig::max_connections`] session slots; a connection beyond
//!   that is answered with an `Unavailable` error frame and closed.
//! * [`ServerConfig::max_result_rows`] / [`ServerConfig::max_result_bytes`]
//!   cap each result stream; exceeding either turns the stream into a
//!   `Limit` error instead of unbounded output.
//! * [`ServerConfig::read_timeout`] kills **idle** sessions (no request in
//!   flight, nothing arriving); a session mid-request is never timed out
//!   by its own silence.
//! * Frame length declarations above [`crate::frame::MAX_FRAME_BYTES`] are
//!   rejected before any allocation.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, closes every session's read
//! half (idle readers wake immediately), then waits for in-flight requests
//! to finish — a write mid-group-commit is drained, never torn.

use crate::frame::{
    write_frame, Frame, FrameError, ServerStats, WireError, WireEvent, WriteOp, PROTO_VERSION,
};
use hrdm_obs::{
    recorder, Counter, EventKind, Gauge, Histogram, LatencyWindow, RateWindow, Registry, SlowEntry,
    SlowLog,
};
use hrdm_query::{
    explain_analyze_query_text, explain_query_text, stream_query_on_snapshot,
    strip_explain_analyze, ExecError, ExecOptions, PipelineError, QueryResult, QueryStream,
    StreamedQuery,
};
use hrdm_storage::ConcurrentDatabase;
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance. `Default` is sized for tests and
/// small deployments; `hrdmd` exposes each knob as a flag.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum simultaneous sessions; further connections are refused
    /// with an `Unavailable` error frame.
    pub max_connections: usize,
    /// Maximum rows one result stream may carry.
    pub max_result_rows: u64,
    /// Maximum encoded bytes one result stream may carry.
    pub max_result_bytes: u64,
    /// Tuples per streamed `RowChunk` frame (also the cancellation
    /// granularity: the cancel flag is checked between chunks).
    pub chunk_rows: usize,
    /// How long an **idle** session may sit before being closed. `None`
    /// disables the idle kill.
    pub read_timeout: Option<Duration>,
    /// Server name reported in `HelloAck`.
    pub server_name: String,
    /// Requests at or above this wall time are recorded in the
    /// slow-query log served by the `Metrics` frame (`\metrics`).
    pub slow_query_threshold: Duration,
    /// When set, an HTTP/1.1 listener is bound here serving
    /// `GET /metrics` (Prometheus exposition) and `GET /healthz`
    /// (`hrdmd --http-metrics <addr>`). `None` disables the plane.
    pub http_metrics: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            max_result_rows: 1_000_000,
            max_result_bytes: 256 * 1024 * 1024,
            chunk_rows: 256,
            read_timeout: Some(Duration::from_secs(30)),
            server_name: format!("hrdmd/{}", env!("CARGO_PKG_VERSION")),
            slow_query_threshold: Duration::from_millis(25),
            http_metrics: None,
        }
    }
}

/// Per-instance observability shared by every session: the cells
/// `\stats` reports, per-kind request-latency histograms, byte
/// counters, and the slow-query log. Every cell lives in the server's
/// own [`Registry`] — the *same* handles back both `ServerStats` and
/// the Prometheus exposition, so the two can never disagree. (The
/// registry is per-instance, not [`hrdm_obs::global`], because tests
/// run many servers per process and each must count only its own
/// traffic.)
struct Counters {
    registry: Registry,
    accepted: Arc<Counter>,
    active: Arc<Gauge>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    requests: Arc<Counter>,
    cancelled: Arc<Counter>,
    plan_ns: Arc<Counter>,
    exec_ns: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    rows_streamed: Arc<Counter>,
    batches_streamed: Arc<Counter>,
    request_ns: Arc<Histogram>,
    request_ns_query: Arc<Histogram>,
    request_ns_prepare: Arc<Histogram>,
    request_ns_execute: Arc<Histogram>,
    request_ns_checkpoint: Arc<Histogram>,
    request_ns_stats: Arc<Histogram>,
    request_ns_metrics: Arc<Histogram>,
    slowlog: SlowLog,
    /// Rolling 60s request count — the live QPS behind `\top` and the
    /// `hrdm_net_qps` gauge.
    requests_window: RateWindow,
    /// Rolling 60s request-latency window — the rolling p50/p99.
    request_ns_window: LatencyWindow,
    /// Rolling 60s streamed-row count.
    rows_window: RateWindow,
}

impl Counters {
    fn new() -> Counters {
        let registry = Registry::new();
        let accepted = registry.counter(
            "hrdm_net_connections_accepted_total",
            "Connections accepted since server start",
        );
        let active = registry.gauge(
            "hrdm_net_connections_active",
            "Sessions currently holding a connection slot",
        );
        let frames_in = registry.counter(
            "hrdm_net_frames_in_total",
            "Frames decoded off client sockets",
        );
        let frames_out = registry.counter(
            "hrdm_net_frames_out_total",
            "Frames written to client sockets",
        );
        let requests = registry.counter(
            "hrdm_net_requests_total",
            "Requests served (post-handshake frames)",
        );
        let cancelled = registry.counter(
            "hrdm_net_requests_cancelled_total",
            "Requests answered with a Cancelled error",
        );
        let plan_ns = registry.counter(
            "hrdm_net_plan_ns_total",
            "Cumulative query planning time, nanoseconds",
        );
        let exec_ns = registry.counter(
            "hrdm_net_exec_ns_total",
            "Cumulative query execution time, nanoseconds",
        );
        let bytes_in = registry.counter(
            "hrdm_net_bytes_in_total",
            "Request bytes read off client sockets",
        );
        let bytes_out = registry.counter(
            "hrdm_net_bytes_out_total",
            "Response bytes written to client sockets",
        );
        let rows_streamed = registry.counter(
            "hrdm_net_rows_streamed_total",
            "Result rows streamed to clients from live executors",
        );
        let batches_streamed = registry.counter(
            "hrdm_net_batches_streamed_total",
            "Result batches streamed to clients from live executors",
        );
        let hist = |kind: &str| {
            registry.histogram(
                &format!("hrdm_net_request_ns_{kind}"),
                &format!("End-to-end latency of {kind} requests, nanoseconds"),
            )
        };
        let request_ns = registry.histogram(
            "hrdm_net_request_ns",
            "End-to-end request latency, nanoseconds (all kinds)",
        );
        Counters {
            accepted,
            active,
            frames_in,
            frames_out,
            requests,
            cancelled,
            plan_ns,
            exec_ns,
            bytes_in,
            bytes_out,
            rows_streamed,
            batches_streamed,
            request_ns,
            request_ns_query: hist("query"),
            request_ns_prepare: hist("prepare"),
            request_ns_execute: hist("execute"),
            request_ns_checkpoint: hist("checkpoint"),
            request_ns_stats: hist("stats"),
            request_ns_metrics: hist("metrics"),
            slowlog: SlowLog::default(),
            requests_window: RateWindow::new(),
            request_ns_window: LatencyWindow::new(),
            rows_window: RateWindow::new(),
            registry,
        }
    }

    /// The latency histogram and slow-log kind for a client request
    /// frame (`None` for frames that are not valid requests).
    fn request_kind(&self, frame: &Frame) -> Option<(&'static str, Arc<Histogram>)> {
        match frame {
            Frame::Query { .. } => Some(("query", Arc::clone(&self.request_ns_query))),
            Frame::Prepare { .. } => Some(("prepare", Arc::clone(&self.request_ns_prepare))),
            Frame::Execute { .. } => Some(("execute", Arc::clone(&self.request_ns_execute))),
            Frame::Checkpoint => Some(("checkpoint", Arc::clone(&self.request_ns_checkpoint))),
            Frame::Stats => Some(("stats", Arc::clone(&self.request_ns_stats))),
            Frame::Metrics => Some(("metrics", Arc::clone(&self.request_ns_metrics))),
            _ => None,
        }
    }
}

pub(crate) struct Shared {
    db: Arc<ConcurrentDatabase>,
    config: ServerConfig,
    counters: Counters,
    shutdown: AtomicBool,
    /// Stops the HTTP metrics listener (raised *after* the drain, so
    /// `/healthz` can report 503 while sessions finish).
    http_stop: AtomicBool,
    /// Read-half handles of live sessions, for shutdown to wake idle
    /// readers. Keyed by session id.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    next_session: AtomicU64,
    started: Instant,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let snap = self.db.snapshot();
        let commit = self.db.stats();
        let request_ns = self.counters.request_ns.snapshot();
        ServerStats {
            connections_accepted: self.counters.accepted.get(),
            connections_active: self.counters.active.get().max(0) as u64,
            frames_in: self.counters.frames_in.get(),
            frames_out: self.counters.frames_out.get(),
            requests: self.counters.requests.get(),
            cancelled: self.counters.cancelled.get(),
            plan_ns: self.counters.plan_ns.get(),
            exec_ns: self.counters.exec_ns.get(),
            commit_batches: commit.batches,
            commit_ops: commit.ops,
            commit_max_batch: commit.max_batch as u64,
            commit_last_batch: commit.last_batch as u64,
            snapshot_version: snap.version(),
            bytes_in: self.counters.bytes_in.get(),
            bytes_out: self.counters.bytes_out.get(),
            request_p50_ns: request_ns.p50().unwrap_or(0),
            request_p95_ns: request_ns.p95().unwrap_or(0),
            request_p99_ns: request_ns.p99().unwrap_or(0),
            rows_streamed: self.counters.rows_streamed.get(),
            batches_streamed: self.counters.batches_streamed.get(),
            qps_milli_60s: (self.counters.requests_window.per_second() * 1e3) as u64,
            p50_60s_ns: self.counters.request_ns_window.merged().p50().unwrap_or(0),
            p99_60s_ns: self.counters.request_ns_window.merged().p99().unwrap_or(0),
            pool_hit_permille_60s: hrdm_obs::window::pool_windows()
                .hit_ratio()
                .map(|r| (r * 1e3) as u64)
                .unwrap_or(u64::MAX),
            uptime_secs: self.started.elapsed().as_secs(),
            top_streamed: hrdm_obs::window::top_relations().top(8),
            relations: snap
                .relation_names()
                .map(|name| {
                    let count = snap.relation(name).map(|r| r.len() as u64).unwrap_or(0);
                    (name.to_string(), count)
                })
                .collect(),
        }
    }

    /// The full Prometheus exposition the `Metrics` frame (and the
    /// HTTP `/metrics` endpoint) serves: this server's own families,
    /// then the process-wide engine families (WAL, checkpoint, group
    /// commit, query operators — disjoint name prefixes, so
    /// concatenation is a valid document), then build info, the
    /// rolling-window gauges, the flight-recorder summary, and the
    /// slow-query log as `# slowlog:` comment lines.
    pub(crate) fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.counters.registry.render_prometheus();
        out.push_str(&hrdm_obs::global().render_prometheus());
        out.push_str(&hrdm_obs::registry::render_build_info(
            env!("CARGO_PKG_VERSION"),
            option_env!("HRDM_GIT_HASH").unwrap_or("unknown"),
            self.started.elapsed().as_secs(),
        ));
        let gauge = |out: &mut String, name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            &mut out,
            "hrdm_net_qps",
            "Requests per second over the trailing 60s.",
            format!("{:.3}", self.counters.requests_window.per_second()),
        );
        gauge(
            &mut out,
            "hrdm_net_request_p50_60s_ns",
            "Rolling 60s request latency p50, nanoseconds.",
            self.counters
                .request_ns_window
                .merged()
                .p50()
                .unwrap_or(0)
                .to_string(),
        );
        gauge(
            &mut out,
            "hrdm_net_request_p99_60s_ns",
            "Rolling 60s request latency p99, nanoseconds.",
            self.counters
                .request_ns_window
                .merged()
                .p99()
                .unwrap_or(0)
                .to_string(),
        );
        gauge(
            &mut out,
            "hrdm_net_rows_streamed_60s",
            "Result rows streamed over the trailing 60s.",
            self.counters.rows_window.total().to_string(),
        );
        if let Some(ratio) = hrdm_obs::window::pool_windows().hit_ratio() {
            gauge(
                &mut out,
                "hrdm_pool_hit_ratio_60s",
                "Rolling 60s buffer-pool hit ratio in [0, 1].",
                format!("{ratio:.4}"),
            );
        }
        out.push_str(&recorder().render_summary());
        out.push_str(&self.counters.slowlog.render_comments());
        out
    }

    /// Whether the server is draining (shutdown requested): `/healthz`
    /// flips to 503 the moment this is true.
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Whether the HTTP listener should exit (raised after the drain).
    pub(crate) fn http_stopped(&self) -> bool {
        self.http_stop.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server. [`Server::spawn`] starts the accept
/// loop on a background thread and returns the handle used to observe and
/// stop it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) over
    /// `db` with `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Arc<ConcurrentDatabase>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                db,
                config,
                counters: Counters::new(),
                shutdown: AtomicBool::new(false),
                http_stop: AtomicBool::new(false),
                sessions: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (the real port, when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread (plus the HTTP
    /// metrics listener, when [`ServerConfig::http_metrics`] is set).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let accept_shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let (http_addr, http_join) = match &shared.config.http_metrics {
            Some(http) => {
                let (a, j) = crate::http::spawn(http, Arc::clone(&shared))?;
                (Some(a), Some(j))
            }
            None => (None, None),
        };
        let join = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ServerHandle {
            addr,
            http_addr,
            shared,
            join: Some(join),
            http_join,
        })
    }

    /// Runs the accept loop on the calling thread (the `hrdmd` binary's
    /// mode). Returns only when the shutdown flag is raised by another
    /// holder of the shared state — which a plain binary run never does,
    /// so in practice: runs forever.
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        if let Some(addr) = &shared.config.http_metrics {
            crate::http::spawn(addr, Arc::clone(&shared))?;
        }
        accept_loop(&self.listener, &shared);
        Ok(())
    }
}

/// A running server: its address, counters, and the shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
    http_join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP metrics address, when the plane is enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Raises the drain flag without waiting: new requests are refused
    /// and `/healthz` flips to 503, but sessions and the HTTP listener
    /// stay up. [`ServerHandle::shutdown`] still completes the stop.
    pub fn begin_drain(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The server-side view of the counters (the same numbers a `Stats`
    /// request returns, without a connection).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The Prometheus text exposition a `Metrics` request returns,
    /// without a connection: this server's families, the process-wide
    /// engine families, and the slow-query log.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Sessions currently holding a slot.
    pub fn active_connections(&self) -> u64 {
        self.shared.counters.active.get().max(0) as u64
    }

    /// Graceful shutdown: stop accepting, wake idle sessions, and wait
    /// (up to ~10 s) for in-flight requests — including writes queued for
    /// group commit — to drain.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the acceptor so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        // Close every session's read half: idle readers wake with EOF and
        // exit; a worker mid-request keeps its write half and finishes.
        {
            let sessions = self.shared.sessions.lock().expect("sessions lock");
            for stream in sessions.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.counters.active.get() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Only now stop the HTTP plane, so `/healthz` reported the drain.
        self.shared.http_stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.http_join.take() {
            let _ = join.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.counters.accepted.inc();
        // Claim a slot; over the limit, answer with a structured refusal
        // instead of silently dropping the connection.
        let prev = shared.counters.active.fetch_add(1);
        if prev >= shared.config.max_connections as i64 {
            shared.counters.active.dec();
            let mut stream = stream;
            let _ = write_frame(
                &mut stream,
                0,
                &Frame::Error {
                    error: WireError::Unavailable(format!(
                        "connection limit ({}) reached",
                        shared.config.max_connections
                    )),
                },
            );
            continue;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            // lint: atomic-ordering-ok(session ids only need uniqueness; no data is published through this counter)
            let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
            session(&shared, stream, session_id);
            // The slot is freed however the session ended — clean close,
            // protocol violation, or the client dying mid-frame.
            shared
                .sessions
                .lock()
                .expect("sessions lock")
                .remove(&session_id);
            shared.counters.active.dec();
        });
    }
}

/// What the reader thread hands the worker: request id, the trace id
/// the client stamped in the frame header, and the frame.
enum SessionEvent {
    /// Boxed: a `Frame` is large (inline payload buffers) and `Bad` is
    /// tiny; boxing keeps the channel slots small.
    Request(u64, u128, Box<Frame>),
    /// The peer violated the protocol; the worker reports and closes.
    Bad(String),
}

fn session(shared: &Arc<Shared>, stream: TcpStream, session_id: u64) {
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    shared.sessions.lock().expect("sessions lock").insert(
        session_id,
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    );
    let _ = reader_stream.set_read_timeout(shared.config.read_timeout);

    // Requests the reader has handed over but the worker has not finished.
    // The idle-timeout kill only fires when this is zero — a session busy
    // streaming a big result must not be killed for not *sending* bytes.
    let outstanding = Arc::new(AtomicI64::new(0));
    // Request ids cancelled out of band; checked between result chunks.
    let cancelled: Arc<Mutex<BTreeSet<u64>>> = Arc::new(Mutex::new(BTreeSet::new()));

    let (tx, rx) = mpsc::sync_channel::<SessionEvent>(16);
    let reader_shared = Arc::clone(shared);
    let reader_outstanding = Arc::clone(&outstanding);
    let reader_cancelled = Arc::clone(&cancelled);
    let reader = std::thread::spawn(move || {
        reader_loop(
            reader_stream,
            &reader_shared,
            &tx,
            &reader_outstanding,
            &reader_cancelled,
        );
    });

    recorder().record(EventKind::SessionOpen, format!("session={session_id}"));
    let mut stream = stream;
    worker_loop(shared, &mut stream, &rx, &outstanding, &cancelled);
    recorder().record(EventKind::SessionClose, format!("session={session_id}"));
    // Close the socket: the peer sees EOF instead of a silent stall, and
    // the reader (possibly parked in its read timeout) wakes immediately.
    let _ = stream.shutdown(Shutdown::Both);
    // Dropping the receiver unblocks the reader's next send; joining keeps
    // the thread from outliving the session's bookkeeping.
    drop(rx);
    let _ = reader.join();
}

/// Stale-cancel bound: cancels that raced past their request's
/// completion are re-recorded; keep only the most recent few so a
/// long-lived session cannot grow the set without bound.
const MAX_STALE_CANCELS: usize = 64;

fn reader_loop(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    tx: &mpsc::SyncSender<SessionEvent>,
    outstanding: &AtomicI64,
    cancelled: &Mutex<BTreeSet<u64>>,
) {
    loop {
        match read_frame_idle_aware(&mut stream) {
            Ok(None) => {
                // Timed out with zero bytes consumed — safe to retry.
                if outstanding.load(Ordering::SeqCst) > 0 {
                    // Busy serving — silence from the client is expected.
                    continue;
                }
                return; // idle kill
            }
            Ok(Some((req, trace, Frame::Cancel, bytes))) => {
                shared.counters.frames_in.inc();
                shared.counters.bytes_in.add(bytes);
                recorder().record_traced(trace, EventKind::Cancel, format!("req={req}"));
                let mut set = cancelled.lock().expect("cancel set lock");
                set.insert(req);
                while set.len() > MAX_STALE_CANCELS {
                    set.pop_first();
                }
            }
            Ok(Some((req, trace, frame, bytes))) => {
                shared.counters.frames_in.inc();
                shared.counters.bytes_in.add(bytes);
                outstanding.fetch_add(1, Ordering::SeqCst);
                if tx
                    .send(SessionEvent::Request(req, trace, Box::new(frame)))
                    .is_err()
                {
                    return; // worker gone
                }
            }
            // EOF, a dead peer, or a *mid-frame* stall longer than the
            // read timeout: fatal either way — after partial frame bytes
            // there is no way to resynchronize the stream.
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Protocol(msg)) => {
                // Framing is unrecoverable mid-stream; report and close.
                let _ = tx.send(SessionEvent::Bad(msg));
                return;
            }
        }
    }
}

/// Reads one frame, distinguishing an **idle** timeout from a mid-frame
/// one: the first byte is read with a plain `read`, so a timeout there
/// (`Ok(None)`) is guaranteed to have consumed nothing and the caller may
/// safely retry. Once any byte of a frame has arrived, the remainder is
/// read with `read_exact`, where a timeout is a fatal `Io` error — a
/// partially consumed frame cannot be resynchronized. The last tuple
/// element is the frame's total wire size (length prefix included), for
/// the `bytes_in` counter.
fn read_frame_idle_aware(
    stream: &mut TcpStream,
) -> Result<Option<(u64, u128, Frame, u64)>, FrameError> {
    use std::io::Read;
    let mut len_buf = [0u8; 4];
    loop {
        match stream.read(&mut len_buf[..1]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::from(
                    io::ErrorKind::UnexpectedEof,
                )))
            }
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    stream.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf);
    crate::frame::read_frame_after_len(stream, len)
        .map(|(req, trace, frame)| Some((req, trace, frame, 4 + u64::from(len))))
}

fn worker_loop(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    rx: &mpsc::Receiver<SessionEvent>,
    outstanding: &AtomicI64,
    cancelled: &Arc<Mutex<BTreeSet<u64>>>,
) {
    let mut hello_done = false;
    while let Ok(event) = rx.recv() {
        let (req, trace, frame) = match event {
            SessionEvent::Request(req, trace, frame) => (req, trace, *frame),
            SessionEvent::Bad(msg) => {
                let _ = send(
                    shared,
                    stream,
                    0,
                    &Frame::Error {
                        error: WireError::Protocol(msg),
                    },
                );
                return;
            }
        };
        // Install the client's trace id as the thread's ambient trace:
        // every response echoes it, and every span, event, and slowlog
        // entry recorded while serving this request is stamped with it.
        let _scope = hrdm_obs::trace::set_current(trace);
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = send(
                shared,
                stream,
                req,
                &Frame::Error {
                    error: WireError::Unavailable("server shutting down".into()),
                },
            );
            return;
        }
        let ok = if !hello_done {
            match handshake(shared, stream, req, &frame) {
                Some(()) => {
                    hello_done = true;
                    true
                }
                None => false,
            }
        } else {
            serve(shared, stream, req, frame, cancelled)
        };
        cancelled.lock().expect("cancel set lock").remove(&req);
        outstanding.fetch_sub(1, Ordering::SeqCst);
        if !ok {
            return;
        }
    }
}

/// Serves the mandatory first frame. `Some(())` when the session may
/// continue; `None` closes it (version mismatch, non-Hello opener, or a
/// dead socket).
fn handshake(shared: &Arc<Shared>, stream: &mut TcpStream, req: u64, frame: &Frame) -> Option<()> {
    match frame {
        Frame::Hello { version, .. } if *version == PROTO_VERSION => {
            send(
                shared,
                stream,
                req,
                &Frame::HelloAck {
                    version: PROTO_VERSION,
                    server: shared.config.server_name.clone(),
                },
            )
            .ok()?;
            Some(())
        }
        Frame::Hello { version, .. } => {
            let _ = send(shared, stream, req, &Frame::Error {
                error: WireError::Protocol(format!(
                    "protocol version mismatch: client speaks {version}, server speaks {PROTO_VERSION}"
                )),
            });
            None
        }
        other => {
            let _ = send(
                shared,
                stream,
                req,
                &Frame::Error {
                    error: WireError::Protocol(format!(
                        "expected Hello as the first frame, got kind {:#x}",
                        other.kind()
                    )),
                },
            );
            None
        }
    }
}

/// Serves one request. `false` ends the session (socket write failed).
fn serve(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    req: u64,
    frame: Frame,
    cancelled: &Arc<Mutex<BTreeSet<u64>>>,
) -> bool {
    shared.counters.requests.inc();
    let kind = shared.counters.request_kind(&frame);
    // Capture what the slow-query log would need before the frame is
    // consumed by dispatch.
    let slow_text = match &frame {
        Frame::Query { text } | Frame::Prepare { text } => Some(text.clone()),
        Frame::Execute { op } => Some(describe_op(op)),
        _ => None,
    };
    let started = Instant::now();
    let ok = match frame {
        Frame::Query { text } => serve_query(shared, stream, req, &text, cancelled),
        Frame::Prepare { text } => serve_prepare(shared, stream, req, &text),
        Frame::Execute { op } => serve_execute(shared, stream, req, op),
        Frame::Checkpoint => {
            let response = match shared.db.checkpoint() {
                Ok(()) => Frame::Ack { rows: 0 },
                Err(e) => Frame::Error {
                    error: WireError::from(&e),
                },
            };
            send(shared, stream, req, &response).is_ok()
        }
        Frame::Stats => {
            let stats = shared.stats();
            send(shared, stream, req, &Frame::StatsResult { stats }).is_ok()
        }
        Frame::Metrics => {
            let text = shared.metrics_text();
            send(shared, stream, req, &Frame::MetricsResult { text }).is_ok()
        }
        Frame::Events { limit } => {
            let events = recorder()
                .snapshot(limit.min(u64::from(u32::MAX)) as usize)
                .iter()
                .map(WireEvent::from_record)
                .collect();
            send(shared, stream, req, &Frame::EventsResult { events }).is_ok()
        }
        other => send(
            shared,
            stream,
            req,
            &Frame::Error {
                error: WireError::Protocol(format!(
                    "frame kind {:#x} is not a client request",
                    other.kind()
                )),
            },
        )
        .is_ok(),
    };
    let elapsed_ns = started.elapsed().as_nanos() as u64;
    shared.counters.request_ns.record(elapsed_ns);
    shared.counters.requests_window.add(1);
    shared.counters.request_ns_window.record(elapsed_ns);
    if let Some((kind, histogram)) = kind {
        histogram.record(elapsed_ns);
        let threshold = shared.config.slow_query_threshold.as_nanos() as u64;
        if elapsed_ns >= threshold {
            // The plan is re-derived from a fresh snapshot — cheap
            // relative to a request that just cleared the threshold,
            // and only queries have one.
            let plan = slow_text
                .as_deref()
                .filter(|_| kind == "query")
                .and_then(|text| {
                    explain_query_text(text, &*shared.db.snapshot()).unwrap_or_default()
                });
            let text = slow_text.unwrap_or_default();
            recorder().record(
                EventKind::SlowQuery,
                format!("kind={kind} ns={elapsed_ns} text={text}"),
            );
            recorder().anomaly(format!("slowlog admission: {kind} {elapsed_ns} ns"));
            shared.counters.slowlog.record(SlowEntry {
                kind,
                text,
                total_ns: elapsed_ns,
                plan,
                trace: hrdm_obs::trace::current().unwrap_or(0),
            });
        }
    }
    ok
}

/// A one-line description of a write op for the slow-query log.
fn describe_op(op: &WriteOp) -> String {
    match op {
        WriteOp::CreateRelation { name, .. } => format!("create relation {name}"),
        WriteOp::Insert { relation, .. } => format!("insert into {relation}"),
        WriteOp::Materialize { name, query } => format!("{name} := {query}"),
    }
}

fn serve_query(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    req: u64,
    text: &str,
    cancelled: &Arc<Mutex<BTreeSet<u64>>>,
) -> bool {
    if is_cancelled(cancelled, req) {
        shared.counters.cancelled.inc();
        return send(
            shared,
            stream,
            req,
            &Frame::Error {
                error: WireError::Cancelled,
            },
        )
        .is_ok();
    }
    let snap = shared.db.snapshot();
    // The executor pulls this probe between batches, so a Cancel frame
    // routed out of band by the reader thread aborts the scan itself —
    // within one batch boundary — not just the chunk loop.
    let probe_set = Arc::clone(cancelled);
    let opts = ExecOptions {
        batch_rows: shared.config.chunk_rows.max(1),
        max_rows: Some(shared.config.max_result_rows),
        cancel: Some(Arc::new(move || {
            probe_set
                .lock()
                .map(|set| set.contains(&req))
                .unwrap_or(false)
        })),
        ..ExecOptions::default()
    };
    let ok = match stream_query_on_snapshot(text, &*snap, &opts) {
        Ok(StreamedQuery::Rows(rows)) => {
            shared.counters.plan_ns.add(rows.plan_ns());
            let exec_started = Instant::now();
            let ok = stream_live(shared, stream, req, rows);
            shared
                .counters
                .exec_ns
                .add(exec_started.elapsed().as_nanos() as u64);
            ok
        }
        Ok(StreamedQuery::Lifespan { value, timing }) => {
            shared.counters.plan_ns.add(timing.plan_ns);
            shared.counters.exec_ns.add(timing.exec_ns);
            send(
                shared,
                stream,
                req,
                &Frame::LifespanResult { lifespan: value },
            )
            .is_ok()
        }
        Ok(StreamedQuery::Function { value, timing }) => {
            shared.counters.plan_ns.add(timing.plan_ns);
            shared.counters.exec_ns.add(timing.exec_ns);
            send(shared, stream, req, &Frame::FunctionResult { value }).is_ok()
        }
        Err(e) => {
            if matches!(e, PipelineError::Cancelled) {
                shared.counters.cancelled.inc();
            }
            send(
                shared,
                stream,
                req,
                &Frame::Error {
                    error: pipeline_error(&e),
                },
            )
            .is_ok()
        }
    };
    ok
}

/// Streams a live executor's batches as header + chunks + done. Each
/// `RowChunk` is encoded from a batch as the executor produces it, so the
/// first chunk reaches the client before the scan has finished, and a
/// Cancel (or the row cap) cuts the stream mid-scan. The byte cap is
/// enforced here, on actual encoded frame sizes.
fn stream_live(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    req: u64,
    mut rows: QueryStream<'_>,
) -> bool {
    if send(
        shared,
        stream,
        req,
        &Frame::RelationHeader {
            scheme: rows.scheme().clone(),
            rows: 0, // unknown until the stream drains; Done is authoritative
        },
    )
    .is_err()
    {
        return false;
    }
    let mut sent_rows: u64 = 0;
    let mut sent_bytes: u64 = 0;
    loop {
        match rows.next_batch() {
            Ok(Some(batch)) => {
                let n = batch.len() as u64;
                let frame = Frame::RowChunk {
                    tuples: batch.into_rows(),
                };
                let bytes = crate::frame::encode_frame_traced(
                    req,
                    hrdm_obs::trace::current().unwrap_or(0),
                    &frame,
                );
                sent_bytes += bytes.len() as u64;
                if sent_bytes > shared.config.max_result_bytes {
                    return send(
                        shared,
                        stream,
                        req,
                        &Frame::Error {
                            error: WireError::Limit(format!(
                                "result stream exceeds the {}-byte cap",
                                shared.config.max_result_bytes
                            )),
                        },
                    )
                    .is_ok();
                }
                use std::io::Write;
                shared.counters.frames_out.inc();
                shared.counters.bytes_out.add(bytes.len() as u64);
                if stream.write_all(&bytes).is_err() {
                    return false;
                }
                sent_rows += n;
                shared.counters.rows_streamed.add(n);
                shared.counters.rows_window.add(n);
                shared.counters.batches_streamed.inc();
            }
            Ok(None) => return send(shared, stream, req, &Frame::Done { rows: sent_rows }).is_ok(),
            Err(e) => {
                let error = match e {
                    ExecError::Cancelled => {
                        shared.counters.cancelled.inc();
                        WireError::Cancelled
                    }
                    ExecError::RowLimit(n) => WireError::Limit(format!(
                        "result exceeds the cap of {n} rows; the stream was cut off"
                    )),
                    ExecError::Eval(h) => WireError::from(&h),
                };
                return send(shared, stream, req, &Frame::Error { error }).is_ok();
            }
        }
    }
}

fn serve_prepare(shared: &Arc<Shared>, stream: &mut TcpStream, req: u64, text: &str) -> bool {
    let snap = shared.db.snapshot();
    // `EXPLAIN ANALYZE <query>` rides the Prepare/PlanText plumbing:
    // same request frame, same response kind, but the plan comes back
    // annotated with measured per-operator times and row counts.
    let outcome = match strip_explain_analyze(text) {
        Some(query) => explain_analyze_query_text(query, &*snap),
        None => explain_query_text(text, &*snap),
    };
    let response = match outcome {
        Ok(Some(text)) => Frame::PlanText { text },
        Ok(None) => Frame::Error {
            error: WireError::Unsupported(
                "only relation-sorted queries have a relational plan".into(),
            ),
        },
        Err(e) => Frame::Error {
            error: pipeline_error(&e),
        },
    };
    send(shared, stream, req, &response).is_ok()
}

fn serve_execute(shared: &Arc<Shared>, stream: &mut TcpStream, req: u64, op: WriteOp) -> bool {
    let response = match op {
        WriteOp::CreateRelation { name, scheme } => {
            match shared.db.create_relation(&name, scheme) {
                Ok(()) => Frame::Ack { rows: 0 },
                Err(e) => Frame::Error {
                    error: WireError::from(&e),
                },
            }
        }
        WriteOp::Insert { relation, tuple } => match shared.db.insert(&relation, tuple) {
            Ok(()) => Frame::Ack { rows: 1 },
            Err(e) => Frame::Error {
                error: WireError::from(&e),
            },
        },
        WriteOp::Materialize { name, query } => serve_materialize(shared, &name, &query),
    };
    send(shared, stream, req, &response).is_ok()
}

/// The wire form of the shell's `name := query`: evaluate against the
/// current snapshot, then create-or-replace through one atomic
/// group-commit group ([`ConcurrentDatabase::materialize`] — racing
/// materializations both succeed, and readers never see the
/// created-but-empty intermediate state).
fn serve_materialize(shared: &Arc<Shared>, name: &str, query: &str) -> Frame {
    let snap = shared.db.snapshot();
    let r = match hrdm_query::run_query_on_snapshot(query, &*snap) {
        Ok(QueryResult::Relation(r)) => r,
        Ok(_) => {
            return Frame::Error {
                error: WireError::Unsupported(
                    "only relation-sorted queries can be materialized".into(),
                ),
            }
        }
        Err(e) => {
            return Frame::Error {
                error: pipeline_error(&e),
            }
        }
    };
    let rows = r.len() as u64;
    match shared.db.materialize(name, r) {
        Ok(()) => Frame::Ack { rows },
        Err(e) => Frame::Error {
            error: WireError::from(&e),
        },
    }
}

fn pipeline_error(e: &PipelineError) -> WireError {
    match e {
        PipelineError::Parse(p) => WireError::Parse(p.to_string()),
        PipelineError::Eval(m) => WireError::from(m),
        PipelineError::Cancelled => WireError::Cancelled,
        PipelineError::Limit(m) => WireError::Limit(m.clone()),
    }
}

fn is_cancelled(cancelled: &Mutex<BTreeSet<u64>>, req: u64) -> bool {
    cancelled.lock().expect("cancel set lock").contains(&req)
}

/// Encodes and writes one response frame, echoing the thread's ambient
/// trace id (installed by the worker loop from the request header) so
/// the client can match responses to the trace it minted. Error frames
/// double as anomaly triggers: the flight recorder freezes the trailing
/// event window for each one.
fn send(shared: &Arc<Shared>, stream: &mut TcpStream, req: u64, frame: &Frame) -> io::Result<()> {
    use std::io::Write;
    let trace = hrdm_obs::trace::current().unwrap_or(0);
    if let Frame::Error { error } = frame {
        recorder().record_traced(trace, EventKind::Error, format!("req={req} {error}"));
        recorder().anomaly(format!("error frame: {error}"));
    }
    let bytes = crate::frame::encode_frame_traced(req, trace, frame);
    shared.counters.frames_out.inc();
    shared.counters.bytes_out.add(bytes.len() as u64);
    stream.write_all(&bytes)
}
