//! A synchronous client for the `hrdmd` wire protocol.
//!
//! The client shares the frame codec with the server by construction
//! (both sides call [`crate::frame`]), so a protocol change cannot leave
//! them speaking different dialects. One [`Client`] owns one TCP
//! connection; requests run one at a time and responses (including
//! streamed relation results) are collected synchronously. A
//! [`Canceller`] — cloned off the same socket — can abort the in-flight
//! request from another thread.

use crate::frame::{
    assemble_relation, read_frame_traced, write_frame, write_frame_traced, Frame, FrameError,
    ServerStats, WireError, WireEvent, WriteOp, PROTO_VERSION,
};
use hrdm_core::{Relation, Scheme, Tuple};
use hrdm_obs::TraceContext;
use hrdm_query::QueryResult;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write, or a dropped peer).
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Protocol(String),
    /// The server answered with a structured error frame.
    Remote(WireError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "connection error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => NetError::Io(e),
            FrameError::Protocol(m) => NetError::Protocol(m),
        }
    }
}

/// A connected session with an `hrdmd` server.
pub struct Client {
    stream: TcpStream,
    /// Serializes frame *writes* between this client and its
    /// [`Canceller`]s: `write_all` on a TCP stream may split into several
    /// `write` calls when the send buffer fills, so two threads writing
    /// unsynchronized could interleave bytes mid-frame and corrupt the
    /// stream.
    write_lock: Arc<Mutex<()>>,
    server: String,
    next_req: u64,
    /// The client name, used as the origin when minting trace ids.
    origin: String,
    /// The trace id stamped on the most recent request (0 before the
    /// first one, or when observability is disabled).
    last_trace: u128,
}

impl Client {
    /// Connects and performs the `Hello`/`HelloAck` negotiation. A server
    /// speaking a different protocol version answers with an error frame,
    /// surfaced here as [`NetError::Remote`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        Client::connect_as(addr, "hrdm-client")
    }

    /// [`Client::connect`] with an explicit client name (diagnostics).
    pub fn connect_as(addr: impl ToSocketAddrs, name: &str) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            write_lock: Arc::new(Mutex::new(())),
            server: String::new(),
            next_req: 1,
            origin: name.to_string(),
            last_trace: 0,
        };
        let req = client.send(&Frame::Hello {
            version: PROTO_VERSION,
            client: name.to_string(),
        })?;
        match client.recv(req)? {
            Frame::HelloAck { server, .. } => {
                client.server = server;
                Ok(client)
            }
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// The server's self-reported name from the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// The request id the *next* request will use — what a
    /// [`Canceller`] on another thread needs to abort it.
    pub fn next_request_id(&self) -> u64 {
        self.next_req
    }

    /// The trace id this client stamped on its most recent request
    /// (0 before the first request, or under `HRDM_OBS_OFF`). The
    /// server installs the same id while serving, so it reappears in
    /// `EXPLAIN ANALYZE` output, slowlog lines, flight-recorder events,
    /// and error frames — this accessor is how a caller joins those
    /// surfaces back to its own request.
    pub fn last_trace_id(&self) -> u128 {
        self.last_trace
    }

    /// A cancel handle sharing this connection's socket. Its
    /// [`Canceller::cancel`] may be called from another thread while a
    /// request is in flight here.
    pub fn canceller(&self) -> Result<Canceller, NetError> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
            write_lock: Arc::clone(&self.write_lock),
        })
    }

    /// Bounds how long a single response read may block. `None` (the
    /// default) blocks indefinitely.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Runs query text on the server and collects the full result —
    /// streamed relation chunks are validated and reassembled locally.
    pub fn query(&mut self, text: &str) -> Result<QueryResult, NetError> {
        let req = self.send(&Frame::Query {
            text: text.to_string(),
        })?;
        match self.recv(req)? {
            Frame::RelationHeader { scheme, rows } => self.collect_relation(req, scheme, rows),
            Frame::LifespanResult { lifespan } => Ok(QueryResult::Lifespan(lifespan)),
            Frame::FunctionResult { value } => Ok(QueryResult::Function(value)),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("a result frame", &other)),
        }
    }

    fn collect_relation(
        &mut self,
        req: u64,
        scheme: Scheme,
        rows: u64,
    ) -> Result<QueryResult, NetError> {
        let mut tuples: Vec<Tuple> = Vec::with_capacity((rows as usize).min(4096));
        loop {
            match self.recv(req)? {
                Frame::RowChunk { tuples: chunk } => tuples.extend(chunk),
                Frame::Done { rows: done_rows } => {
                    if done_rows != tuples.len() as u64 {
                        return Err(NetError::Protocol(format!(
                            "server announced {done_rows} rows but streamed {}",
                            tuples.len()
                        )));
                    }
                    let r: Relation =
                        assemble_relation(scheme, tuples).map_err(NetError::Remote)?;
                    return Ok(QueryResult::Relation(r));
                }
                Frame::Error { error } => return Err(NetError::Remote(error)),
                other => return Err(unexpected("RowChunk/Done", &other)),
            }
        }
    }

    /// EXPLAIN over the wire: the server's rewrite trace + physical plan
    /// (access paths, partition pruning counts) for `text`.
    pub fn explain(&mut self, text: &str) -> Result<String, NetError> {
        let req = self.send(&Frame::Prepare {
            text: text.to_string(),
        })?;
        match self.recv(req)? {
            Frame::PlanText { text } => Ok(text),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("PlanText", &other)),
        }
    }

    /// Runs a write operation through the server's group-commit queue.
    /// Returns the affected row count from the `Ack`.
    pub fn execute(&mut self, op: WriteOp) -> Result<u64, NetError> {
        let req = self.send(&Frame::Execute { op })?;
        match self.recv(req)? {
            Frame::Ack { rows } => Ok(rows),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Creates a relation on the server.
    pub fn create_relation(&mut self, name: &str, scheme: Scheme) -> Result<(), NetError> {
        self.execute(WriteOp::CreateRelation {
            name: name.to_string(),
            scheme,
        })
        .map(|_| ())
    }

    /// Inserts one tuple on the server.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<(), NetError> {
        self.execute(WriteOp::Insert {
            relation: relation.to_string(),
            tuple,
        })
        .map(|_| ())
    }

    /// Materializes `query`'s result under `name` server-side (the wire
    /// form of the shell's `name := query`). Returns the stored row count.
    pub fn materialize(&mut self, name: &str, query: &str) -> Result<u64, NetError> {
        self.execute(WriteOp::Materialize {
            name: name.to_string(),
            query: query.to_string(),
        })
    }

    /// Asks the server to checkpoint (fold its WAL into fresh heap files).
    pub fn checkpoint(&mut self) -> Result<(), NetError> {
        let req = self.send(&Frame::Checkpoint)?;
        match self.recv(req)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        let req = self.send(&Frame::Stats)?;
        match self.recv(req)? {
            Frame::StatsResult { stats } => Ok(stats),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("StatsResult", &other)),
        }
    }

    /// Fetches the server's metrics registry as a Prometheus text
    /// exposition document (server families, engine-wide families, and
    /// the slow-query log as `# slowlog:` comment lines).
    pub fn metrics(&mut self) -> Result<String, NetError> {
        let req = self.send(&Frame::Metrics)?;
        match self.recv(req)? {
            Frame::MetricsResult { text } => Ok(text),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("MetricsResult", &other)),
        }
    }

    /// Fetches the newest `limit` flight-recorder events from the
    /// server (0 = everything the ring holds), oldest first.
    pub fn events(&mut self, limit: u64) -> Result<Vec<WireEvent>, NetError> {
        let req = self.send(&Frame::Events { limit })?;
        match self.recv(req)? {
            Frame::EventsResult { events } => Ok(events),
            Frame::Error { error } => Err(NetError::Remote(error)),
            other => Err(unexpected("EventsResult", &other)),
        }
    }

    /// Mints a fresh trace id for the request, remembers it as
    /// [`Client::last_trace_id`], and stamps it into the frame header.
    fn send(&mut self, frame: &Frame) -> Result<u64, NetError> {
        let req = self.next_req;
        self.next_req += 1;
        let trace = TraceContext::mint(&self.origin);
        self.last_trace = trace.id;
        let _guard = self.write_lock.lock().expect("write lock");
        write_frame_traced(&mut self.stream, req, trace.id, frame)?;
        Ok(req)
    }

    /// Reads the next frame for `req`. A frame carrying a different
    /// request id is a protocol violation — this client runs one request
    /// at a time, so nothing else may be on the wire — except request id
    /// 0, which the server uses for **connection-scoped** errors (e.g. a
    /// connection-limit refusal sent before any request was read). The
    /// response's trace id must echo the one this client minted (or be
    /// 0, from surfaces with no trace in scope).
    fn recv(&mut self, req: u64) -> Result<Frame, NetError> {
        let (got_req, got_trace, frame) = read_frame_traced(&mut self.stream)?;
        if got_trace != 0 && got_trace != self.last_trace {
            return Err(NetError::Protocol(format!(
                "response trace {got_trace:032x} does not echo request trace {:032x}",
                self.last_trace
            )));
        }
        if let (0, Frame::Error { error }) = (got_req, &frame) {
            return Err(NetError::Remote(error.clone()));
        }
        if got_req != req {
            return Err(NetError::Protocol(format!(
                "response for request {got_req} while waiting on {req}"
            )));
        }
        Ok(frame)
    }
}

/// Aborts an in-flight request on a [`Client`]'s connection from another
/// thread. Cancel writes take the client's write lock, so a cancel can
/// never splice its bytes into the middle of a request frame the client
/// thread is still flushing.
pub struct Canceller {
    stream: TcpStream,
    write_lock: Arc<Mutex<()>>,
}

impl Canceller {
    /// Sends `Cancel` for `request_id`. Best-effort: a request that
    /// already completed ignores it.
    pub fn cancel(&mut self, request_id: u64) -> Result<(), NetError> {
        let _guard = self.write_lock.lock().expect("write lock");
        write_frame(&mut self.stream, request_id, &Frame::Cancel)?;
        Ok(())
    }
}

fn unexpected(wanted: &str, got: &Frame) -> NetError {
    NetError::Protocol(format!(
        "expected {wanted}, got frame kind {:#x}",
        got.kind()
    ))
}
