//! # hrdm-net — the HRDM wire protocol, server, and client
//!
//! PRs 1–4 built indexes, WAL durability, snapshot-isolated group-commit
//! concurrency, and partition pruning — all in-process. This crate is the
//! network front end that makes them servable: a length-prefixed,
//! versioned binary protocol over plain `std::net` TCP (no external
//! dependencies), a thread-per-connection server (`hrdmd`) running every
//! read against a per-request [`hrdm_storage::DbSnapshot`] and funnelling
//! every write into the group-commit queue, and a synchronous [`Client`]
//! that shares the frame codec with the server by construction.
//!
//! ```text
//!   client A ──┐                        ┌─ snapshot() ── Query pipeline
//!   client B ──┼── TCP frames ── hrdmd ─┤
//!   client C ──┘                        └─ write() ──── group commit ─ WAL
//! ```
//!
//! * [`frame`] — the wire format: frames, errors, the shared codec.
//! * [`server`] — [`Server`]/[`ServerHandle`], session management, limits.
//! * [`client`] — [`Client`]/[`Canceller`].
//! * `http` — the scrape plane: `GET /metrics` and `GET /healthz` over a
//!   minimal std-only HTTP/1.1 responder (`hrdmd --http-metrics`).
//!
//! Every request frame carries a 128-bit trace id minted by the client
//! ([`hrdm_obs::TraceContext`]); the server installs it as the serving
//! thread's ambient trace and echoes it on every response, so `EXPLAIN
//! ANALYZE` output, the slow-query log, flight-recorder events, and
//! `Error` frames all report the id the client already holds.
//!
//! The `hrdmq` shell (this crate's second binary) speaks the same
//! protocol via `\connect <addr>`, and the whole query pipeline —
//! optimizer rewrites, index scans, partition pruning, `EXPLAIN` — works
//! identically over the wire because the server answers from the exact
//! same snapshots an in-process reader would use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
mod http;
pub mod server;

pub use client::{Canceller, Client, NetError};
pub use frame::{
    assemble_relation, decode_frame, decode_frame_traced, encode_frame, encode_frame_traced,
    read_frame, read_frame_traced, write_frame, write_frame_traced, Frame, FrameError, ServerStats,
    WireError, WireEvent, WriteOp, MAX_FRAME_BYTES, PROTO_VERSION, WIRE_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
