//! # hrdm-net — the HRDM wire protocol, server, and client
//!
//! PRs 1–4 built indexes, WAL durability, snapshot-isolated group-commit
//! concurrency, and partition pruning — all in-process. This crate is the
//! network front end that makes them servable: a length-prefixed,
//! versioned binary protocol over plain `std::net` TCP (no external
//! dependencies), a thread-per-connection server (`hrdmd`) running every
//! read against a per-request [`hrdm_storage::DbSnapshot`] and funnelling
//! every write into the group-commit queue, and a synchronous [`Client`]
//! that shares the frame codec with the server by construction.
//!
//! ```text
//!   client A ──┐                        ┌─ snapshot() ── Query pipeline
//!   client B ──┼── TCP frames ── hrdmd ─┤
//!   client C ──┘                        └─ write() ──── group commit ─ WAL
//! ```
//!
//! * [`frame`] — the wire format: frames, errors, the shared codec.
//! * [`server`] — [`Server`]/[`ServerHandle`], session management, limits.
//! * [`client`] — [`Client`]/[`Canceller`].
//!
//! The `hrdmq` shell (this crate's second binary) speaks the same
//! protocol via `\connect <addr>`, and the whole query pipeline —
//! optimizer rewrites, index scans, partition pruning, `EXPLAIN` — works
//! identically over the wire because the server answers from the exact
//! same snapshots an in-process reader would use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{Canceller, Client, NetError};
pub use frame::{
    assemble_relation, decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError,
    ServerStats, WireError, WriteOp, MAX_FRAME_BYTES, PROTO_VERSION, WIRE_VERSION,
};
pub use server::{Server, ServerConfig, ServerHandle};
