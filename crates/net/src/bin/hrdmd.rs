//! `hrdmd` — the HRDM network server daemon.
//!
//! ```sh
//! cargo run -p hrdm-net --bin hrdmd -- --listen 127.0.0.1:7171 /path/to/db-dir
//! ```
//!
//! Serves the wire protocol of `hrdm-net` over TCP: concurrent clients'
//! queries run against snapshot-isolated state, their writes form
//! group-commit batches, and (with a database directory) every
//! acknowledged write is WAL-durable. Without a directory the server runs
//! detached (in-memory).

use hrdm_net::{Server, ServerConfig};
use hrdm_storage::ConcurrentDatabase;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
hrdmd — the HRDM network server

USAGE:
    hrdmd [OPTIONS] [DB_DIR]

ARGS:
    <DB_DIR>    Database directory to attach durably (WAL + checkpoints).
                Omitted: serve a detached, in-memory database.

OPTIONS:
    --listen <ADDR>         Address to bind [default: 127.0.0.1:7171]
    --max-conns <N>         Session slots; further connections are refused
                            with a structured error [default: 64]
    --max-rows <N>          Per-request result row cap [default: 1000000]
    --max-bytes <N>         Per-request result byte cap [default: 268435456]
    --chunk-rows <N>        Tuples per streamed chunk (also the cancel
                            granularity) [default: 256]
    --read-timeout-secs <N> Idle-session kill timer; 0 disables [default: 30]
    --slow-ms <N>           Slow-query-log threshold in milliseconds; requests
                            at/over it are retained (bounded ring, newest 32)
                            and surfaced by \\metrics; 0 records every
                            request [default: 25]
    --http-metrics <ADDR>   Also bind a plain-HTTP scrape endpoint here:
                            GET /metrics serves the Prometheus exposition,
                            GET /healthz serves 200 (ok) or 503 (draining).
                            Off unless given; use port 0 for an ephemeral
                            port (printed at startup)
    -h, --help              Print this help

The row/byte caps and the connection limit are the server's DoS posture:
no single request can hold a session thread on an unbounded result, and
no client fleet can exhaust threads past --max-conns.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7171".to_string();
    let mut config = ServerConfig::default();
    let mut dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value\n\n{USAGE}");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--listen" => listen = value("--listen"),
            "--max-conns" => config.max_connections = parse(&value("--max-conns"), "--max-conns"),
            "--max-rows" => config.max_result_rows = parse(&value("--max-rows"), "--max-rows"),
            "--max-bytes" => config.max_result_bytes = parse(&value("--max-bytes"), "--max-bytes"),
            "--chunk-rows" => config.chunk_rows = parse(&value("--chunk-rows"), "--chunk-rows"),
            "--read-timeout-secs" => {
                let secs: u64 = parse(&value("--read-timeout-secs"), "--read-timeout-secs");
                config.read_timeout = if secs == 0 {
                    None
                } else {
                    Some(Duration::from_secs(secs))
                };
            }
            "--slow-ms" => {
                config.slow_query_threshold =
                    Duration::from_millis(parse(&value("--slow-ms"), "--slow-ms"));
            }
            "--http-metrics" => config.http_metrics = Some(value("--http-metrics")),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                std::process::exit(2);
            }
            other => dir = Some(other.to_string()),
        }
    }

    let db = match &dir {
        Some(dir) => match ConcurrentDatabase::open(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("failed to open database at {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => ConcurrentDatabase::new(),
    };
    let db = Arc::new(db);
    {
        let snap = db.snapshot();
        let names: Vec<&str> = snap.relation_names().collect();
        eprintln!(
            "hrdmd: serving {} relation(s) ({}) — {}",
            names.len(),
            names.join(", "),
            match &dir {
                Some(d) => format!("attached to {d}"),
                None => "detached (in-memory)".to_string(),
            }
        );
    }

    let server = match Server::bind(listen.as_str(), db, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    // Spawn (rather than run on this thread) so the bound HTTP metrics
    // address — possibly an ephemeral port — can be reported too.
    let handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("hrdmd: listening on {}", handle.addr());
    if let Some(http) = handle.http_addr() {
        eprintln!("hrdmd: http-metrics on {http}");
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {s}\n\n{USAGE}");
        std::process::exit(2);
    })
}
