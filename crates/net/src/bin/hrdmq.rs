//! `hrdmq` — a small interactive shell for HRDM databases, local or remote.
//!
//! ```sh
//! cargo run -p hrdm-net --bin hrdmq -- /path/to/db-dir
//! ```
//!
//! Reads one query per line (the textual algebra of `hrdm-query`), prints
//! relations or lifespans. A directory argument **attaches** durably: every
//! write is WAL-logged before it is acknowledged, and reopening the
//! directory recovers it. The shell runs on the concurrent engine: each
//! query evaluates against an immutable [`hrdm_storage::DbSnapshot`], and
//! writes go through the group-commit writer. Writes use
//! `name := <query>`, which materializes a query result as a relation.
//!
//! With `\connect <addr>` the same shell becomes a **network client** of an
//! `hrdmd` server: queries, materializations, `\explain`, `\checkpoint`,
//! and `\stats` all travel the wire protocol instead — same pipeline,
//! same plans (the server answers from the identical snapshot machinery).
//!
//! Meta-commands:
//!
//! * `\d` — list relations (schemes locally; names + counts remotely),
//! * `\log` — show the schema-evolution log (local only),
//! * `\explain <query>` — show the optimized plan and rewrite trace,
//! * `EXPLAIN ANALYZE <query>` — run the query and show the plan
//!   annotated with measured per-operator times and row counts,
//! * `\metrics` — dump the metrics registry in Prometheus text
//!   exposition format (the server's, with its slow-query log, when
//!   connected; the process-wide engine registry locally),
//! * `\events [n]` — dump the flight recorder (the server's over the
//!   `Events` frame when connected; the in-process recorder locally),
//!   newest `n` events in sequence order (default 32, 0 = all),
//! * `\top` — one-shot live view: rolling 60s QPS and p50/p99, active
//!   sessions, commit batch sizes, pool hit ratio, and the top
//!   relations by rows streamed (server-side; a reduced local view
//!   shows what the in-process engine recorded),
//! * `\open <dir>` — attach to a local database directory (disconnects),
//! * `\connect <addr>` — talk to an `hrdmd` server (e.g. `127.0.0.1:7171`),
//! * `\disconnect` — back to the local database,
//! * `\checkpoint` — fold the WAL into fresh heap files (atomic commit),
//! * `\stats` — group-commit counters locally; the server's full counter
//!   set (connections, frames, planning/execution time) when connected,
//! * `\q` — quit.

use hrdm_net::{Client, NetError};
use hrdm_query::{
    explain_analyze_query_text, explain_query_text, run_query_on_snapshot, strip_explain_analyze,
    PipelineError, QueryResult,
};
use hrdm_storage::ConcurrentDatabase;
use std::io::{self, BufRead, Write};

/// Where the shell sends its queries: the in-process engine, or an
/// `hrdmd` server over TCP. The local database is kept while connected,
/// so `\disconnect` returns to it untouched.
struct Shell {
    local: ConcurrentDatabase,
    remote: Option<(String, Client)>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let db = match args.get(1) {
        Some(dir) => match ConcurrentDatabase::open(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("failed to open database at {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("usage: hrdmq <database-dir>   (no dir given: starting detached)");
            ConcurrentDatabase::new()
        }
    };
    let mut shell = Shell {
        local: db,
        remote: None,
    };

    {
        let snap = shell.local.snapshot();
        let names: Vec<&str> = snap.relation_names().collect();
        println!("hrdmq — {} relation(s): {}", names.len(), names.join(", "));
    }
    match shell
        .local
        .with_database(|d| d.attached_dir().map(|p| p.display().to_string()))
    {
        Some(dir) => println!("attached to {dir} (durable; \\checkpoint to compact)"),
        None => println!("detached (in-memory; \\open <dir> to attach durably)"),
    }
    println!(
        "type a query, `name := query` to materialize, \\d for schemas, \
         \\connect <addr> for a server, \\q to quit"
    );

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("hrdm> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        if !dispatch(&mut shell, line) {
            continue;
        }
    }
}

/// Handles one input line. The return value is unused today (every path
/// continues the loop) but keeps dispatch testable as a unit.
fn dispatch(shell: &mut Shell, line: &str) -> bool {
    if line == "\\d" {
        list_relations(shell);
        return true;
    }
    if line == "\\log" {
        match &shell.remote {
            Some(_) => println!("(\\log is local-only; \\disconnect first)"),
            None => {
                let snap = shell.local.snapshot();
                for ev in snap.catalog().log() {
                    println!("{ev}");
                }
            }
        }
        return true;
    }
    if line == "\\stats" {
        stats(shell);
        return true;
    }
    if line == "\\metrics" {
        metrics(shell);
        return true;
    }
    if line == "\\top" {
        top(shell);
        return true;
    }
    if line == "\\events" || line.starts_with("\\events ") {
        let limit = match line.strip_prefix("\\events").unwrap_or("").trim() {
            "" => 32,
            n => match n.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    println!("usage: \\events [n]   (0 = everything retained)");
                    return true;
                }
            },
        };
        events(shell, limit);
        return true;
    }
    if line == "\\checkpoint" {
        checkpoint(shell);
        return true;
    }
    if let Some(addr) = line.strip_prefix("\\connect ") {
        let addr = addr.trim();
        match Client::connect_as(addr, "hrdmq") {
            Ok(client) => {
                println!("connected to {addr} ({})", client.server_name());
                shell.remote = Some((addr.to_string(), client));
            }
            Err(e) => println!("connect error for {addr}: {e}"),
        }
        return true;
    }
    if line == "\\disconnect" {
        match shell.remote.take() {
            Some((addr, _)) => println!("disconnected from {addr}"),
            None => println!("(not connected)"),
        }
        return true;
    }
    if let Some(dir) = line.strip_prefix("\\open ") {
        let dir = dir.trim();
        match ConcurrentDatabase::open(std::path::Path::new(dir)) {
            Ok(opened) => {
                if let Some((addr, _)) = shell.remote.take() {
                    println!("disconnected from {addr}");
                }
                shell.local = opened;
                let n = shell.local.snapshot().relation_names().count();
                println!("attached to {dir} — {n} relation(s)");
            }
            // The error itself names the offending file where it can;
            // always lead with the directory the user asked for.
            Err(e) => println!("open error for {dir}: {e}"),
        }
        return true;
    }
    if let Some(rest) = line.strip_prefix("\\explain ") {
        explain(shell, rest);
        return true;
    }
    // `EXPLAIN ANALYZE <query>` runs the query and prints the plan
    // annotated with measured times; remotely the server strips the
    // prefix itself, so the full line travels as a Prepare.
    if strip_explain_analyze(line).is_some() {
        explain_analyze(shell, line);
        return true;
    }

    // `name := <query>`: materialize a query result as a relation,
    // through the durable group-commit write path (local or remote).
    if let Some((name, query_text)) = split_assignment(line) {
        materialize(shell, name, query_text);
        return true;
    }

    run_query(shell, line);
    true
}

/// Runs `f` against the connected client, transparently reconnecting
/// **once** when the connection has gone away — the server's idle
/// timeout closes sessions that sit quiet (an interactive user thinking
/// is exactly that), and the shell should survive it. `None` means "not
/// connected" (never connected, or the reconnect failed and the shell
/// fell back to disconnected — already reported to the user).
fn remote_call<T>(
    shell: &mut Shell,
    f: impl Fn(&mut Client) -> Result<T, NetError>,
) -> Option<Result<T, NetError>> {
    let (addr, mut client) = shell.remote.take()?;
    match f(&mut client) {
        Err(NetError::Io(_)) => match Client::connect_as(addr.as_str(), "hrdmq") {
            Ok(mut fresh) => {
                println!("(connection lost; reconnected to {addr})");
                let result = f(&mut fresh);
                shell.remote = Some((addr, fresh));
                Some(result)
            }
            Err(e) => {
                println!("connection to {addr} lost and reconnect failed ({e}); disconnected");
                None
            }
        },
        other => {
            shell.remote = Some((addr, client));
            Some(other)
        }
    }
}

fn list_relations(shell: &mut Shell) {
    if shell.remote.is_some() {
        match remote_call(shell, |c| c.stats()) {
            Some(Ok(stats)) => {
                for (name, count) in &stats.relations {
                    println!("{name}: {count} tuple(s)");
                }
            }
            Some(Err(e)) => println!("error: {e}"),
            None => {}
        }
        return;
    }
    let snap = shell.local.snapshot();
    for name in snap.relation_names() {
        let r = snap.relation(name).expect("listed relations exist");
        println!("{name}: {} — {} tuple(s)", r.scheme(), r.len());
    }
}

fn stats(shell: &mut Shell) {
    match &mut shell.remote {
        Some((addr, _)) => {
            let addr = addr.clone();
            match remote_call(shell, |c| c.stats()) {
                Some(Ok(stats)) => {
                    println!("server {addr}:");
                    println!("{stats}");
                }
                Some(Err(e)) => println!("error: {e}"),
                None => {}
            }
        }
        None => {
            let stats = shell.local.stats();
            let snap = shell.local.snapshot();
            println!(
                "group commit: {} batch(es), {} op(s), mean batch {:.2}, max batch {}, last batch {}",
                stats.batches,
                stats.ops,
                stats.mean_batch(),
                stats.max_batch,
                stats.last_batch
            );
            match snap.epoch() {
                Some(e) => println!("snapshot: version {}, epoch {e}", snap.version()),
                None => println!("snapshot: version {} (detached)", snap.version()),
            }
        }
    }
}

fn checkpoint(shell: &mut Shell) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.checkpoint()) {
            Some(Ok(())) => println!("checkpointed (server-side)"),
            Some(Err(e)) => println!("checkpoint error: {e}"),
            None => {}
        },
        None => match shell.local.checkpoint() {
            Ok(()) => println!(
                "checkpointed (epoch {})",
                shell
                    .local
                    .snapshot()
                    .epoch()
                    .expect("attached after checkpoint")
            ),
            Err(e) => println!("checkpoint error: {e}"),
        },
    }
}

fn metrics(shell: &mut Shell) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.metrics()) {
            Some(Ok(text)) => print!("{text}"),
            Some(Err(e)) => println!("error: {e}"),
            None => {}
        },
        // Locally there is no server instance: the process-wide
        // registry (WAL, checkpoint, group commit, query operators) is
        // the whole story.
        None => print!("{}", hrdm_obs::global().render_prometheus()),
    }
}

/// Renders a nanosecond figure the way an operator reads latencies.
fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "-".to_string()
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn top(shell: &mut Shell) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.stats()) {
            Some(Ok(s)) => {
                println!(
                    "uptime {}s — rolling 60s: {:.3} qps, p50 {}, p99 {}",
                    s.uptime_secs,
                    s.qps_milli_60s as f64 / 1e3,
                    fmt_ns(s.p50_60s_ns),
                    fmt_ns(s.p99_60s_ns),
                );
                println!(
                    "sessions: {} active ({} accepted); commit batch: last {}, max {}",
                    s.connections_active,
                    s.connections_accepted,
                    s.commit_last_batch,
                    s.commit_max_batch,
                );
                match s.pool_hit_permille_60s {
                    u64::MAX => println!("pool: no traffic in the window"),
                    p => println!("pool: {:.1}% hit rate (60s)", p as f64 / 10.0),
                }
                if s.top_streamed.is_empty() {
                    println!("top relations: (none streamed yet)");
                } else {
                    println!("top relations by rows streamed:");
                    for (name, rows) in &s.top_streamed {
                        println!("  {name}: {rows}");
                    }
                }
            }
            Some(Err(e)) => println!("error: {e}"),
            None => {}
        },
        // No server: no request windows exist, but the in-process engine
        // still feeds the pool windows and the scan leaderboard.
        None => {
            match hrdm_obs::window::pool_windows().hit_ratio() {
                Some(r) => println!("pool: {:.1}% hit rate (60s)", r * 100.0),
                None => println!("pool: no traffic in the window"),
            }
            let top = hrdm_obs::window::top_relations().top(8);
            if top.is_empty() {
                println!("top relations: (none streamed yet)");
            } else {
                println!("top relations by rows streamed:");
                for (name, rows) in &top {
                    println!("  {name}: {rows}");
                }
            }
            println!("(connect to a server for QPS, latency, and session figures)");
        }
    }
}

fn events(shell: &mut Shell, limit: u64) {
    let rendered: Vec<String> = match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.events(limit)) {
            Some(Ok(events)) => events.iter().map(hrdm_net::WireEvent::render).collect(),
            Some(Err(e)) => {
                println!("error: {e}");
                return;
            }
            None => return,
        },
        None => hrdm_obs::recorder()
            .snapshot(limit.min(u64::from(u32::MAX)) as usize)
            .iter()
            .map(|e| hrdm_net::WireEvent::from_record(e).render())
            .collect(),
    };
    if rendered.is_empty() {
        println!("(flight recorder is empty)");
        return;
    }
    for line in rendered {
        println!("{line}");
    }
}

fn explain_analyze(shell: &mut Shell, line: &str) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.explain(line)) {
            Some(Ok(text)) => print!("{text}"),
            Some(Err(NetError::Remote(hrdm_net::WireError::Unsupported(_)))) => {
                println!("(only relation-sorted queries have a relational plan)")
            }
            Some(Err(e)) => println!("{e}"),
            None => {}
        },
        None => {
            let query = strip_explain_analyze(line).expect("dispatch matched the prefix");
            match explain_analyze_query_text(query, &*shell.local.snapshot()) {
                Ok(Some(text)) => print!("{text}"),
                Ok(None) => println!("(only relation-sorted queries have a relational plan)"),
                Err(PipelineError::Parse(e)) => println!("parse error: {e}"),
                Err(e) => println!("{e}"),
            }
        }
    }
}

fn explain(shell: &mut Shell, text: &str) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.explain(text)) {
            Some(Ok(plan)) => println!("{plan}"),
            Some(Err(NetError::Remote(hrdm_net::WireError::Unsupported(_)))) => {
                println!("(only relation-sorted queries have a relational plan)")
            }
            Some(Err(e)) => println!("{e}"),
            None => {}
        },
        None => match explain_query_text(text, &*shell.local.snapshot()) {
            Ok(Some(plan)) => println!("{plan}"),
            Ok(None) => println!("(only relation-sorted queries have a relational plan)"),
            Err(PipelineError::Parse(e)) => println!("parse error: {e}"),
            Err(e) => println!("{e}"),
        },
    }
}

fn materialize(shell: &mut Shell, name: &str, query_text: &str) {
    match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.materialize(name, query_text)) {
            Some(Ok(rows)) => println!("{name} := {rows} tuple(s)"),
            Some(Err(e)) => println!("{e}"),
            None => {}
        },
        None => match run_query_on_snapshot(query_text, &*shell.local.snapshot()) {
            Err(e) => println!("{e}"),
            Ok(QueryResult::Relation(r)) => {
                let tuples = r.len();
                // Create-or-replace as one atomic group-commit group —
                // the identical path the server's Materialize op takes.
                match shell.local.materialize(name, r) {
                    Ok(()) => println!("{name} := {tuples} tuple(s)"),
                    Err(e) => println!("error: {e}"),
                }
            }
            Ok(_) => println!("(only relation-sorted queries can be materialized)"),
        },
    }
}

fn run_query(shell: &mut Shell, line: &str) {
    // Relation-sorted queries go through the rewrite optimizer and the
    // index-aware access-path planner, evaluated against one immutable
    // snapshot — remotely, the server runs the identical pipeline.
    let result = match &shell.remote {
        Some(_) => match remote_call(shell, |c| c.query(line)) {
            Some(r) => r.map_err(|e| e.to_string()),
            None => return, // connection lost and reconnect failed; reported
        },
        None => run_query_on_snapshot(line, &*shell.local.snapshot()).map_err(|e| e.to_string()),
    };
    match result {
        Ok(QueryResult::Relation(r)) => {
            print!("{r}");
            println!("({} tuple(s))", r.len());
        }
        Ok(QueryResult::Lifespan(l)) => println!("{l}"),
        Ok(QueryResult::Function(f)) => println!("{f}"),
        Err(msg) => println!("{msg}"),
    }
}

/// Splits `name := query` into its halves; `None` when the line is not an
/// assignment. The name must look like an identifier so queries containing
/// `:=` in string literals are not misparsed.
fn split_assignment(line: &str) -> Option<(&str, &str)> {
    let (lhs, rhs) = line.split_once(":=")?;
    let name = lhs.trim();
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if ok {
        Some((name, rhs.trim()))
    } else {
        None
    }
}
