//! The scrape plane: a minimal std-only HTTP/1.1 responder serving
//! `GET /metrics` (Prometheus text exposition) and `GET /healthz`.
//!
//! `hrdmd --http-metrics <addr>` binds this listener next to the frame
//! protocol. It is deliberately not a web server: one thread, one
//! connection at a time, `Connection: close` on every response — a
//! scrape every few seconds is its entire duty cycle. The accept loop
//! runs the listener non-blocking and polls the server's stop flag, so
//! shutdown never waits on an accept.
//!
//! ## DoS posture
//!
//! The request head (request line + headers) is read into a buffer
//! bounded at [`MAX_HEAD_BYTES`] *before* parsing; a head that exceeds
//! the cap is answered with `431` and the connection dropped. Bodies
//! are never read — `GET` is the only method served.
//!
//! ## Health semantics
//!
//! `/healthz` answers `200 ok` while the server accepts work and
//! `503 draining` the moment a graceful drain begins
//! ([`crate::ServerHandle::begin_drain`] or shutdown), so a load
//! balancer stops routing to a replica *before* its sessions finish.

use crate::server::Shared;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on one request head (request line + headers), in bytes.
pub(crate) const MAX_HEAD_BYTES: usize = 8 * 1024;
/// How often the accept loop polls the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection socket timeout: a scraper that stalls longer than
/// this mid-request is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Binds `addr` and serves the scrape plane on a background thread
/// until [`Shared::http_stopped`] turns true. Returns the bound
/// address (the real port when bound to port 0) and the join handle.
pub(crate) fn spawn(addr: &str, shared: Arc<Shared>) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let join = std::thread::spawn(move || accept_loop(&listener, &shared));
    Ok((local, join))
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.http_stopped() {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = serve_connection(&mut stream, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => continue,
        }
    }
}

fn serve_connection(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    // The accepted stream inherits the listener's non-blocking mode on
    // some platforms; this responder wants plain blocking reads with a
    // timeout backstop.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = match read_request_head(stream)? {
        Some(head) => head,
        None => {
            respond(
                stream,
                431,
                "Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                "request head exceeds the cap\n",
            )?;
            // Unread request bytes would turn the close into a reset
            // (discarding the response in flight); swallow a bounded
            // amount so the peer actually sees the 431.
            return drain(stream);
        }
    };
    let (method, path) = match parse_request_line(&head) {
        Some(pair) => pair,
        None => {
            return respond(
                stream,
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                "malformed request line\n",
            )
        }
    };
    if method != "GET" {
        return respond(
            stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n",
        );
    }
    match path {
        "/metrics" => respond(
            stream,
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &shared.metrics_text(),
        ),
        "/healthz" => {
            if shared.draining() {
                respond(
                    stream,
                    503,
                    "Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n",
                )
            } else {
                respond(stream, 200, "OK", "text/plain; charset=utf-8", "ok\n")
            }
        }
        _ => respond(
            stream,
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /healthz\n",
        ),
    }
}

/// Discards whatever else the peer sent, bounded by the socket timeout
/// and [`MAX_HEAD_BYTES`]-sized steps up to a fixed total — enough for
/// any realistic oversized head, never unbounded.
fn drain(stream: &mut TcpStream) -> io::Result<()> {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut remaining = 64 * MAX_HEAD_BYTES;
    while remaining > 0 {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(n) => remaining = remaining.saturating_sub(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    Ok(())
}

/// Reads the request head (through the blank line) into a buffer
/// bounded at [`MAX_HEAD_BYTES`]. `Ok(None)` means the peer exceeded
/// the cap without terminating the head.
fn read_request_head(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Ok(Some(head)), // EOF: serve what arrived
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Enforce the cap before the buffer grows past it.
        if head.len() + n > MAX_HEAD_BYTES {
            return Ok(None);
        }
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            return Ok(Some(head));
        }
    }
}

/// Extracts `(method, path)` from the request line, dropping any query
/// string. `None` on a malformed line.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_and_reject() {
        assert_eq!(
            parse_request_line(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line(b"GET /healthz?verbose=1 HTTP/1.0\r\n\r\n"),
            Some(("GET", "/healthz"))
        );
        assert_eq!(parse_request_line(b"GET /metrics\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"\r\n\r\n"), None);
        assert_eq!(parse_request_line(b"GET /x SMTP/1.0\r\n\r\n"), None);
        assert_eq!(parse_request_line(&[0xff, 0xfe, b'\r', b'\n']), None);
    }
}
