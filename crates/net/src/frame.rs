//! The HRDM wire protocol: length-prefixed, versioned binary frames.
//!
//! ## Frame layout
//!
//! ```text
//! ┌──────────────┬─────────┬──────────┬───────────────┬────────────────┬───────────┐
//! │ len: u32 BE  │ ver: u8 │ kind: u8 │ req id: u64 BE│ trace: u128 BE │ payload … │
//! └──────────────┴─────────┴──────────┴───────────────┴────────────────┴───────────┘
//!        4             1         1            8               16          len − 26
//! ```
//!
//! `len` counts everything after itself (version byte through payload).
//! The version byte is the *frame format* version ([`WIRE_VERSION`]); the
//! application-level protocol version is negotiated by the
//! `Hello`/`HelloAck` exchange ([`PROTO_VERSION`]). Payloads use the same
//! varint/tagged encoding as the storage layer ([`hrdm_storage::Encoder`]) —
//! schemes, tuples, lifespans, and temporal values go over the wire in
//! exactly their on-disk form.
//!
//! Every decode error is a [`FrameError::Protocol`] value, never a panic:
//! truncated frames, oversized `len` declarations, unknown version bytes,
//! unknown kind tags, and trailing garbage inside a frame are all rejected
//! with a message naming what was wrong.
//!
//! The request id ties responses (and streamed result chunks) to the
//! request that caused them; a `Cancel` frame's request id names the
//! request to abort.
//!
//! The trace id ([`hrdm_obs::trace`]) is minted by the request's
//! originator and echoed on every response frame, so `EXPLAIN ANALYZE`
//! output, slowlog lines, error frames, and flight-recorder events all
//! report the id the client already holds. Zero means "no trace" (the
//! observability kill switch mints zero ids).

use hrdm_core::{HrdmError, Relation, Scheme, TemporalValue, Tuple};
use hrdm_storage::{CodecError, DbError, Decoder, Encoder};
use hrdm_time::Lifespan;
use std::fmt;
use std::io::{self, Read, Write};

/// Version of the frame *format* (header + payload encodings). Bumped only
/// when the layout above changes incompatibly.
///
/// v2: the body header gained the 16-byte trace id between the request
/// id and the payload. A v1 peer's first frame fails the version check
/// immediately, so mixed-version pairs refuse each other at `Hello`.
pub const WIRE_VERSION: u8 = 2;

/// Version of the application protocol (message set + semantics),
/// negotiated in `Hello`/`HelloAck`. A server refuses clients whose hello
/// carries a different protocol version.
///
/// v2: `Stats` gained `rows_streamed`/`batches_streamed` ahead of the
/// relations list, and `RelationHeader.rows` stopped being authoritative
/// for streamed results (`Done` carries the row count).
///
/// v3: every frame header carries a client-minted trace id (wire format
/// v2); `Stats` gained the rolling 60s fields (`qps_milli_60s`,
/// `p50_60s_ns`, `p99_60s_ns`, `pool_hit_permille_60s`, `uptime_secs`)
/// and the `top_streamed` relation list; new `Events`/`EventsResult`
/// frames dump the server's flight recorder.
pub const PROTO_VERSION: u32 = 3;

/// Hard ceiling on one frame's body (version byte through payload).
/// Declaring a larger `len` is a protocol error — a garbage or hostile
/// header cannot make the peer allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of header before the payload: version, kind, request id,
/// trace id.
const BODY_HEADER: usize = 1 + 1 + 8 + 16;

/// Ceiling on events decoded from one `EventsResult` frame (the
/// server's ring holds [`hrdm_obs::event::RING_CAPACITY`] ≤ this).
const MAX_WIRE_EVENTS: usize = 4096;

/// A structured error carried over the wire. The model/storage error
/// *variant* survives the network boundary (clients can match on it), the
/// human-readable rendering rides along.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The peer violated the framing or message rules.
    Protocol(String),
    /// The query text did not parse.
    Parse(String),
    /// A model-level [`HrdmError`], by variant name.
    Model {
        /// The `HrdmError` variant, e.g. `UnknownRelation`.
        variant: String,
        /// The error's `Display` rendering.
        message: String,
    },
    /// A storage-level [`DbError`], by variant name.
    Db {
        /// The `DbError` variant, e.g. `Mode`.
        variant: String,
        /// The error's `Display` rendering.
        message: String,
    },
    /// The request was cancelled by a `Cancel` frame.
    Cancelled,
    /// A server-side resource cap (row / byte limit) stopped the request.
    Limit(String),
    /// The server cannot take the connection or request right now
    /// (connection limit reached, shutting down).
    Unavailable(String),
    /// The request is well-formed but the server does not serve it (e.g.
    /// EXPLAIN of a non-relation-sorted query).
    Unsupported(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::Parse(m) => write!(f, "parse error: {m}"),
            WireError::Model { message, .. } => write!(f, "error: {message}"),
            WireError::Db { message, .. } => write!(f, "error: {message}"),
            WireError::Cancelled => write!(f, "request cancelled"),
            WireError::Limit(m) => write!(f, "limit exceeded: {m}"),
            WireError::Unavailable(m) => write!(f, "server unavailable: {m}"),
            WireError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The variant name of an [`HrdmError`], as carried in
/// [`WireError::Model`].
pub fn hrdm_error_variant(e: &HrdmError) -> &'static str {
    match e {
        HrdmError::EmptyScheme => "EmptyScheme",
        HrdmError::DuplicateAttribute(_) => "DuplicateAttribute",
        HrdmError::KeyNotInScheme(_) => "KeyNotInScheme",
        HrdmError::EmptyKey => "EmptyKey",
        HrdmError::KeyLifespanCovenant(_) => "KeyLifespanCovenant",
        HrdmError::KeyNotConstant(_) => "KeyNotConstant",
        HrdmError::UnknownAttribute(_) => "UnknownAttribute",
        HrdmError::UnknownRelation(_) => "UnknownRelation",
        HrdmError::DuplicateRelation(_) => "DuplicateRelation",
        HrdmError::DomainMismatch { .. } => "DomainMismatch",
        HrdmError::ValueOutsideLifespan { .. } => "ValueOutsideLifespan",
        HrdmError::NotConstant(_) => "NotConstant",
        HrdmError::IncomparableValues { .. } => "IncomparableValues",
        HrdmError::KeyViolation { .. } => "KeyViolation",
        HrdmError::MissingKeyValue(_) => "MissingKeyValue",
        HrdmError::NotUnionCompatible => "NotUnionCompatible",
        HrdmError::NotMergeCompatible => "NotMergeCompatible",
        HrdmError::AttributesNotDisjoint(_) => "AttributesNotDisjoint",
        HrdmError::NotTimeValued(_) => "NotTimeValued",
        HrdmError::CommonAttributeDomainMismatch(_) => "CommonAttributeDomainMismatch",
        HrdmError::NanFloat => "NanFloat",
        HrdmError::ContradictoryValues { .. } => "ContradictoryValues",
        HrdmError::ConflictingSegments => "ConflictingSegments",
        HrdmError::MissingAttributeValue(_) => "MissingAttributeValue",
    }
}

/// The variant name of a [`DbError`], as carried in [`WireError::Db`].
/// `DbError::Model` is unwrapped into [`WireError::Model`] by the `From`
/// impl instead, so clients see the model variant, not the wrapper.
pub fn db_error_variant(e: &DbError) -> &'static str {
    match e {
        DbError::Io(_) => "Io",
        DbError::Codec(_) => "Codec",
        DbError::Model(_) => "Model",
        DbError::BadFile(_) => "BadFile",
        DbError::Mode(_) => "Mode",
        DbError::SchemeMismatch { .. } => "SchemeMismatch",
    }
}

impl From<&HrdmError> for WireError {
    fn from(e: &HrdmError) -> Self {
        WireError::Model {
            variant: hrdm_error_variant(e).to_string(),
            message: e.to_string(),
        }
    }
}

impl From<&DbError> for WireError {
    fn from(e: &DbError) -> Self {
        match e {
            DbError::Model(m) => WireError::from(m),
            other => WireError::Db {
                variant: db_error_variant(other).to_string(),
                message: other.to_string(),
            },
        }
    }
}

/// A write operation carried by an `Execute` frame. All three funnel into
/// the server's group-commit queue, so concurrent clients' writes form
/// batches exactly like concurrent in-process writers.
#[derive(Clone, PartialEq, Debug)]
pub enum WriteOp {
    /// Create an empty relation under `name`.
    CreateRelation {
        /// The new relation's name.
        name: String,
        /// Its scheme.
        scheme: Scheme,
    },
    /// Insert one tuple into `relation`.
    Insert {
        /// Target relation.
        relation: String,
        /// The tuple.
        tuple: Tuple,
    },
    /// Evaluate `query` server-side (against the current snapshot) and
    /// materialize the result relation under `name`, creating or replacing
    /// it — the wire form of the shell's `name := query`.
    Materialize {
        /// Target relation name.
        name: String,
        /// Query text whose relation-sorted result is stored.
        query: String,
    },
}

/// Server-side observability counters, served by a `Stats` request.
///
/// `relations` carries `(name, tuple count)` pairs of the snapshot the
/// stats were taken against, so a remote shell can list relations without
/// a dedicated catalog message.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections currently holding a session slot.
    pub connections_active: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Requests served (all kinds, successful or not).
    pub requests: u64,
    /// Requests aborted by `Cancel`.
    pub cancelled: u64,
    /// Total nanoseconds spent planning queries (parse + optimize + plan).
    pub plan_ns: u64,
    /// Total nanoseconds spent executing planned queries.
    pub exec_ns: u64,
    /// Group-commit batches acknowledged (see
    /// [`hrdm_storage::CommitStats`]).
    pub commit_batches: u64,
    /// Group-committed operations acknowledged.
    pub commit_ops: u64,
    /// Largest batch acknowledged so far.
    pub commit_max_batch: u64,
    /// Size of the most recent batch.
    pub commit_last_batch: u64,
    /// Version of the snapshot the stats were read against.
    pub snapshot_version: u64,
    /// Request-payload bytes read from clients.
    pub bytes_in: u64,
    /// Response bytes written to clients.
    pub bytes_out: u64,
    /// Median end-to-end request latency (ns, log2-bucket estimate; 0
    /// until a request has been served).
    pub request_p50_ns: u64,
    /// 95th-percentile end-to-end request latency (ns, estimate).
    pub request_p95_ns: u64,
    /// 99th-percentile end-to-end request latency (ns, estimate).
    pub request_p99_ns: u64,
    /// Result rows streamed to clients by the pull-based executor.
    pub rows_streamed: u64,
    /// Result batches streamed to clients by the pull-based executor.
    pub batches_streamed: u64,
    /// Rolling 60s request rate, in milli-requests per second (windowed
    /// metrics; 0 when observability is disabled).
    pub qps_milli_60s: u64,
    /// Rolling 60s median request latency (ns, log2-bucket estimate).
    pub p50_60s_ns: u64,
    /// Rolling 60s 99th-percentile request latency (ns, estimate).
    pub p99_60s_ns: u64,
    /// Rolling 60s buffer-pool hit ratio in permille (‰); `u64::MAX`
    /// when the window saw no pool traffic.
    pub pool_hit_permille_60s: u64,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Top relations by rows streamed out of scans, descending.
    pub top_streamed: Vec<(String, u64)>,
    /// `(name, tuple count)` for every relation in that snapshot.
    pub relations: Vec<(String, u64)>,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "connections: {} accepted, {} active",
            self.connections_accepted, self.connections_active
        )?;
        writeln!(f, "frames: {} in, {} out", self.frames_in, self.frames_out)?;
        writeln!(f, "bytes: {} in, {} out", self.bytes_in, self.bytes_out)?;
        writeln!(
            f,
            "requests: {} served, {} cancelled; planning {:.3} ms, execution {:.3} ms",
            self.requests,
            self.cancelled,
            self.plan_ns as f64 / 1e6,
            self.exec_ns as f64 / 1e6
        )?;
        writeln!(
            f,
            "latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            self.request_p50_ns as f64 / 1e6,
            self.request_p95_ns as f64 / 1e6,
            self.request_p99_ns as f64 / 1e6
        )?;
        let mean = if self.commit_batches == 0 {
            0.0
        } else {
            self.commit_ops as f64 / self.commit_batches as f64
        };
        writeln!(
            f,
            "group commit: {} batch(es), {} op(s), mean batch {:.2}, max batch {}, last batch {}",
            self.commit_batches,
            self.commit_ops,
            mean,
            self.commit_max_batch,
            self.commit_last_batch
        )?;
        writeln!(
            f,
            "streamed: {} row(s) in {} batch(es)",
            self.rows_streamed, self.batches_streamed
        )?;
        writeln!(
            f,
            "rolling 60s: {:.3} req/s, p50 {:.3} ms, p99 {:.3} ms, pool hit {}",
            self.qps_milli_60s as f64 / 1e3,
            self.p50_60s_ns as f64 / 1e6,
            self.p99_60s_ns as f64 / 1e6,
            if self.pool_hit_permille_60s == u64::MAX {
                "-".to_string()
            } else {
                format!("{:.1}%", self.pool_hit_permille_60s as f64 / 10.0)
            }
        )?;
        writeln!(f, "uptime: {} s", self.uptime_secs)?;
        write!(f, "snapshot: version {}", self.snapshot_version)
    }
}

/// One flight-recorder event as carried by an `EventsResult` frame
/// (the wire form of [`hrdm_obs::event::EventRecord`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireEvent {
    /// Monotonic recorder sequence number (1-based).
    pub seq: u64,
    /// Coarse wall-clock stamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The trace id current when the event was recorded (0 = none).
    pub trace: u128,
    /// The event kind's stable text name (e.g. `commit`, `slow-query`).
    pub kind: String,
    /// Free-form context.
    pub detail: String,
}

impl WireEvent {
    /// The wire form of a recorder event.
    pub fn from_record(e: &hrdm_obs::EventRecord) -> WireEvent {
        WireEvent {
            seq: e.seq,
            unix_ms: e.unix_ms,
            trace: e.trace,
            kind: e.kind.as_str().to_string(),
            detail: e.detail.clone(),
        }
    }

    /// One-line text rendering (what `\events` prints).
    pub fn render(&self) -> String {
        let trace = if self.trace == 0 {
            "-".to_string()
        } else {
            hrdm_obs::trace::render(self.trace)
        };
        format!(
            "#{:<6} t={} trace={} {} {}",
            self.seq, self.unix_ms, trace, self.kind, self.detail
        )
    }
}

/// One protocol message. Kinds `0x01–0x09` travel client → server,
/// `0x81–0x8c` travel server → client; the codec itself is direction
/// agnostic (the client and server share it by construction).
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    // -- client → server --------------------------------------------------
    /// Opens the session: protocol version + client identification.
    Hello {
        /// The client's [`PROTO_VERSION`].
        version: u32,
        /// Free-form client name (diagnostics only).
        client: String,
    },
    /// Run query text; the server streams the result back.
    Query {
        /// The query text (the `hrdm-query` algebra language).
        text: String,
    },
    /// Run a write operation through the group-commit queue.
    Execute {
        /// The operation.
        op: WriteOp,
    },
    /// Plan query text without executing: returns the EXPLAIN rendering
    /// (rewrite trace + physical plan with access paths).
    Prepare {
        /// The query text.
        text: String,
    },
    /// Fold the WAL into a fresh checkpoint (attached servers only).
    Checkpoint,
    /// Request the server's [`ServerStats`].
    Stats,
    /// Abort the in-flight request whose id equals this frame's request
    /// id. Best-effort: if the request already completed, the cancel is a
    /// no-op. Request ids must not be reused within a connection — a
    /// cancel that raced past its request's completion stays recorded
    /// (bounded) and would spuriously cancel a reused id.
    Cancel,
    /// Request the server's metrics registry in Prometheus text
    /// exposition format (counters, gauges, histograms, and the
    /// slow-query log as comment lines).
    Metrics,
    /// Request the newest flight-recorder events (`limit` = 0 for
    /// everything the ring holds).
    Events {
        /// Maximum events to return (newest kept; 0 = all held).
        limit: u64,
    },

    // -- server → client --------------------------------------------------
    /// Accepts the hello: the server's protocol version + identification.
    HelloAck {
        /// The server's [`PROTO_VERSION`].
        version: u32,
        /// Free-form server name (diagnostics only).
        server: String,
    },
    /// Starts a relation-sorted result stream: the scheme, followed by
    /// [`Frame::RowChunk`]s and a [`Frame::Done`].
    RelationHeader {
        /// The result's scheme.
        scheme: Scheme,
        /// Total rows that will be streamed, when known up front. Since
        /// the server streams chunks from a live executor, this is `0`
        /// (unknown) — the authoritative count arrives in
        /// [`Frame::Done`]. Receivers must treat it as a hint only.
        rows: u64,
    },
    /// One chunk of result tuples.
    RowChunk {
        /// The tuples, in result order.
        tuples: Vec<Tuple>,
    },
    /// Ends a result stream.
    Done {
        /// Rows actually streamed — the authoritative result size (the
        /// header's count is only a hint).
        rows: u64,
    },
    /// A lifespan-sorted result.
    LifespanResult {
        /// The lifespan.
        lifespan: Lifespan,
    },
    /// A time-varying (aggregate-sorted) result.
    FunctionResult {
        /// The temporal value.
        value: TemporalValue,
    },
    /// The EXPLAIN rendering answering a [`Frame::Prepare`].
    PlanText {
        /// Rewrite trace + physical plan, as text.
        text: String,
    },
    /// Acknowledges an `Execute` / `Checkpoint`.
    Ack {
        /// Rows affected (materialized row count for `Materialize`, 1 for
        /// `Insert`, 0 otherwise).
        rows: u64,
    },
    /// The server's counters answering a [`Frame::Stats`].
    StatsResult {
        /// The counters.
        stats: ServerStats,
    },
    /// The Prometheus text exposition answering a [`Frame::Metrics`].
    MetricsResult {
        /// The rendered registry (server's own families plus the
        /// process-wide engine families), with slow-query-log comments.
        text: String,
    },
    /// A structured error terminating the request.
    Error {
        /// What went wrong.
        error: WireError,
    },
    /// The flight-recorder dump answering a [`Frame::Events`] request.
    EventsResult {
        /// The events, oldest first, in recorder sequence order.
        events: Vec<WireEvent>,
    },
}

impl Frame {
    /// The kind tag byte identifying this frame on the wire.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Query { .. } => 0x02,
            Frame::Execute { .. } => 0x03,
            Frame::Prepare { .. } => 0x04,
            Frame::Checkpoint => 0x05,
            Frame::Stats => 0x06,
            Frame::Cancel => 0x07,
            Frame::Metrics => 0x08,
            Frame::Events { .. } => 0x09,
            Frame::HelloAck { .. } => 0x81,
            Frame::RelationHeader { .. } => 0x82,
            Frame::RowChunk { .. } => 0x83,
            Frame::Done { .. } => 0x84,
            Frame::LifespanResult { .. } => 0x85,
            Frame::FunctionResult { .. } => 0x86,
            Frame::PlanText { .. } => 0x87,
            Frame::Ack { .. } => 0x88,
            Frame::StatsResult { .. } => 0x89,
            Frame::Error { .. } => 0x8a,
            Frame::MetricsResult { .. } => 0x8b,
            Frame::EventsResult { .. } => 0x8c,
        }
    }
}

/// Errors reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (including clean EOF between
    /// frames, reported as `UnexpectedEof`).
    Io(io::Error),
    /// The bytes violate the protocol: truncated/oversized frames, wrong
    /// version byte, unknown kind tag, malformed payload, trailing bytes.
    Protocol(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Protocol(format!("malformed payload: {e}"))
    }
}

fn put_wire_error(e: &mut Encoder, err: &WireError) {
    match err {
        WireError::Protocol(m) => {
            e.put_u8(0);
            e.put_str(m);
        }
        WireError::Parse(m) => {
            e.put_u8(1);
            e.put_str(m);
        }
        WireError::Model { variant, message } => {
            e.put_u8(2);
            e.put_str(variant);
            e.put_str(message);
        }
        WireError::Db { variant, message } => {
            e.put_u8(3);
            e.put_str(variant);
            e.put_str(message);
        }
        WireError::Cancelled => e.put_u8(4),
        WireError::Limit(m) => {
            e.put_u8(5);
            e.put_str(m);
        }
        WireError::Unavailable(m) => {
            e.put_u8(6);
            e.put_str(m);
        }
        WireError::Unsupported(m) => {
            e.put_u8(7);
            e.put_str(m);
        }
    }
}

fn get_wire_error(d: &mut Decoder<'_>) -> Result<WireError, FrameError> {
    Ok(match d.get_u8()? {
        0 => WireError::Protocol(d.get_str()?.to_string()),
        1 => WireError::Parse(d.get_str()?.to_string()),
        2 => WireError::Model {
            variant: d.get_str()?.to_string(),
            message: d.get_str()?.to_string(),
        },
        3 => WireError::Db {
            variant: d.get_str()?.to_string(),
            message: d.get_str()?.to_string(),
        },
        4 => WireError::Cancelled,
        5 => WireError::Limit(d.get_str()?.to_string()),
        6 => WireError::Unavailable(d.get_str()?.to_string()),
        7 => WireError::Unsupported(d.get_str()?.to_string()),
        tag => return Err(FrameError::Protocol(format!("bad WireError tag {tag:#x}"))),
    })
}

fn put_write_op(e: &mut Encoder, op: &WriteOp) {
    match op {
        WriteOp::CreateRelation { name, scheme } => {
            e.put_u8(0);
            e.put_str(name);
            e.put_scheme(scheme);
        }
        WriteOp::Insert { relation, tuple } => {
            e.put_u8(1);
            e.put_str(relation);
            e.put_tuple(tuple);
        }
        WriteOp::Materialize { name, query } => {
            e.put_u8(2);
            e.put_str(name);
            e.put_str(query);
        }
    }
}

fn get_write_op(d: &mut Decoder<'_>) -> Result<WriteOp, FrameError> {
    Ok(match d.get_u8()? {
        0 => WriteOp::CreateRelation {
            name: d.get_str()?.to_string(),
            scheme: d.get_scheme()?,
        },
        1 => WriteOp::Insert {
            relation: d.get_str()?.to_string(),
            tuple: d.get_tuple()?,
        },
        2 => WriteOp::Materialize {
            name: d.get_str()?.to_string(),
            query: d.get_str()?.to_string(),
        },
        tag => return Err(FrameError::Protocol(format!("bad WriteOp tag {tag:#x}"))),
    })
}

fn put_stats(e: &mut Encoder, s: &ServerStats) {
    e.put_u64(s.connections_accepted);
    e.put_u64(s.connections_active);
    e.put_u64(s.frames_in);
    e.put_u64(s.frames_out);
    e.put_u64(s.requests);
    e.put_u64(s.cancelled);
    e.put_u64(s.plan_ns);
    e.put_u64(s.exec_ns);
    e.put_u64(s.commit_batches);
    e.put_u64(s.commit_ops);
    e.put_u64(s.commit_max_batch);
    e.put_u64(s.commit_last_batch);
    e.put_u64(s.snapshot_version);
    e.put_u64(s.bytes_in);
    e.put_u64(s.bytes_out);
    e.put_u64(s.request_p50_ns);
    e.put_u64(s.request_p95_ns);
    e.put_u64(s.request_p99_ns);
    e.put_u64(s.rows_streamed);
    e.put_u64(s.batches_streamed);
    e.put_u64(s.qps_milli_60s);
    e.put_u64(s.p50_60s_ns);
    e.put_u64(s.p99_60s_ns);
    e.put_u64(s.pool_hit_permille_60s);
    e.put_u64(s.uptime_secs);
    e.put_u64(s.top_streamed.len() as u64);
    for (name, rows) in &s.top_streamed {
        e.put_str(name);
        e.put_u64(*rows);
    }
    e.put_u64(s.relations.len() as u64);
    for (name, count) in &s.relations {
        e.put_str(name);
        e.put_u64(*count);
    }
}

fn get_stats(d: &mut Decoder<'_>) -> Result<ServerStats, FrameError> {
    let mut s = ServerStats {
        connections_accepted: d.get_u64()?,
        connections_active: d.get_u64()?,
        frames_in: d.get_u64()?,
        frames_out: d.get_u64()?,
        requests: d.get_u64()?,
        cancelled: d.get_u64()?,
        plan_ns: d.get_u64()?,
        exec_ns: d.get_u64()?,
        commit_batches: d.get_u64()?,
        commit_ops: d.get_u64()?,
        commit_max_batch: d.get_u64()?,
        commit_last_batch: d.get_u64()?,
        snapshot_version: d.get_u64()?,
        bytes_in: d.get_u64()?,
        bytes_out: d.get_u64()?,
        request_p50_ns: d.get_u64()?,
        request_p95_ns: d.get_u64()?,
        request_p99_ns: d.get_u64()?,
        rows_streamed: d.get_u64()?,
        batches_streamed: d.get_u64()?,
        qps_milli_60s: d.get_u64()?,
        p50_60s_ns: d.get_u64()?,
        p99_60s_ns: d.get_u64()?,
        pool_hit_permille_60s: d.get_u64()?,
        uptime_secs: d.get_u64()?,
        top_streamed: Vec::new(),
        relations: Vec::new(),
    };
    let top = d.get_u64()? as usize;
    for _ in 0..top.min(1 << 20) {
        let name = d.get_str()?.to_string();
        let rows = d.get_u64()?;
        s.top_streamed.push((name, rows));
    }
    let n = d.get_u64()? as usize;
    for _ in 0..n.min(1 << 20) {
        let name = d.get_str()?.to_string();
        let count = d.get_u64()?;
        s.relations.push((name, count));
    }
    Ok(s)
}

fn put_u128(e: &mut Encoder, v: u128) {
    e.put_u64((v >> 64) as u64);
    e.put_u64(v as u64);
}

fn get_u128(d: &mut Decoder<'_>) -> Result<u128, FrameError> {
    let hi = d.get_u64()?;
    let lo = d.get_u64()?;
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

fn put_events(e: &mut Encoder, events: &[WireEvent]) {
    e.put_u64(events.len() as u64);
    for ev in events {
        e.put_u64(ev.seq);
        e.put_u64(ev.unix_ms);
        put_u128(e, ev.trace);
        e.put_str(&ev.kind);
        e.put_str(&ev.detail);
    }
}

fn get_events(d: &mut Decoder<'_>) -> Result<Vec<WireEvent>, FrameError> {
    let n = d.get_u64()? as usize;
    if n > MAX_WIRE_EVENTS {
        return Err(FrameError::Protocol(format!(
            "EventsResult declares {n} events, cap is {MAX_WIRE_EVENTS}"
        )));
    }
    let mut events = Vec::with_capacity(n.min(MAX_WIRE_EVENTS));
    for _ in 0..n {
        events.push(WireEvent {
            seq: d.get_u64()?,
            unix_ms: d.get_u64()?,
            trace: get_u128(d)?,
            kind: d.get_str()?.to_string(),
            detail: d.get_str()?.to_string(),
        });
    }
    Ok(events)
}

/// Encodes one frame with a zero (absent) trace id — the form most
/// tests and trace-less tools use. See [`encode_frame_traced`].
pub fn encode_frame(request_id: u64, frame: &Frame) -> Vec<u8> {
    encode_frame_traced(request_id, 0, frame)
}

/// Encodes one frame, header included, into a single buffer. Note that
/// one `write_all` call does **not** make the write atomic against other
/// threads on the same socket (it may split into several `write`s when
/// the send buffer fills) — writers sharing a socket must serialize
/// frame writes themselves, as [`crate::Client`] and its cancellers do.
pub fn encode_frame_traced(request_id: u64, trace: u128, frame: &Frame) -> Vec<u8> {
    let mut e = Encoder::new();
    match frame {
        Frame::Hello { version, client } => {
            e.put_u64(u64::from(*version));
            e.put_str(client);
        }
        Frame::Query { text }
        | Frame::Prepare { text }
        | Frame::PlanText { text }
        | Frame::MetricsResult { text } => {
            e.put_str(text);
        }
        Frame::Execute { op } => put_write_op(&mut e, op),
        Frame::Checkpoint | Frame::Stats | Frame::Cancel | Frame::Metrics => {}
        Frame::Events { limit } => e.put_u64(*limit),
        Frame::EventsResult { events } => put_events(&mut e, events),
        Frame::HelloAck { version, server } => {
            e.put_u64(u64::from(*version));
            e.put_str(server);
        }
        Frame::RelationHeader { scheme, rows } => {
            e.put_scheme(scheme);
            e.put_u64(*rows);
        }
        Frame::RowChunk { tuples } => {
            e.put_u64(tuples.len() as u64);
            for t in tuples {
                e.put_tuple(t);
            }
        }
        Frame::Done { rows } | Frame::Ack { rows } => e.put_u64(*rows),
        Frame::LifespanResult { lifespan } => e.put_lifespan(lifespan),
        Frame::FunctionResult { value } => e.put_temporal_value(value),
        Frame::StatsResult { stats } => put_stats(&mut e, stats),
        Frame::Error { error } => put_wire_error(&mut e, error),
    }
    let payload = e.finish();
    let body_len = BODY_HEADER + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_be_bytes());
    out.push(WIRE_VERSION);
    out.push(frame.kind());
    out.extend_from_slice(&request_id.to_be_bytes());
    out.extend_from_slice(&trace.to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame body, discarding its trace id — the form most
/// tests use. See [`decode_frame_traced`].
pub fn decode_frame(body: &[u8]) -> Result<(u64, Frame), FrameError> {
    decode_frame_traced(body).map(|(req, _, frame)| (req, frame))
}

/// Decodes one frame *body* (the `len` prefix already consumed): version
/// byte, kind tag, request id, trace id, payload. Trailing bytes are a
/// protocol error — a frame must account for exactly its declared
/// length.
pub fn decode_frame_traced(body: &[u8]) -> Result<(u64, u128, Frame), FrameError> {
    if body.len() < BODY_HEADER {
        return Err(FrameError::Protocol(format!(
            "frame body too short: {} byte(s), need at least {BODY_HEADER}",
            body.len()
        )));
    }
    let ver = body[0];
    if ver != WIRE_VERSION {
        return Err(FrameError::Protocol(format!(
            "unsupported wire version {ver} (this end speaks {WIRE_VERSION})"
        )));
    }
    let kind = body[1];
    let request_id = u64::from_be_bytes(
        body[2..10]
            .try_into()
            .map_err(|_| FrameError::Protocol("frame body header truncated".into()))?,
    );
    let trace = u128::from_be_bytes(
        body[10..26]
            .try_into()
            .map_err(|_| FrameError::Protocol("frame body header truncated".into()))?,
    );
    let mut d = Decoder::new(&body[BODY_HEADER..]);
    let frame = match kind {
        0x01 => Frame::Hello {
            version: decode_version(&mut d)?,
            client: d.get_str()?.to_string(),
        },
        0x02 => Frame::Query {
            text: d.get_str()?.to_string(),
        },
        0x03 => Frame::Execute {
            op: get_write_op(&mut d)?,
        },
        0x04 => Frame::Prepare {
            text: d.get_str()?.to_string(),
        },
        0x05 => Frame::Checkpoint,
        0x06 => Frame::Stats,
        0x07 => Frame::Cancel,
        0x08 => Frame::Metrics,
        0x09 => Frame::Events {
            limit: d.get_u64()?,
        },
        0x81 => Frame::HelloAck {
            version: decode_version(&mut d)?,
            server: d.get_str()?.to_string(),
        },
        0x82 => Frame::RelationHeader {
            scheme: d.get_scheme()?,
            rows: d.get_u64()?,
        },
        0x83 => {
            let n = d.get_u64()? as usize;
            let mut tuples = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                tuples.push(d.get_tuple()?);
            }
            Frame::RowChunk { tuples }
        }
        0x84 => Frame::Done { rows: d.get_u64()? },
        0x85 => Frame::LifespanResult {
            lifespan: d.get_lifespan()?,
        },
        0x86 => Frame::FunctionResult {
            value: d.get_temporal_value()?,
        },
        0x87 => Frame::PlanText {
            text: d.get_str()?.to_string(),
        },
        0x88 => Frame::Ack { rows: d.get_u64()? },
        0x89 => Frame::StatsResult {
            stats: get_stats(&mut d)?,
        },
        0x8a => Frame::Error {
            error: get_wire_error(&mut d)?,
        },
        0x8b => Frame::MetricsResult {
            text: d.get_str()?.to_string(),
        },
        0x8c => Frame::EventsResult {
            events: get_events(&mut d)?,
        },
        tag => return Err(FrameError::Protocol(format!("unknown frame kind {tag:#x}"))),
    };
    if !d.is_done() {
        return Err(FrameError::Protocol(format!(
            "{} trailing byte(s) after frame payload",
            d.remaining()
        )));
    }
    Ok((request_id, trace, frame))
}

fn decode_version(d: &mut Decoder<'_>) -> Result<u32, FrameError> {
    let v = d.get_u64()?;
    u32::try_from(v).map_err(|_| FrameError::Protocol(format!("protocol version {v} out of range")))
}

/// Writes one frame to `w` with a single `write_all`, with a zero
/// trace id. See [`write_frame_traced`].
pub fn write_frame(w: &mut impl Write, request_id: u64, frame: &Frame) -> io::Result<()> {
    write_frame_traced(w, request_id, 0, frame)
}

/// Writes one frame carrying `trace` to `w` with a single `write_all`.
pub fn write_frame_traced(
    w: &mut impl Write,
    request_id: u64,
    trace: u128,
    frame: &Frame,
) -> io::Result<()> {
    w.write_all(&encode_frame_traced(request_id, trace, frame))
}

/// Reads one frame from `r`, discarding its trace id. See
/// [`read_frame_traced`].
pub fn read_frame(r: &mut impl Read) -> Result<(u64, Frame), FrameError> {
    read_frame_traced(r).map(|(req, _, frame)| (req, frame))
}

/// Reads one frame from `r`: the length prefix, then exactly that many
/// body bytes, decoded. A declared length above `MAX_FRAME_BYTES` (or
/// below the fixed header) is rejected *before* any allocation.
pub fn read_frame_traced(r: &mut impl Read) -> Result<(u64, u128, Frame), FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    read_frame_after_len(r, u32::from_be_bytes(len_buf))
}

/// Reads the remainder of a frame whose 4-byte length prefix `len` was
/// already consumed — for readers that take the prefix themselves (e.g.
/// the server's idle-aware read, which must distinguish "timed out with
/// zero bytes consumed" from "timed out mid-frame").
pub fn read_frame_after_len(r: &mut impl Read, len: u32) -> Result<(u64, u128, Frame), FrameError> {
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Protocol(format!(
            "declared frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    if (len as usize) < BODY_HEADER {
        return Err(FrameError::Protocol(format!(
            "declared frame length {len} is shorter than the frame header"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_frame_traced(&body)
}

/// Reassembles a streamed relation result: header scheme + chunked
/// tuples. Tuples are validated against the scheme (the transport is not
/// trusted to uphold model invariants) and the key constraint is
/// re-checked by [`Relation::with_tuples`].
pub fn assemble_relation(scheme: Scheme, tuples: Vec<Tuple>) -> Result<Relation, WireError> {
    for t in &tuples {
        t.validate(&scheme).map_err(|e| {
            WireError::Protocol(format!("streamed tuple violates the result scheme: {e}"))
        })?;
    }
    Relation::with_tuples(scheme, tuples)
        .map_err(|e| WireError::Protocol(format!("streamed tuples do not form a relation: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_frames_round_trip() {
        let frames = vec![
            (
                7,
                Frame::Hello {
                    version: PROTO_VERSION,
                    client: "test".into(),
                },
            ),
            (
                8,
                Frame::Query {
                    text: "WHEN (emp)".into(),
                },
            ),
            (9, Frame::Checkpoint),
            (10, Frame::Stats),
            (11, Frame::Cancel),
            (12, Frame::Done { rows: 42 }),
            (
                13,
                Frame::Error {
                    error: WireError::Cancelled,
                },
            ),
        ];
        for (req, frame) in frames {
            let bytes = encode_frame(req, &frame);
            let (got_req, got) = decode_frame(&bytes[4..]).unwrap();
            assert_eq!(got_req, req);
            assert_eq!(got, frame);
        }
    }

    #[test]
    fn read_frame_round_trips_through_a_cursor() {
        let frame = Frame::PlanText {
            text: "Scan emp [SeqScan]".into(),
        };
        let bytes = encode_frame(3, &frame);
        let mut cursor = std::io::Cursor::new(bytes);
        let (req, got) = read_frame(&mut cursor).unwrap();
        assert_eq!(req, 3);
        assert_eq!(got, frame);
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Protocol(_))
        ));
    }

    #[test]
    fn wrong_wire_version_is_rejected() {
        let mut bytes = encode_frame(1, &Frame::Stats);
        bytes[4] = WIRE_VERSION + 1;
        assert!(matches!(
            decode_frame(&bytes[4..]),
            Err(FrameError::Protocol(m)) if m.contains("wire version")
        ));
    }

    #[test]
    fn model_and_db_errors_carry_their_variants() {
        let model = HrdmError::UnknownRelation("ghost".into());
        match WireError::from(&model) {
            WireError::Model { variant, message } => {
                assert_eq!(variant, "UnknownRelation");
                assert!(message.contains("ghost"));
            }
            other => panic!("expected Model, got {other:?}"),
        }
        let db = DbError::Mode("checkpoint on a detached database".into());
        match WireError::from(&db) {
            WireError::Db { variant, .. } => assert_eq!(variant, "Mode"),
            other => panic!("expected Db, got {other:?}"),
        }
        // DbError::Model unwraps to the model variant.
        let wrapped = DbError::Model(HrdmError::EmptyKey);
        assert!(matches!(WireError::from(&wrapped), WireError::Model { .. }));
    }
}
