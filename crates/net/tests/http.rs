//! The HTTP telemetry plane: `hrdmd --http-metrics` serves `GET
//! /metrics` (the same Prometheus exposition the `Metrics` frame
//! carries) and `GET /healthz` (200 while serving, 503 while draining)
//! over a minimal std-only HTTP/1.1 responder.
//!
//! Covered here: the in-process scrape against a [`ServerHandle`], the
//! drain transition, the responder's method/path/oversize rejections,
//! and — end to end — the real `hrdmd` binary with both listeners on
//! ephemeral ports.

use hrdm_core::prelude::*;
use hrdm_net::{Server, ServerConfig, ServerHandle};
use hrdm_storage::ConcurrentDatabase;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn http_server() -> ServerHandle {
    let db = Arc::new(ConcurrentDatabase::new());
    let era = Lifespan::interval(0, 100);
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();
    let config = ServerConfig {
        http_metrics: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", db, config)
        .unwrap()
        .spawn()
        .unwrap()
}

/// Sends one raw request and returns `(status line, body)`. The
/// responder always answers `Connection: close`, so reading to EOF is
/// the framing.
fn fetch(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status = raw.lines().next().unwrap_or_default().to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    fetch(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: hrdm\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn metrics_and_healthz_are_scrapeable() {
    let server = http_server();
    let http = server.http_addr().expect("http listener configured");

    let (status, body) = get(http, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    let (status, body) = get(http, "/metrics");
    assert!(status.contains("200"), "{status}");
    // The exposition carries the windowed gauges, build info, uptime,
    // and the flight-recorder summary — the same families a Prometheus
    // scrape needs to be parseable.
    assert!(body.contains("# TYPE hrdm_net_qps gauge"), "{body}");
    assert!(body.contains("# TYPE hrdm_build_info gauge"), "{body}");
    assert!(body.contains("hrdm_uptime_seconds"), "{body}");
    assert!(body.contains("hrdm_events_recorded_total"), "{body}");
    assert!(body.contains("hrdm_net_request_p99_60s_ns"), "{body}");
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let _name = parts.next().expect("metric name");
        let value = parts.next().expect("metric value");
        assert!(value.parse::<f64>().is_ok(), "bad sample line {line:?}");
    }

    // Query strings are ignored for routing.
    let (status, _) = get(http, "/healthz?verbose=1");
    assert!(status.contains("200"), "{status}");

    server.shutdown();
}

#[test]
fn responder_rejects_what_it_must() {
    let server = http_server();
    let http = server.http_addr().expect("http listener configured");

    let (status, _) = get(http, "/nope");
    assert!(status.contains("404"), "{status}");

    let (status, _) = fetch(
        http,
        "POST /metrics HTTP/1.1\r\nHost: hrdm\r\nConnection: close\r\n\r\n",
    );
    assert!(status.contains("405"), "{status}");

    // A request head that never terminates within the 8 KiB cap is
    // answered 431, not buffered without bound.
    let mut stream = TcpStream::connect(http).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge = format!(
        "GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n",
        "a".repeat(16 * 1024)
    );
    stream.write_all(huge.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");

    server.shutdown();
}

#[test]
fn healthz_reports_draining_during_shutdown() {
    let server = http_server();
    let http = server.http_addr().expect("http listener configured");

    let (status, _) = get(http, "/healthz");
    assert!(status.contains("200"), "{status}");

    // Begin the drain without tearing the HTTP listener down: load
    // balancers watching /healthz see 503 while sessions finish.
    server.begin_drain();
    let (status, body) = get(http, "/healthz");
    assert!(status.contains("503"), "{status}");
    assert_eq!(body, "draining\n");

    // /metrics stays scrapeable during the drain.
    let (status, _) = get(http, "/metrics");
    assert!(status.contains("200"), "{status}");

    server.shutdown();
}

#[test]
fn real_hrdmd_serves_the_scrape_plane() {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_hrdmd"))
        .args(["--listen", "127.0.0.1:0", "--http-metrics", "127.0.0.1:0"])
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // The daemon reports both bound addresses on stderr at startup.
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let mut tcp: Option<SocketAddr> = None;
    let mut http: Option<SocketAddr> = None;
    while tcp.is_none() || http.is_none() {
        let line = lines
            .next()
            .expect("hrdmd exited before reporting its addresses")
            .unwrap();
        if let Some(addr) = line.strip_prefix("hrdmd: listening on ") {
            tcp = Some(addr.trim().parse().unwrap());
        } else if let Some(addr) = line.strip_prefix("hrdmd: http-metrics on ") {
            http = Some(addr.trim().parse().unwrap());
        }
    }
    let (tcp, http) = (tcp.unwrap(), http.unwrap());

    let result = std::panic::catch_unwind(|| {
        let (status, body) = get(http, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        // Drive requests over the wire protocol, then confirm the
        // scrape sees them: the two planes share one set of counters.
        let mut client = hrdm_net::Client::connect(tcp).unwrap();
        let era = Lifespan::interval(0, 100);
        let scheme = Scheme::builder()
            .key_attr("K", ValueKind::Int, era.clone())
            .build()
            .unwrap();
        client.create_relation("r", scheme).unwrap();
        client.query("r").unwrap();
        let (status, body) = get(http, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("hrdm_net_requests_total"), "{body}");
        assert!(body.contains("# TYPE hrdm_build_info gauge"), "{body}");
    });

    let _ = child.kill();
    let _ = child.wait();
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
