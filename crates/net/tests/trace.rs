//! End-to-end trace propagation acceptance: one request's trace id must
//! be recoverable from every surface the request touched —
//!
//! 1. the client itself ([`Client::last_trace_id`]),
//! 2. the remote `EXPLAIN ANALYZE` text (`trace:` line),
//! 3. the slow-query log riding the Prometheus exposition (`trace=`),
//! 4. the flight recorder dumped over the `Events` frame (`\events`),
//!    in sequence order.
//!
//! Plus the protocol edges: responses echo the request's trace id (the
//! client validates the echo on every call), error frames land in the
//! recorder under the same trace, and mixed-version peers are refused
//! at `Hello`.

use hrdm_core::prelude::*;
use hrdm_net::{Client, Frame, NetError, Server, ServerConfig, ServerHandle, PROTO_VERSION};
use hrdm_storage::ConcurrentDatabase;
use std::sync::Arc;
use std::time::Duration;

/// A server over a small in-memory relation, recording every request in
/// the slow-query log (threshold zero) so one query is enough to light
/// up all four surfaces.
fn traced_server() -> ServerHandle {
    let db = Arc::new(ConcurrentDatabase::new());
    let era = Lifespan::interval(0, 1000);
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();
    for k in 0..4i64 {
        let t = Tuple::builder(era.clone())
            .constant("K", k)
            .finish(&scheme)
            .unwrap();
        db.insert("r", t).unwrap();
    }
    let config = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", db, config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn one_trace_id_is_recoverable_from_all_four_surfaces() {
    let server = traced_server();
    let mut client = Client::connect_as(server.addr(), "trace-acceptance").unwrap();

    // Surface 1: the client holds the id it minted for this request.
    let text = client.explain("EXPLAIN ANALYZE r").unwrap();
    let trace = client.last_trace_id();
    assert_ne!(trace, 0, "observability is on: requests mint trace ids");
    let hex = hrdm_obs::trace::render(trace);

    // Surface 2: the server-side EXPLAIN ANALYZE text reports the same
    // id — the worker installed the header's trace before planning.
    assert!(text.contains(&format!("trace: {hex}")), "{text}");

    // Surface 3: the slow-query log (threshold zero admitted the
    // request) renders the id in its exposition comment line.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains(&format!("trace={hex}")), "{metrics}");

    // Surface 4: the flight recorder captured the slowlog admission as
    // a `slow-query` event stamped with the same id, and the `\events`
    // dump arrives in sequence order.
    let events = client.events(0).unwrap();
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "events must arrive in sequence order: {seqs:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == "slow-query" && e.trace == trace),
        "no slow-query event carries trace {hex}: {events:#?}"
    );

    // The session's lifecycle is in the ring too (untraced: they happen
    // outside any request).
    assert!(events.iter().any(|e| e.kind == "session-open"));

    server.shutdown();
}

#[test]
fn error_frames_record_the_request_trace() {
    let server = traced_server();
    let mut client = Client::connect_as(server.addr(), "trace-errors").unwrap();

    let err = client.query("THIS IS NOT A QUERY ((").unwrap_err();
    assert!(matches!(err, NetError::Remote(_)), "{err}");
    let trace = client.last_trace_id();
    assert_ne!(trace, 0);

    // The error event in the recorder carries the failing request's id,
    // so `\events` alone is enough to tie a client-reported failure to
    // the server-side context around it.
    let events = client.events(0).unwrap();
    assert!(
        events.iter().any(|e| e.kind == "error" && e.trace == trace),
        "no error event carries trace {}: {events:#?}",
        hrdm_obs::trace::render(trace)
    );

    server.shutdown();
}

#[test]
fn each_request_mints_a_fresh_trace() {
    let server = traced_server();
    let mut client = Client::connect_as(server.addr(), "trace-fresh").unwrap();

    client.query("r").unwrap();
    let first = client.last_trace_id();
    client.query("r").unwrap();
    let second = client.last_trace_id();
    assert_ne!(first, 0);
    assert_ne!(second, 0);
    assert_ne!(first, second, "trace ids are per-request, not per-session");

    server.shutdown();
}

#[test]
fn mixed_proto_version_is_refused_at_hello() {
    let server = traced_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();

    hrdm_net::write_frame(
        &mut stream,
        1,
        &Frame::Hello {
            version: PROTO_VERSION - 1,
            client: "old-peer".to_string(),
        },
    )
    .unwrap();
    let (_, frame) = hrdm_net::read_frame(&mut stream).unwrap();
    match frame {
        Frame::Error { error } => {
            let msg = error.to_string();
            assert!(msg.contains("protocol version mismatch"), "{msg}");
            assert!(msg.contains(&PROTO_VERSION.to_string()), "{msg}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // The session is closed: the next read hits EOF.
    assert!(hrdm_net::read_frame(&mut stream).is_err());

    server.shutdown();
}

#[test]
fn old_wire_version_frames_are_refused() {
    let server = traced_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();

    // A header-sized body whose version byte says 1: the version check
    // fails before the kind is even looked at, so the exact payload
    // does not matter.
    let mut body = vec![0u8; 26];
    body[0] = 1; // the retired wire version
    body[1] = 0x01; // Hello
    let mut raw = (body.len() as u32).to_be_bytes().to_vec();
    raw.extend_from_slice(&body);
    std::io::Write::write_all(&mut stream, &raw).unwrap();

    let (_, frame) = hrdm_net::read_frame(&mut stream).unwrap();
    match frame {
        Frame::Error { error } => {
            assert!(error.to_string().contains("wire version"), "{error}");
        }
        other => panic!("expected a wire-version refusal, got {other:?}"),
    }
    assert!(hrdm_net::read_frame(&mut stream).is_err());

    server.shutdown();
}
