//! Integration tests for `hrdmd`: concurrent clients over real TCP
//! sockets against one shared [`ConcurrentDatabase`].
//!
//! The headline guarantees:
//!
//! * N threaded clients issuing interleaved reads and writes observe the
//!   same **prefix consistency** as in-process readers
//!   (`crates/storage/tests/concurrency.rs`);
//! * a client killed mid-request leaks no session slot;
//! * `Cancel` aborts a long result stream;
//! * `EXPLAIN` over the wire still reports index scans and partition
//!   pruning — planner fidelity survives the network boundary.

use hrdm_core::prelude::*;
use hrdm_net::{
    encode_frame, read_frame, write_frame, Client, Frame, NetError, Server, ServerConfig,
    WireError, PROTO_VERSION,
};
use hrdm_query::QueryResult;
use hrdm_storage::{ConcurrentDatabase, PartitionPolicy};
use std::collections::BTreeSet;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 1000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

fn spawn_server(config: ServerConfig) -> (hrdm_net::ServerHandle, Arc<ConcurrentDatabase>) {
    let db = Arc::new(ConcurrentDatabase::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&db), config).unwrap();
    (server.spawn().unwrap(), db)
}

fn relation_keys(r: &Relation) -> BTreeSet<i64> {
    r.iter()
        .map(|t| match t.key_values(r.scheme()).unwrap()[0] {
            Value::Int(k) => k,
            ref other => panic!("non-int key {other:?}"),
        })
        .collect()
}

#[test]
fn hello_and_basic_query_round_trip() {
    let (server, db) = spawn_server(ServerConfig::default());
    db.create_relation("emp", scheme()).unwrap();
    db.insert("emp", tup(1)).unwrap();
    db.insert("emp", tup(2)).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.server_name().starts_with("hrdmd/"));
    match client.query("emp").unwrap() {
        QueryResult::Relation(r) => assert_eq!(relation_keys(&r), BTreeSet::from([1, 2])),
        other => panic!("expected relation, got {other:?}"),
    }
    match client.query("WHEN (emp)").unwrap() {
        QueryResult::Lifespan(l) => assert!(!l.is_empty()),
        other => panic!("expected lifespan, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn writes_over_the_wire_are_readable_and_counted() {
    let (server, _db) = spawn_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    client.create_relation("r", scheme()).unwrap();
    for k in 0..10 {
        client.insert("r", tup(k)).unwrap();
    }
    let rows = client.materialize("copy", "r").unwrap();
    assert_eq!(rows, 10);
    match client.query("copy").unwrap() {
        QueryResult::Relation(r) => assert_eq!(r.len(), 10),
        other => panic!("expected relation, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    // create + 10 inserts + materialize's create+put = 13 committed ops.
    assert_eq!(stats.commit_ops, 13);
    assert!(stats.requests >= 12);
    assert!(stats.frames_in >= 12);
    assert!(stats.frames_out >= 12);
    assert!(stats
        .relations
        .iter()
        .any(|(name, count)| name == "copy" && *count == 10));
    server.shutdown();
}

#[test]
fn structured_errors_carry_model_variants_across_the_wire() {
    let (server, db) = spawn_server(ServerConfig::default());
    db.create_relation("r", scheme()).unwrap();
    db.insert("r", tup(7)).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown relation in a query → Model error with the variant intact.
    match client.query("WHEN (ghost)") {
        Err(NetError::Remote(WireError::Model { variant, message })) => {
            assert_eq!(variant, "UnknownRelation");
            assert!(message.contains("ghost"));
        }
        other => panic!("expected UnknownRelation over the wire, got {other:?}"),
    }
    // Parse error → Parse.
    assert!(matches!(
        client.query("NOT A QUERY (("),
        Err(NetError::Remote(WireError::Parse(_)))
    ));
    // Key conflict on insert → Model(KeyViolation).
    match client.insert("r", tup(7)) {
        Err(NetError::Remote(WireError::Model { variant, .. })) => {
            assert_eq!(variant, "KeyViolation");
        }
        other => panic!("expected KeyViolation, got {other:?}"),
    }
    // Checkpoint on a detached database → Db(Mode).
    match client.checkpoint() {
        Err(NetError::Remote(WireError::Db { variant, .. })) => assert_eq!(variant, "Mode"),
        other => panic!("expected Db(Mode), got {other:?}"),
    }
    server.shutdown();
}

/// The acceptance criterion: 8 concurrent wire clients — writers
/// inserting sequential keys, readers querying — and every observed
/// result is a contiguous prefix `{0..len}` of the commit order, exactly
/// like the in-process oracle in `crates/storage/tests/concurrency.rs`.
#[test]
fn eight_clients_observe_prefix_consistency() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const PER_WRITER: i64 = 40;

    let (server, db) = spawn_server(ServerConfig::default());
    db.create_relation("r", scheme()).unwrap();
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: disjoint key ranges, issued strictly in a global order per
    // writer. With multiple independent writers, prefix consistency means
    // each writer's own keys appear in contiguous prefixes of its
    // sequence (no writer's later key without its earlier keys).
    let writer_threads: Vec<_> = (0..WRITERS as i64)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..PER_WRITER {
                    client.insert("r", tup(w * 10_000 + i)).unwrap();
                }
            })
        })
        .collect();

    let reader_threads: Vec<_> = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut checks = 0u64;
                let mut last_len = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let keys = match client.query("r").unwrap() {
                        QueryResult::Relation(r) => relation_keys(&r),
                        other => panic!("expected relation, got {other:?}"),
                    };
                    // Per-writer contiguity: writer w's observed keys are
                    // exactly {w*10_000 .. w*10_000 + count}.
                    for w in 0..WRITERS as i64 {
                        let observed: Vec<i64> = keys
                            .iter()
                            .copied()
                            .filter(|k| (w * 10_000..(w + 1) * 10_000).contains(k))
                            .collect();
                        let expect: Vec<i64> =
                            (w * 10_000..w * 10_000 + observed.len() as i64).collect();
                        assert_eq!(
                            observed, expect,
                            "writer {w}'s keys are not a contiguous prefix"
                        );
                    }
                    assert!(keys.len() >= last_len, "observed state went backwards");
                    last_len = keys.len();
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    for t in writer_threads {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = reader_threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(checks > 0, "readers never observed anything");
    assert_eq!(
        db.snapshot().relation("r").unwrap().len(),
        WRITERS * PER_WRITER as usize
    );
    // Group commit formed batches from the concurrent wire writers.
    let stats = server.stats();
    assert_eq!(stats.commit_ops, 1 + (WRITERS as u64) * PER_WRITER as u64);
    server.shutdown();
}

/// A client killed mid-request must not leak its session slot: the
/// server's active count returns to zero and new connections still work.
#[test]
fn killed_client_leaks_no_session_slot() {
    let (server, db) = spawn_server(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    db.create_relation("r", scheme()).unwrap();

    // Kill one client after the handshake, mid-frame: write a length
    // prefix promising more bytes than ever arrive, then drop.
    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&encode_frame(
            1,
            &Frame::Hello {
                version: PROTO_VERSION,
                client: "doomed".into(),
            },
        ))
        .unwrap();
        let (_, ack) = read_frame(&mut raw).unwrap();
        assert!(matches!(ack, Frame::HelloAck { .. }));
        raw.write_all(&500u32.to_be_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
        // dropped here — connection dies mid-frame
    }
    // And one more that dies before even saying hello.
    drop(TcpStream::connect(server.addr()).unwrap());

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 0, "session slot leaked");

    // Both slots are free again: two fresh clients fit simultaneously.
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    assert!(a.query("r").is_ok());
    assert!(b.query("r").is_ok());
    server.shutdown();
}

/// Connections beyond `max_connections` are refused with a structured
/// `Unavailable` error, and a freed slot is reusable.
#[test]
fn connection_limit_is_enforced_with_a_structured_refusal() {
    let (server, _db) = spawn_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let first = Client::connect(server.addr()).unwrap();
    match Client::connect(server.addr()) {
        Err(NetError::Remote(WireError::Unavailable(m))) => {
            assert!(m.contains("connection limit"), "{m}");
        }
        Err(other) => panic!("expected Unavailable, got {other:?}"),
        Ok(_) => panic!("expected Unavailable, got a session"),
    }
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(Client::connect(server.addr()).is_ok());
    server.shutdown();
}

/// `Cancel` aborts a long result stream: the client gets `Cancelled`
/// instead of the full result, and the session survives for the next
/// request.
#[test]
fn cancel_aborts_a_long_scan() {
    let (server, db) = spawn_server(ServerConfig {
        chunk_rows: 1, // maximal cancellation granularity
        ..ServerConfig::default()
    });
    db.create_relation("r", scheme()).unwrap();
    for k in 0..3000 {
        db.insert("r", tup(k)).unwrap();
    }

    let mut client = Client::connect(server.addr()).unwrap();
    let mut canceller = client.canceller().unwrap();
    let req = client.next_request_id();
    // Fire the cancel from another thread while the stream is running.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        canceller.cancel(req).unwrap();
    });
    match client.query("r") {
        Err(NetError::Remote(WireError::Cancelled)) => {}
        Ok(QueryResult::Relation(r)) => {
            // The race is real: the whole stream may have finished before
            // the cancel landed. That outcome must be the *full* result.
            assert_eq!(r.len(), 3000);
        }
        other => panic!("expected Cancelled or the full result, got {other:?}"),
    }
    killer.join().unwrap();
    // The session is still usable afterwards.
    match client.query("WHEN (r)").unwrap() {
        QueryResult::Lifespan(l) => assert!(!l.is_empty()),
        other => panic!("expected lifespan, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.cancelled <= 1);
    server.shutdown();
}

/// Row and byte caps turn oversized results into structured `Limit`
/// errors instead of unbounded streams.
#[test]
fn result_caps_are_enforced() {
    let (server, db) = spawn_server(ServerConfig {
        max_result_rows: 5,
        ..ServerConfig::default()
    });
    db.create_relation("r", scheme()).unwrap();
    for k in 0..10 {
        db.insert("r", tup(k)).unwrap();
    }
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("r") {
        Err(NetError::Remote(WireError::Limit(m))) => assert!(m.contains("rows"), "{m}"),
        other => panic!("expected Limit, got {other:?}"),
    }
    // A selective query under the cap still works on the same session.
    assert!(client.query("SELECT-WHEN (K = 3) (r)").is_ok());
    server.shutdown();
}

/// Cross-version `Hello` negotiation fails cleanly: a structured error
/// frame naming both versions, then the connection closes.
#[test]
fn cross_version_hello_fails_cleanly() {
    let (server, _db) = spawn_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&encode_frame(
        1,
        &Frame::Hello {
            version: PROTO_VERSION + 1,
            client: "from-the-future".into(),
        },
    ))
    .unwrap();
    match read_frame(&mut raw) {
        Ok((
            _,
            Frame::Error {
                error: WireError::Protocol(m),
            },
        )) => {
            assert!(m.contains("version mismatch"), "{m}");
        }
        other => panic!("expected a protocol error frame, got {other:?}"),
    }
    // The server hung up: the next read is EOF, not a hang.
    assert!(read_frame(&mut raw).is_err());
    server.shutdown();
}

/// A first frame that is not `Hello` is refused.
#[test]
fn non_hello_opener_is_refused() {
    let (server, _db) = spawn_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, 1, &Frame::Stats).unwrap();
    match read_frame(&mut raw) {
        Ok((
            _,
            Frame::Error {
                error: WireError::Protocol(m),
            },
        )) => {
            assert!(m.contains("Hello"), "{m}");
        }
        other => panic!("expected a protocol error frame, got {other:?}"),
    }
    server.shutdown();
}

/// The acceptance criterion's planner-fidelity half: an over-the-wire
/// `EXPLAIN` of a literal TIMESLICE on a partitioned relation reports the
/// lifespan index scan *and* the partition pruning counts — the server
/// plans on the same snapshots an in-process reader would.
#[test]
fn explain_over_the_wire_reports_index_scan_and_partition_pruning() {
    let db = Arc::new(ConcurrentDatabase::new());
    // 64 partitions over a 2^20-chronon era (span 2^14), one tuple per
    // partition so every partition is materialized.
    db.set_partition_policy(PartitionPolicy::SpanLog2(14));
    let era = Lifespan::interval(0, 1 << 20);
    let part_scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap();
    db.create_relation("r", part_scheme.clone()).unwrap();
    for p in 0..64i64 {
        let lo = p << 14;
        let life = Lifespan::interval(lo, lo + 50);
        let t = Tuple::builder(life.clone())
            .constant("K", p)
            .value("V", TemporalValue::constant(&life, Value::Int(p)))
            .finish(&part_scheme)
            .unwrap();
        db.insert("r", t).unwrap();
    }
    let server = Server::bind("127.0.0.1:0", Arc::clone(&db), ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    // A slice covering partitions 32 and 33 only: 62 of 64 pruned.
    let lo = 32i64 << 14;
    let hi = (34i64 << 14) - 1;
    let plan = client
        .explain(&format!("TIMESLICE [{lo}..{hi}] (r)"))
        .unwrap();
    assert!(plan.contains("IndexScan(lifespan"), "{plan}");
    assert!(plan.contains("partitions: 62/64 pruned"), "{plan}");

    // And the planned execution agrees with what the plan promises.
    match client
        .query(&format!("TIMESLICE [{lo}..{hi}] (r)"))
        .unwrap()
    {
        QueryResult::Relation(r) => assert_eq!(relation_keys(&r), BTreeSet::from([32, 33])),
        other => panic!("expected relation, got {other:?}"),
    }
    server.shutdown();
}

/// Graceful shutdown drains an in-flight write: a request racing the
/// shutdown either completes durably or is refused — never half-applied.
#[test]
fn shutdown_drains_in_flight_requests() {
    let (server, db) = spawn_server(ServerConfig::default());
    db.create_relation("r", scheme()).unwrap();
    let addr = server.addr();
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut acked = 0u64;
        for k in 0..200 {
            match client.insert("r", tup(k)) {
                Ok(()) => acked += 1,
                Err(_) => break, // shutdown reached this session
            }
        }
        acked
    });
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    let acked = writer.join().unwrap();
    // Every acknowledged write is in the committed state — the shutdown
    // drained them, and nothing unacknowledged was half-applied.
    let committed = db.snapshot().relation("r").unwrap().len() as u64;
    assert_eq!(committed, acked, "ack/commit mismatch across shutdown");
}

/// Create-or-replace materialization is atomic across connections: two
/// clients racing `m := r` on a name that does not exist yet must BOTH
/// succeed (one create wins inside the commit batch, both puts apply).
#[test]
fn racing_remote_materializations_both_succeed() {
    let (server, db) = spawn_server(ServerConfig::default());
    db.create_relation("r", scheme()).unwrap();
    for k in 0..5 {
        db.insert("r", tup(k)).unwrap();
    }
    let addr = server.addr();
    let racers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.materialize("m", "r")
            })
        })
        .collect();
    for r in racers {
        let rows = r
            .join()
            .unwrap()
            .expect("every racing materialize succeeds");
        assert_eq!(rows, 5);
    }
    assert_eq!(db.snapshot().relation("m").unwrap().len(), 5);
    server.shutdown();
}

/// The cancel-latency acceptance scenario: on a 100 000-row scan, a
/// `Cancel` that lands while the stream is live aborts it mid-scan — the
/// client receives a partial row count and a structured `Cancelled`, not
/// the full result. Driven over raw frames so the test controls exactly
/// when the cancel is sent (after the stream has demonstrably started)
/// instead of racing a sleep against the server.
#[test]
fn cancel_aborts_a_100k_scan_mid_stream() {
    let (server, db) = spawn_server(ServerConfig {
        chunk_rows: 64,
        ..ServerConfig::default()
    });
    db.create_relation("r", scheme()).unwrap();
    let tuples: Vec<Tuple> = (0..100_000i64).map(tup).collect();
    // Keys 0..100_000 are distinct by construction; the unchecked
    // constructor skips the O(n²) key-constraint validation, which would
    // dominate the test at this scale.
    db.put_relation("r", Relation::from_parts_unchecked(scheme(), tuples))
        .unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).ok();
    raw.set_read_timeout(Some(Duration::from_secs(30))).ok();
    write_frame(
        &mut raw,
        1,
        &Frame::Hello {
            version: PROTO_VERSION,
            client: "cancel-acceptance".into(),
        },
    )
    .unwrap();
    match read_frame(&mut raw).unwrap() {
        (1, Frame::HelloAck { .. }) => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }

    write_frame(&mut raw, 2, &Frame::Query { text: "r".into() }).unwrap();
    // The live executor streams before it knows the total: header first.
    match read_frame(&mut raw).unwrap() {
        (2, Frame::RelationHeader { rows, .. }) => {
            assert_eq!(rows, 0, "streaming headers must not pre-announce totals");
        }
        other => panic!("expected RelationHeader, got {other:?}"),
    }
    // One chunk proves the scan is running; then cancel immediately, with
    // ~99.9% of the scan still ahead of the server.
    let mut received = 0usize;
    match read_frame(&mut raw).unwrap() {
        (2, Frame::RowChunk { tuples }) => received += tuples.len(),
        other => panic!("expected RowChunk, got {other:?}"),
    }
    write_frame(&mut raw, 2, &Frame::Cancel).unwrap();

    // Drain: buffered chunks may still arrive, then the executor's probe
    // fires at a batch boundary and the stream ends in `Cancelled`.
    loop {
        match read_frame(&mut raw).unwrap() {
            (2, Frame::RowChunk { tuples }) => received += tuples.len(),
            (
                2,
                Frame::Error {
                    error: WireError::Cancelled,
                },
            ) => break,
            (2, Frame::Done { .. }) => panic!("scan ran to completion despite the cancel"),
            other => panic!("expected RowChunk/Cancelled, got {other:?}"),
        }
    }
    assert!(
        received > 0 && received < 100_000,
        "expected a partial stream, got {received} of 100000 rows"
    );

    // The session survives for the next request on the same socket.
    write_frame(
        &mut raw,
        3,
        &Frame::Query {
            text: "WHEN (r)".into(),
        },
    )
    .unwrap();
    match read_frame(&mut raw).unwrap() {
        (3, Frame::LifespanResult { lifespan }) => assert!(!lifespan.is_empty()),
        other => panic!("expected LifespanResult, got {other:?}"),
    }

    // The server accounted the abort and the partial stream.
    let mut observer = Client::connect(server.addr()).unwrap();
    let stats = observer.stats().unwrap();
    assert_eq!(stats.cancelled, 1);
    assert!(
        stats.rows_streamed as usize >= received && (stats.rows_streamed as usize) < 100_000,
        "rows_streamed = {}",
        stats.rows_streamed
    );
    assert!(stats.batches_streamed > 0);
    server.shutdown();
}
