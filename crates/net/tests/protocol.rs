//! Property tests for the wire protocol: every frame type round-trips
//! exactly (encode ≡ decode), and malformed bytes — truncations,
//! oversized length declarations, garbage — are rejected with a protocol
//! error, never a panic.

use hrdm_core::prelude::*;
use hrdm_net::{
    decode_frame, decode_frame_traced, encode_frame, encode_frame_traced, read_frame, Frame,
    FrameError, ServerStats, WireError, WireEvent, WriteOp, MAX_FRAME_BYTES, PROTO_VERSION,
    WIRE_VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Model-object strategies (valid by construction, so decoding's model
// validation accepts them and equality is exact).
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(|f| Value::float(f).expect("finite")),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (-100_000i64..100_000).prop_map(Value::time),
    ]
}

fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((-300i64..300, 0i64..30), 0..5).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, lo + len)),
        )
    })
}

fn temporal_strategy() -> impl Strategy<Value = TemporalValue> {
    prop::collection::vec(((0i64..150), 0i64..8, value_strategy()), 0..5).prop_map(|raw| {
        let mut segs = Vec::new();
        let mut cursor = 0i64;
        let mut sorted = raw;
        sorted.sort_by_key(|(lo, _, _)| *lo);
        for (lo, len, v) in sorted {
            let lo = lo.max(cursor);
            let hi = lo + len;
            segs.push((Interval::of(lo, hi), v));
            cursor = hi + 2;
        }
        TemporalValue::from_segments(segs).expect("disjoint by construction")
    })
}

/// A valid scheme: one constant key attribute spanning the era plus 0–2
/// value attributes whose lifespans sit inside it (the key-lifespan
/// covenant holds by construction).
fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    (
        0i64..50,
        50i64..400,
        prop::collection::vec((0usize..4, 0i64..40, 1i64..50), 0..3),
    )
        .prop_map(|(lo, len, attrs)| {
            let era = Lifespan::interval(lo, lo + len);
            let mut b = Scheme::builder().key_attr("K", ValueKind::Int, era.clone());
            for (i, (kind, off, alen)) in attrs.into_iter().enumerate() {
                let kind = match kind {
                    0 => HistoricalDomain::int(),
                    1 => HistoricalDomain::new(ValueKind::Str),
                    2 => HistoricalDomain::new(ValueKind::Bool),
                    _ => HistoricalDomain::new(ValueKind::Float),
                };
                let a_lo = lo + off.min(len);
                let a_hi = (a_lo + alen).min(lo + len);
                b = b.attr(
                    format!("A{i}"),
                    kind,
                    Lifespan::interval(a_lo, a_hi.max(a_lo)),
                );
            }
            b.build().expect("valid by construction")
        })
}

/// An arbitrary well-formed tuple (decode does not re-validate a lone
/// tuple against a scheme, so any lifespan + temporal-value map works).
fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        lifespan_strategy(),
        prop::collection::vec(("[A-Z]{1,4}", temporal_strategy()), 0..4),
    )
        .prop_map(|(life, vals)| {
            let mut map = std::collections::BTreeMap::new();
            for (name, tv) in vals {
                map.insert(Attribute::new(name), tv);
            }
            Tuple::from_parts(life, map)
        })
}

fn write_op_strategy() -> impl Strategy<Value = WriteOp> {
    prop_oneof![
        ("[a-z]{1,8}", scheme_strategy())
            .prop_map(|(name, scheme)| WriteOp::CreateRelation { name, scheme }),
        ("[a-z]{1,8}", tuple_strategy())
            .prop_map(|(relation, tuple)| WriteOp::Insert { relation, tuple }),
        ("[a-z]{1,8}", "[a-zA-Z0-9 ()=]{0,30}")
            .prop_map(|(name, query)| { WriteOp::Materialize { name, query } }),
    ]
}

fn wire_error_strategy() -> impl Strategy<Value = WireError> {
    prop_oneof![
        "[ -~]{0,40}".prop_map(WireError::Protocol),
        "[ -~]{0,40}".prop_map(WireError::Parse),
        ("[A-Za-z]{1,20}", "[ -~]{0,40}")
            .prop_map(|(variant, message)| WireError::Model { variant, message }),
        ("[A-Za-z]{1,20}", "[ -~]{0,40}")
            .prop_map(|(variant, message)| WireError::Db { variant, message }),
        Just(WireError::Cancelled),
        "[ -~]{0,40}".prop_map(WireError::Limit),
        "[ -~]{0,40}".prop_map(WireError::Unavailable),
        "[ -~]{0,40}".prop_map(WireError::Unsupported),
    ]
}

fn stats_strategy() -> impl Strategy<Value = ServerStats> {
    (
        prop::collection::vec(any::<u64>(), 26),
        prop::collection::vec(("[a-z]{1,8}", any::<u64>()), 0..4),
        prop::collection::vec(("[a-z]{1,8}", any::<u64>()), 0..4),
    )
        .prop_map(|(n, relations, top_streamed)| ServerStats {
            connections_accepted: n[0],
            connections_active: n[1],
            frames_in: n[2],
            frames_out: n[3],
            requests: n[4],
            cancelled: n[5],
            plan_ns: n[6],
            exec_ns: n[7],
            commit_batches: n[8],
            commit_ops: n[9],
            commit_max_batch: n[10],
            commit_last_batch: n[11],
            snapshot_version: n[12],
            bytes_in: n[13],
            bytes_out: n[14],
            request_p50_ns: n[15],
            request_p95_ns: n[16],
            request_p99_ns: n[17],
            rows_streamed: n[18],
            batches_streamed: n[19],
            qps_milli_60s: n[20],
            p50_60s_ns: n[21],
            p99_60s_ns: n[22],
            pool_hit_permille_60s: n[23],
            uptime_secs: n[24],
            top_streamed,
            relations,
        })
}

/// `u128` has no `Arbitrary` impl in this proptest; build one from two
/// u64 halves.
fn u128_strategy() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo))
}

fn wire_event_strategy() -> impl Strategy<Value = WireEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        u128_strategy(),
        "[a-z-]{1,16}",
        "[ -~]{0,40}",
    )
        .prop_map(|(seq, unix_ms, trace, kind, detail)| WireEvent {
            seq,
            unix_ms,
            trace,
            kind,
            detail,
        })
}

/// Every frame type, with payloads drawn from the model strategies. The
/// exhaustiveness match in `all_kinds_covered` pins this list to the
/// `Frame` enum — adding a variant without a strategy fails that test.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ("[ -~]{0,16}").prop_map(|client| Frame::Hello {
            version: PROTO_VERSION,
            client
        }),
        "[ -~]{0,40}".prop_map(|text| Frame::Query { text }),
        write_op_strategy().prop_map(|op| Frame::Execute { op }),
        "[ -~]{0,40}".prop_map(|text| Frame::Prepare { text }),
        Just(Frame::Checkpoint),
        Just(Frame::Stats),
        Just(Frame::Cancel),
        Just(Frame::Metrics),
        ("[ -~]{0,16}").prop_map(|server| Frame::HelloAck {
            version: PROTO_VERSION,
            server
        }),
        (scheme_strategy(), any::<u64>())
            .prop_map(|(scheme, rows)| Frame::RelationHeader { scheme, rows }),
        prop::collection::vec(tuple_strategy(), 0..4).prop_map(|tuples| Frame::RowChunk { tuples }),
        any::<u64>().prop_map(|rows| Frame::Done { rows }),
        lifespan_strategy().prop_map(|lifespan| Frame::LifespanResult { lifespan }),
        temporal_strategy().prop_map(|value| Frame::FunctionResult { value }),
        "[ -~]{0,60}".prop_map(|text| Frame::PlanText { text }),
        any::<u64>().prop_map(|rows| Frame::Ack { rows }),
        stats_strategy().prop_map(|stats| Frame::StatsResult { stats }),
        "[ -~]{0,60}".prop_map(|text| Frame::MetricsResult { text }),
        wire_error_strategy().prop_map(|error| Frame::Error { error }),
        any::<u64>().prop_map(|limit| Frame::Events { limit }),
        prop::collection::vec(wire_event_strategy(), 0..4)
            .prop_map(|events| Frame::EventsResult { events }),
    ]
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    /// encode ≡ decode for every frame type and request id.
    #[test]
    fn every_frame_round_trips(req in any::<u64>(), frame in frame_strategy()) {
        let bytes = encode_frame(req, &frame);
        let (got_req, got) = decode_frame(&bytes[4..]).expect("round trip decodes");
        prop_assert_eq!(got_req, req);
        prop_assert_eq!(got, frame);
    }

    /// The trace id in the frame header round-trips for every frame
    /// type, and the untraced decoder reads the same frame (ignoring
    /// the trace) — the wrappers and the traced path cannot drift.
    #[test]
    fn trace_ids_round_trip(
        req in any::<u64>(),
        trace in u128_strategy(),
        frame in frame_strategy(),
    ) {
        let bytes = encode_frame_traced(req, trace, &frame);
        let (got_req, got_trace, got) =
            decode_frame_traced(&bytes[4..]).expect("traced round trip decodes");
        prop_assert_eq!(got_req, req);
        prop_assert_eq!(got_trace, trace);
        prop_assert_eq!(&got, &frame);
        let (untraced_req, untraced) = decode_frame(&bytes[4..]).expect("untraced decodes");
        prop_assert_eq!(untraced_req, req);
        prop_assert_eq!(untraced, frame);
    }

    /// The stream reader agrees with the in-memory decoder, including on
    /// back-to-back frames.
    #[test]
    fn streamed_frames_round_trip(frames in prop::collection::vec(frame_strategy(), 1..4)) {
        let mut bytes = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(i as u64, f));
        }
        let mut cursor = std::io::Cursor::new(bytes);
        for (i, f) in frames.iter().enumerate() {
            let (req, got) = read_frame(&mut cursor).expect("stream decodes");
            prop_assert_eq!(req, i as u64);
            prop_assert_eq!(&got, f);
        }
    }

    /// Every truncation of a valid frame is an error — never a panic, and
    /// never a bogus success.
    #[test]
    fn truncations_are_errors(frame in frame_strategy()) {
        let bytes = encode_frame(7, &frame);
        for cut in 0..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            prop_assert!(
                read_frame(&mut cursor).is_err(),
                "cut at {} of {} decoded successfully", cut, bytes.len()
            );
        }
    }

    /// Random garbage after a plausible length prefix is rejected with a
    /// protocol error (or an io error when the declared length outruns
    /// the bytes), never a panic.
    #[test]
    fn garbage_bodies_are_rejected(body in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = (body.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor) {
            // A random body that happens to decode must at least carry a
            // valid version byte and kind tag.
            Ok(_) => {
                prop_assert!(body.len() >= 26);
                prop_assert_eq!(body[0], WIRE_VERSION);
            }
            Err(FrameError::Io(_)) | Err(FrameError::Protocol(_)) => {}
        }
    }

    /// Flipping the version byte of any valid frame is a protocol error.
    #[test]
    fn version_flips_are_rejected(frame in frame_strategy(), flip in 1u8..255) {
        let mut bytes = encode_frame(1, &frame);
        bytes[4] = bytes[4].wrapping_add(flip);
        prop_assert!(matches!(
            decode_frame(&bytes[4..]),
            Err(FrameError::Protocol(_))
        ));
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

/// The strategy list above covers every `Frame` variant: generate a pile
/// of frames and check all 21 kind tags eventually show up.
#[test]
fn all_kinds_covered_by_the_strategy() {
    // The match is the real assertion: adding a `Frame` variant without
    // extending the strategy fails to compile here.
    fn kind_index(f: &Frame) -> usize {
        match f {
            Frame::Hello { .. } => 0,
            Frame::Query { .. } => 1,
            Frame::Execute { .. } => 2,
            Frame::Prepare { .. } => 3,
            Frame::Checkpoint => 4,
            Frame::Stats => 5,
            Frame::Cancel => 6,
            Frame::Metrics => 7,
            Frame::HelloAck { .. } => 8,
            Frame::RelationHeader { .. } => 9,
            Frame::RowChunk { .. } => 10,
            Frame::Done { .. } => 11,
            Frame::LifespanResult { .. } => 12,
            Frame::FunctionResult { .. } => 13,
            Frame::PlanText { .. } => 14,
            Frame::Ack { .. } => 15,
            Frame::StatsResult { .. } => 16,
            Frame::MetricsResult { .. } => 17,
            Frame::Error { .. } => 18,
            Frame::Events { .. } => 19,
            Frame::EventsResult { .. } => 20,
        }
    }
    let strategy = frame_strategy();
    let mut rng = proptest::test_runner::TestRng::from_name("all_kinds_covered");
    let mut seen = [false; 21];
    for _ in 0..2000 {
        let f = Strategy::generate(&strategy, &mut rng);
        seen[kind_index(&f)] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "strategy never produced kinds {:?}",
        seen.iter()
            .enumerate()
            .filter(|(_, s)| !**s)
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
    );
}

/// A declared length beyond the cap is refused before any allocation.
#[test]
fn oversized_length_declaration_is_a_protocol_error() {
    let mut bytes = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 32]);
    let mut cursor = std::io::Cursor::new(bytes);
    match read_frame(&mut cursor) {
        Err(FrameError::Protocol(m)) => assert!(m.contains("cap"), "{m}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
}

/// A declared length too short to hold the fixed header is refused.
#[test]
fn undersized_length_declaration_is_a_protocol_error() {
    let mut bytes = 4u32.to_be_bytes().to_vec();
    bytes.extend_from_slice(&[WIRE_VERSION, 0x06, 0, 0]);
    let mut cursor = std::io::Cursor::new(bytes);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(FrameError::Protocol(_))
    ));
}

/// Unknown kind tags and trailing payload bytes are protocol errors.
#[test]
fn unknown_kind_and_trailing_bytes_are_protocol_errors() {
    let mut bytes = encode_frame(1, &Frame::Stats);
    bytes[5] = 0x7f; // no such kind
    assert!(matches!(
        decode_frame(&bytes[4..]),
        Err(FrameError::Protocol(m)) if m.contains("kind")
    ));

    let mut bytes = encode_frame(1, &Frame::Stats).split_off(4);
    bytes.push(0xee); // trailing garbage inside the declared length
    assert!(matches!(
        decode_frame(&bytes),
        Err(FrameError::Protocol(m)) if m.contains("trailing")
    ));
}
