//! Acceptance tests for the observability layer at the network boundary:
//!
//! * `EXPLAIN ANALYZE` on the 64-partition fixture reports
//!   `partitions: 62/64 pruned` with per-operator actual times — locally
//!   (the shell's path) and over the wire (the `Prepare` path);
//! * the `Metrics` frame emits a Prometheus text exposition covering the
//!   WAL, group-commit, query, and net metric families;
//! * the slow-query log rides along as `# slowlog:` comment lines, with
//!   plans, bounded FIFO.

use hrdm_core::prelude::*;
use hrdm_net::{Client, Server, ServerConfig, ServerHandle};
use hrdm_query::explain_analyze_query_text;
use hrdm_storage::{ConcurrentDatabase, PartitionPolicy};
use std::sync::Arc;
use std::time::Duration;

/// 64 partitions over a 2^20-chronon era (span 2^14), one tuple per
/// partition so every partition is materialized — the same fixture the
/// wire-EXPLAIN test and the gated partition benches use.
fn partitioned_db() -> Arc<ConcurrentDatabase> {
    let db = Arc::new(ConcurrentDatabase::new());
    db.set_partition_policy(PartitionPolicy::SpanLog2(14));
    let era = Lifespan::interval(0, 1 << 20);
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();
    for p in 0..64i64 {
        let lo = p << 14;
        let life = Lifespan::interval(lo, lo + 50);
        let t = Tuple::builder(life.clone())
            .constant("K", p)
            .value("V", TemporalValue::constant(&life, Value::Int(p)))
            .finish(&scheme)
            .unwrap();
        db.insert("r", t).unwrap();
    }
    db
}

/// A slice covering partitions 32 and 33 only: 62 of 64 pruned.
fn pruning_query() -> String {
    let lo = 32i64 << 14;
    let hi = (34i64 << 14) - 1;
    format!("TIMESLICE [{lo}..{hi}] (r)")
}

fn assert_analyzed(text: &str) {
    assert!(text.contains("== explain analyze =="), "{text}");
    assert!(text.contains("partitions: 62/64 pruned"), "{text}");
    // Both operators (τ over the scan) carry measured annotations, and
    // the two matching tuples are reported on each.
    assert!(text.matches("(actual time=").count() >= 2, "{text}");
    assert!(text.contains("rows=2)"), "{text}");
    // "Nonzero per-operator times": probing a 64-partition map cannot
    // take a measured 0 ns.
    assert!(!text.contains("time=0ns"), "{text}");
    assert!(text.contains("planning: "), "{text}");
    assert!(text.contains("execution: "), "{text}");
    assert!(text.contains("rows: 2"), "{text}");
}

#[test]
fn explain_analyze_reports_pruning_and_operator_times_locally() {
    let db = partitioned_db();
    let text = explain_analyze_query_text(&pruning_query(), &*db.snapshot())
        .unwrap()
        .expect("relation-sorted query has a plan");
    assert_analyzed(&text);
}

#[test]
fn explain_analyze_reports_pruning_and_operator_times_over_the_wire() {
    let db = partitioned_db();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&db), ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // The full `EXPLAIN ANALYZE …` line travels as a Prepare; the server
    // strips the prefix and answers with the annotated plan.
    let text = client
        .explain(&format!("EXPLAIN ANALYZE {}", pruning_query()))
        .unwrap();
    assert_analyzed(&text);

    // A plain Prepare still returns the unannotated plan.
    let plain = client.explain(&pruning_query()).unwrap();
    assert!(plain.contains("partitions: 62/64 pruned"), "{plain}");
    assert!(!plain.contains("actual time="), "{plain}");
    server.shutdown();
}

/// One line of Prometheus text exposition is a comment or `name value`.
fn assert_valid_exposition(text: &str) {
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("sample line has a metric name");
        let value = parts.next().expect("sample line has a value");
        assert!(parts.next().is_none(), "trailing tokens in {line:?}");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || "_{}=\"+.,-".contains(c)),
            "bad metric name in {line:?}"
        );
        assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
    }
}

fn attached_server(dir: &std::path::Path) -> (ServerHandle, Arc<ConcurrentDatabase>) {
    let db = Arc::new(ConcurrentDatabase::open(dir).unwrap());
    let config = ServerConfig {
        // Record every request in the slow-query log.
        slow_query_threshold: Duration::ZERO,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&db), config)
        .unwrap()
        .spawn()
        .unwrap();
    (server, db)
}

#[test]
fn metrics_exposition_covers_wal_commit_query_and_net_families() {
    let dir = std::env::temp_dir().join(format!("hrdm-obs-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (server, _db) = attached_server(&dir);

    let mut client = Client::connect(server.addr()).unwrap();
    let era = Lifespan::interval(0, 1000);
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .build()
        .unwrap();
    client.create_relation("r", scheme.clone()).unwrap();
    for k in 0..4i64 {
        let t = Tuple::builder(era.clone())
            .constant("K", k)
            .finish(&scheme)
            .unwrap();
        client.insert("r", t).unwrap();
    }
    // A read, so the query-layer counters and the query latency
    // histogram have something to show.
    client.query("r").unwrap();

    let text = client.metrics().unwrap();
    assert_valid_exposition(&text);

    // WAL family (the writes above were WAL-appended and fsynced).
    assert!(
        text.contains("# TYPE hrdm_wal_append_ns histogram"),
        "{text}"
    );
    assert!(text.contains("hrdm_wal_fsync_ns_count"), "{text}");
    // Group-commit family.
    assert!(
        text.contains("# TYPE hrdm_commit_batch_size histogram"),
        "{text}"
    );
    assert!(text.contains("hrdm_snapshot_publish_total"), "{text}");
    // Query family (the scan of `r`).
    assert!(text.contains("hrdm_query_seq_scans_total"), "{text}");
    // Net family: per-kind latency histograms, bytes, connections.
    assert!(
        text.contains("# TYPE hrdm_net_request_ns_query histogram"),
        "{text}"
    );
    assert!(text.contains("hrdm_net_request_ns_execute_count"), "{text}");
    assert!(text.contains("hrdm_net_bytes_in_total"), "{text}");
    assert!(text.contains("hrdm_net_bytes_out_total"), "{text}");
    assert!(text.contains("hrdm_net_connections_active 1"), "{text}");

    // The slow-query log rides along as comment lines (threshold 0:
    // every request qualifies), query entries carrying their plans.
    assert!(text.contains("# slowlog:"), "{text}");
    assert!(text.contains("kind=query"), "{text}");
    assert!(text.contains("SeqScan"), "{text}");

    // The same registry feeds `ServerStats`: bytes and latency
    // percentiles arrive over the `Stats` frame too.
    let stats = client.stats().unwrap();
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert!(stats.request_p50_ns > 0);
    assert!(stats.request_p99_ns >= stats.request_p50_ns);
    let rendered = format!("{stats}");
    assert!(rendered.contains("bytes: "), "{rendered}");
    assert!(rendered.contains("latency: p50 "), "{rendered}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
