//! End-to-end test of the `hrdmq` shell binary: build a database on disk,
//! drive the REPL through stdin, check stdout.

use hrdm_core::prelude::*;
use hrdm_storage::Database;
use std::io::Write;
use std::process::{Command, Stdio};

fn build_db(dir: &std::path::Path) {
    let era = Lifespan::interval(0, 50);
    let scheme = Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era.clone())
        .attr("SALARY", HistoricalDomain::int(), era)
        .build()
        .unwrap();
    let john = Tuple::builder(Lifespan::interval(0, 30))
        .constant("NAME", "John")
        .value(
            "SALARY",
            TemporalValue::of(&[(0, 9, Value::Int(25_000)), (10, 30, Value::Int(30_000))]),
        )
        .finish(&scheme)
        .unwrap();
    let mut db = Database::new();
    db.create_relation("emp", scheme).unwrap();
    db.insert("emp", john).unwrap();
    db.save(dir).unwrap();
}

fn run_repl(dir: &std::path::Path, input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hrdmq"))
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hrdmq spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write to repl");
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "hrdmq exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn repl_answers_queries() {
    let dir = std::env::temp_dir().join(format!("hrdmq-test-{}", std::process::id()));
    build_db(&dir);

    let out = run_repl(
        &dir,
        "\\d\nWHEN (SELECT-WHEN (SALARY = 30000) (emp))\nSELECT-WHEN (SALARY = 30000) (emp)\n\\q\n",
    );
    // \d lists the relation.
    assert!(out.contains("emp:"), "missing schema listing in {out}");
    // The WHEN query prints the lifespan.
    assert!(
        out.contains("{[10,30]}"),
        "missing lifespan answer in {out}"
    );
    // The relation query prints a tuple and a count.
    assert!(out.contains("(1 tuple(s))"), "missing tuple count in {out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_reports_errors_and_survives() {
    let dir = std::env::temp_dir().join(format!("hrdmq-err-{}", std::process::id()));
    build_db(&dir);

    let out = run_repl(&dir, "NOT A QUERY ((\nghost\nWHEN (emp)\n\\q\n");
    assert!(out.contains("parse error"), "missing parse error in {out}");
    assert!(out.contains("error:"), "missing eval error in {out}");
    // Still answers the valid query afterwards.
    assert!(out.contains("{[0,30]}"), "missing recovery answer in {out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `name := query` writes through the durable path: the materialized
/// relation must survive a "crash" (the REPL process exiting without a
/// checkpoint) purely via the WAL, and `\checkpoint` must fold it in.
#[test]
fn repl_materializes_durably_and_checkpoints() {
    let dir = std::env::temp_dir().join(format!("hrdmq-durable-{}", std::process::id()));
    build_db(&dir);

    let out = run_repl(
        &dir,
        "rich := SELECT-WHEN (SALARY = 30000) (emp)\n\\d\n\\q\n",
    );
    assert!(
        out.contains("attached to"),
        "missing attach banner in {out}"
    );
    assert!(
        out.contains("rich := 1 tuple(s)"),
        "missing materialization ack in {out}"
    );

    // A fresh REPL (post-"crash") still sees it: recovered from the WAL.
    let out = run_repl(&dir, "\\d\nWHEN (rich)\n\\checkpoint\n\\q\n");
    assert!(out.contains("rich:"), "materialized relation lost in {out}");
    assert!(out.contains("{[10,30]}"), "missing lifespan in {out}");
    assert!(
        out.contains("checkpointed (epoch 1)"),
        "missing checkpoint ack in {out}"
    );

    // And again after the checkpoint (now from the heap files).
    let out = run_repl(&dir, "WHEN (rich)\n\\q\n");
    assert!(out.contains("{[10,30]}"), "lost after checkpoint in {out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// An unknown relation in a query is reported as an unknown *relation*,
/// not as an unknown attribute.
#[test]
fn repl_reports_unknown_relation() {
    let dir = std::env::temp_dir().join(format!("hrdmq-unknown-{}", std::process::id()));
    build_db(&dir);
    let out = run_repl(&dir, "WHEN (ghost)\n\\q\n");
    assert!(
        out.contains("unknown relation `ghost`"),
        "wrong error rendering in {out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `\stats` reports the group-commit counters: a materialization is one
/// create + one put, so two ops must show up, with batch sizes ≥ 1.
#[test]
fn repl_reports_group_commit_stats() {
    let dir = std::env::temp_dir().join(format!("hrdmq-stats-{}", std::process::id()));
    build_db(&dir);
    let out = run_repl(
        &dir,
        "rich := SELECT-WHEN (SALARY = 30000) (emp)\n\\stats\n\\q\n",
    );
    assert!(
        out.contains("group commit:") && out.contains("2 op(s)"),
        "missing stats line in {out}"
    );
    assert!(
        out.contains("snapshot: version"),
        "missing version in {out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `\open` on an unreadable path names the path in the error (CI log
/// triage must not have to guess which directory failed).
#[test]
fn repl_open_error_names_the_path() {
    let dir = std::env::temp_dir().join(format!("hrdmq-openerr-{}", std::process::id()));
    build_db(&dir);
    // Corrupt the catalog so \open fails with BadFile.
    let bad = std::env::temp_dir().join(format!("hrdmq-badcat-{}", std::process::id()));
    std::fs::create_dir_all(&bad).unwrap();
    std::fs::write(bad.join("catalog.hrdm"), b"not a database").unwrap();

    let out = run_repl(&dir, &format!("\\open {}\n\\q\n", bad.display()));
    assert!(
        out.contains(&format!("open error for {}", bad.display())),
        "missing path in open error: {out}"
    );
    assert!(
        out.contains("catalog.hrdm") && out.contains("missing HRDM magic"),
        "error does not name the offending file: {out}"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&bad).ok();
}

#[test]
fn repl_explains_plans() {
    let dir = std::env::temp_dir().join(format!("hrdmq-explain-{}", std::process::id()));
    build_db(&dir);

    let out = run_repl(
        &dir,
        "\\explain TIMESLICE [0..10] (SELECT-WHEN (SALARY = 30000) (emp))\n\\q\n",
    );
    assert!(out.contains("== rewrites =="), "missing trace in {out}");
    assert!(
        out.contains("TimesliceThroughSelectWhen"),
        "missing rule in {out}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Remote mode: the same shell as a network client of an in-process hrdmd.
// ---------------------------------------------------------------------------

/// Spawns an in-process server over a freshly built database and drives a
/// *detached* REPL against it through `\connect`.
fn run_repl_against_server(input_after_connect: &str) -> String {
    use hrdm_net::{Server, ServerConfig};
    use hrdm_storage::ConcurrentDatabase;
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!(
        "hrdmq-remote-{}-{}",
        std::process::id(),
        input_after_connect.len()
    ));
    build_db(&dir);
    let db = Arc::new(ConcurrentDatabase::open(&dir).unwrap());
    let server = Server::bind("127.0.0.1:0", db, ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap();
    let addr = server.addr();

    let mut child = Command::new(env!("CARGO_BIN_EXE_hrdmq"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hrdmq spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(format!("\\connect {addr}\n{input_after_connect}").as_bytes())
        .expect("write to repl");
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success(), "hrdmq exited with {:?}", out.status);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// `\connect` turns the shell into a network client: queries, `\d`, and
/// materialization all travel the wire and answer like local mode.
#[test]
fn repl_remote_mode_answers_queries_and_materializes() {
    let out = run_repl_against_server(
        "\\d\nWHEN (SELECT-WHEN (SALARY = 30000) (emp))\n\
         rich := SELECT-WHEN (SALARY = 30000) (emp)\n\\d\n\\q\n",
    );
    assert!(out.contains("connected to"), "missing connect ack in {out}");
    assert!(
        out.contains("emp: 1 tuple(s)"),
        "missing remote \\d in {out}"
    );
    assert!(
        out.contains("{[10,30]}"),
        "missing lifespan answer in {out}"
    );
    assert!(
        out.contains("rich := 1 tuple(s)"),
        "missing remote materialization in {out}"
    );
    assert!(
        out.contains("rich: 1 tuple(s)"),
        "materialized relation missing from remote \\d in {out}"
    );
}

/// Remote `\stats` reports the server-side counters: connections, frames,
/// planning vs execution time, and the group-commit amortization — the
/// fields the satellite task promises over the wire.
#[test]
fn repl_remote_stats_reports_server_counters() {
    let out = run_repl_against_server("WHEN (emp)\n\\stats\n\\q\n");
    assert!(
        out.contains("server 127.0.0.1:"),
        "missing server line in {out}"
    );
    assert!(
        out.contains("connections: ") && out.contains("accepted"),
        "missing connection counters in {out}"
    );
    assert!(out.contains("frames: "), "missing frame counters in {out}");
    assert!(
        out.contains("planning") && out.contains("execution"),
        "missing planning/execution split in {out}"
    );
    assert!(
        out.contains("group commit:"),
        "missing commit stats in {out}"
    );
    assert!(
        out.contains("snapshot: version"),
        "missing version in {out}"
    );
}

/// Remote `\explain` renders the server's plan — including index scans —
/// and errors keep their structure ("parse error", "error:"), so the
/// remote shell feels exactly like the local one.
#[test]
fn repl_remote_explain_and_errors() {
    let out = run_repl_against_server(
        "\\explain SELECT-WHEN (NAME = \"John\") (emp)\nNOT A QUERY ((\nWHEN (ghost)\n\
         \\disconnect\nWHEN (emp)\n\\q\n",
    );
    assert!(out.contains("== access paths =="), "missing plan in {out}");
    assert!(out.contains("IndexScan(key"), "missing index scan in {out}");
    assert!(out.contains("parse error"), "missing parse error in {out}");
    assert!(
        out.contains("unknown relation `ghost`"),
        "missing remote eval error in {out}"
    );
    // \disconnect falls back to the (empty) local database.
    assert!(
        out.contains("disconnected from"),
        "missing disconnect in {out}"
    );
    assert!(
        out.contains("unknown relation `emp`"),
        "local fallback answered remotely in {out}"
    );
}

/// An interactive shell that sits idle past the server's read timeout is
/// disconnected server-side (the idle kill); the next command must
/// transparently reconnect instead of failing every command forever.
#[test]
fn repl_remote_mode_survives_the_server_idle_timeout() {
    use hrdm_net::{Server, ServerConfig};
    use hrdm_storage::ConcurrentDatabase;
    use std::sync::Arc;
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("hrdmq-idle-{}", std::process::id()));
    build_db(&dir);
    let db = Arc::new(ConcurrentDatabase::open(&dir).unwrap());
    let server = Server::bind(
        "127.0.0.1:0",
        db,
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = server.addr();

    let mut child = Command::new(env!("CARGO_BIN_EXE_hrdmq"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hrdmq spawns");
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        stdin
            .write_all(format!("\\connect {addr}\n").as_bytes())
            .unwrap();
        stdin.flush().unwrap();
        // Idle past the server's read timeout: the session is killed.
        std::thread::sleep(Duration::from_millis(600));
        stdin.write_all(b"WHEN (emp)\n\\q\n").unwrap();
    }
    let out = child.wait_with_output().expect("repl exits");
    assert!(out.status.success());
    let out = String::from_utf8(out.stdout).unwrap();
    assert!(out.contains("connected to"), "missing connect in {out}");
    assert!(
        out.contains("(connection lost; reconnected to"),
        "missing transparent reconnect in {out}"
    );
    assert!(
        out.contains("{[0,30]}"),
        "query after reconnect failed in {out}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
