//! The `HRDM_OBS_OFF` kill switch, exercised end to end: with
//! observability disabled every telemetry surface must no-op cleanly —
//! no trace ids minted or propagated, no flight-recorder retention, no
//! window accumulation — while the *functional* surfaces (queries,
//! `EXPLAIN ANALYZE`, the metrics exposition itself) keep working.
//!
//! These tests live in their own integration binary because the switch
//! is process-global: every test here runs disabled, so none can race a
//! test that expects telemetry on (those live in `obs.rs`/`trace.rs`,
//! separate processes under `cargo test`).

use hrdm_core::prelude::*;
use hrdm_net::{Client, Server, ServerConfig, ServerHandle};
use hrdm_storage::ConcurrentDatabase;
use std::sync::Arc;
use std::time::Duration;

fn disabled_server() -> ServerHandle {
    hrdm_obs::set_enabled(false);
    let db = Arc::new(ConcurrentDatabase::new());
    let era = Lifespan::interval(0, 1000);
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();
    for k in 0..4i64 {
        let t = Tuple::builder(era.clone())
            .constant("K", k)
            .finish(&scheme)
            .unwrap();
        db.insert("r", t).unwrap();
    }
    let config = ServerConfig {
        slow_query_threshold: Duration::ZERO,
        http_metrics: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", db, config)
        .unwrap()
        .spawn()
        .unwrap()
}

#[test]
fn recorder_is_inert_when_disabled() {
    hrdm_obs::set_enabled(false);
    let r = hrdm_obs::FlightRecorder::new(8);
    r.record(hrdm_obs::EventKind::CommitApplied, "nope");
    r.record_traced(7, hrdm_obs::EventKind::Error, "nope");
    r.anomaly("nope");
    assert_eq!(r.totals(), (0, 0, 0));
    assert!(r.snapshot(0).is_empty());
    assert!(r.anomalies().is_empty());
}

#[test]
fn windows_are_inert_when_disabled() {
    hrdm_obs::set_enabled(false);
    let rate = hrdm_obs::window::RateWindow::new();
    rate.add(5);
    assert_eq!(rate.total(), 0);

    let latency = hrdm_obs::window::LatencyWindow::new();
    latency.record(1_000);
    assert_eq!(latency.merged().p50(), None);

    let top = hrdm_obs::window::TopRelations::new(4);
    top.record("r", 100);
    assert!(top.top(4).is_empty());
}

#[test]
fn traces_are_inert_when_disabled() {
    hrdm_obs::set_enabled(false);
    assert_eq!(hrdm_obs::TraceContext::mint("anyone").id, 0);
    let _scope = hrdm_obs::trace::set_current(42);
    assert_eq!(hrdm_obs::trace::current(), None);
}

#[test]
fn wire_surfaces_degrade_cleanly_when_disabled() {
    let server = disabled_server();
    let mut client = Client::connect_as(server.addr(), "killswitch").unwrap();

    // Requests work; no trace id is minted or echoed.
    client.query("r").unwrap();
    assert_eq!(client.last_trace_id(), 0);

    // EXPLAIN ANALYZE still executes and reports its plan and row
    // counts — only the telemetry annotations go quiet: no trace line.
    let text = client.explain("EXPLAIN ANALYZE r").unwrap();
    assert!(text.contains("== explain analyze =="), "{text}");
    assert!(text.contains("rows: 4"), "{text}");
    assert!(!text.contains("trace: "), "{text}");

    // The flight recorder retained nothing: not the session open, not
    // the zero-threshold slowlog admissions.
    let events = client.events(0).unwrap();
    assert!(events.is_empty(), "{events:#?}");

    // The exposition itself still renders (scrapes must not break when
    // the switch flips) — the windowed gauges just read zero.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("hrdm_net_qps 0.000"), "{metrics}");
    assert!(
        metrics.contains("hrdm_net_request_p99_60s_ns 0"),
        "{metrics}"
    );
    assert!(
        metrics.contains("hrdm_events_recorded_total 0"),
        "{metrics}"
    );

    // The HTTP plane serves too, from the same (quiet) registry.
    let http = server.http_addr().expect("http listener configured");
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(http).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");

    server.shutdown();
}
