//! Test configuration and the deterministic RNG behind generation.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// A config whose case count comes from the `PROPTEST_CASES`
    /// environment variable (mirroring real proptest), falling back to
    /// `default_cases` when unset or unparsable. Lets CI crank suites up
    /// (e.g. `PROPTEST_CASES=256` on the differential-oracle leg) without
    /// touching the tests.
    pub fn from_env_or(default_cases: u32) -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via `PROPTEST_CASES` (like real proptest).
    fn default() -> ProptestConfig {
        ProptestConfig::from_env_or(64)
    }
}

/// A deterministic splitmix64 generator; each test seeds one from its own
/// name so runs are reproducible without any persisted failure files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG from a raw seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// An RNG seeded from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
