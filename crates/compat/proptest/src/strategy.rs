//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse` wraps
    /// an inner strategy into one more level. `depth` bounds the nesting;
    /// the `_desired_size` / `_expected_branch` hints of real proptest are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` engine).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Values with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the types this workspace needs.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy behind [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals act as regex-shaped string strategies. Only the subset
/// real tests use is implemented: literal characters, `[...]` character
/// classes with ranges, and the `{m,n}` / `{n}` / `*` / `+` / `?`
/// quantifiers. Unsupported syntax panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling \\ in pattern {pattern:?}"));
                i += 2;
                vec![c]
            }
            c => {
                assert!(
                    !"(){}|^$.".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("quantifier lower bound"),
                        hi.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (0i64..10).generate(&mut r);
            assert!((0..10).contains(&x));
            let y = (-3i64..=3).generate(&mut r);
            assert!((-3..=3).contains(&y));
            let f = (0.0f64..1.0).generate(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just_and_union() {
        let mut r = rng();
        let s = Just(5i64).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut r), 10);
        let u = Union::new(vec![Just(1i32).boxed(), Just(2i32).boxed()]);
        for _ in 0..50 {
            assert!([1, 2].contains(&u.generate(&mut r)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        let mut r = rng();
        let mut depth = 0;
        let mut t = s.generate(&mut r);
        while let Tree::Node(inner) = t {
            depth += 1;
            t = *inner;
        }
        assert_eq!(depth, 4);
    }

    #[test]
    fn pattern_strategy_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{2,4}".generate(&mut r);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let empty_ok = "[a-zA-Z0-9 ]{0,12}".generate(&mut r);
        assert!(empty_ok.len() <= 12);
    }
}
