//! Collection strategies (`prop::collection::*`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// A size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

/// A `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` with keys from `key`, values from `value`, and *up to* a
/// `size`-drawn number of entries (duplicate keys collapse, as in real
/// proptest).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.sample(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(3);
        let s = vec(0i64..5, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn btree_map_collapses_duplicate_keys() {
        let mut rng = TestRng::new(4);
        let s = btree_map(0i64..3, 0i64..100, 0..10);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            assert!(m.len() <= 3);
        }
    }
}
