//! A small, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest its tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `boxed` / `prop_recursive`, [`strategy::Just`], `any`,
//! integer/float-range and regex-char-class strategies, tuple and
//! collection combinators, `prop_oneof!`, and the `proptest!` test macro
//! with `prop_assert*` / `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the failing input is printed as generated. Every
//! test gets a deterministic RNG seeded from its own name, so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that generates inputs and runs the body for
/// `ProptestConfig::cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    // The closure returns None when `prop_assume!` rejects
                    // the generated case; assertion failures panic as usual.
                    let __outcome: ::core::option::Option<()> = (|| {
                        $body
                        ::core::option::Option::Some(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current generated case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::option::Option::None;
        }
    };
}

/// Picks uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
