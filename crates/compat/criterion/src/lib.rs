//! A small, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of criterion its benches use: `Criterion` with the builder
//! setters, benchmark groups, `bench_with_input` / `bench_function`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a warm-up, each benchmark body
//! is timed over enough iterations to fill the measurement window and the
//! mean wall-clock time per iteration is printed as
//! `name/param time: <t> ns/iter`. Set `HRDM_BENCH_FAST=1` to shrink
//! warm-up and measurement windows (CI smoke mode).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group `{name}`");
        BenchmarkGroup {
            name,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.render(), self.warm_up, self.measurement, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the input size the next benchmarks process (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        eprintln!("  throughput: {t:?}");
        self
    }

    /// Benchmarks `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.warm_up, self.measurement, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.warm_up, self.measurement, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, warm_up: Duration, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let (warm_up, measurement) = if fast_mode() {
        (Duration::from_millis(1), Duration::from_millis(10))
    } else {
        (warm_up, measurement)
    };
    let mut b = Bencher {
        warm_up,
        measurement,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{label:<48} time: {:>12} ns/iter ({} iters)",
        format_ns(b.mean_ns),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Mean wall-clock nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
    /// Total iterations measured by the last `iter` call.
    pub iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly: first for the warm-up window, then for the
    /// measurement window, recording the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(f());
        }
        let mut iters: u64 = 0;
        let started = Instant::now();
        let deadline = started + self.measurement;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = started.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A benchmark identifier (`name/parameter`).
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (grouped benches).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Input-size declaration, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines the benchmark binary entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; test harness args are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        let mut measured = 0.0;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u64, |b, &x| {
            b.iter(|| x + 1);
            measured = b.mean_ns;
        });
        group.finish();
        assert!(measured > 0.0);
    }
}
