//! A tiny, offline, API-compatible subset of the `rand` crate (0.9 naming).
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `rand` it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and [`Rng::random_range`] over integer ranges. The generator is a
//! deterministic splitmix64 — statistically fine for seeded workload
//! generation, not cryptographic.

#![forbid(unsafe_code)]
/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, mirroring the subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }

    /// A bernoulli sample with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// A range that can be sampled uniformly, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Maps 64 uniform bits into the range.
    fn sample(self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (splitmix64) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(0..10i64);
            assert!((0..10).contains(&x));
            let y = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0..1_000_000usize);
            assert!(z < 1_000_000);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
