//! The streaming executor: pull-based, batch-at-a-time query evaluation.
//!
//! [`crate::plan()`] turns an optimized expression into a [`Plan`];
//! this module turns that plan into a tree of [`QueryExecutor`]s — one
//! executor per physical operator — that is driven Volcano-style:
//! `open()` prepares the operator (and returns its output [`Scheme`]),
//! `next_batch()` yields bounded [`RowBatch`]es of `Arc`-backed tuples,
//! `close()` releases resources. Row caps and cancellation are enforced
//! *per batch* at the stream root ([`QueryStream`]), so a runaway scan is
//! cut off within one batch boundary instead of after full
//! materialization.
//!
//! ## Operator classes
//!
//! * **Streaming** — scans and the per-tuple unaries (σWHEN, σIF, π, τ,
//!   τ@A) never hold more than one batch: each input tuple maps to at
//!   most one output tuple independently of every other tuple.
//! * **Blocking** — joins, products, and the six set operators consume
//!   their children fully at `open()` (checking cancellation between
//!   input batches), compute their result with the *exact same* algebra
//!   functions the materializing evaluator uses, then stream it out in
//!   batches. Planned ≡ unplanned ≡ streamed equivalence is asserted by
//!   the workspace's differential suites.
//! * **`Gather`** — a parallel leaf: a `SeqScan` (plus any
//!   stack of per-tuple unaries directly above it) over a relation of at
//!   least [`ExecOptions::parallel_min_rows`] rows is fused into one
//!   executor that splits the scan into *morsels* (the relation's
//!   partition-map position sets when one exists, fixed-size position
//!   ranges otherwise), claims them from a shared atomic cursor across
//!   `workers` threads, and funnels result batches through one bounded
//!   channel. Batch order is nondeterministic; relations are sets, so
//!   results are unaffected.
//!
//! Every executor keeps per-operator [`ExecStats`] (rows, batches,
//! inclusive wall time); `EXPLAIN ANALYZE` renders the executor tree with
//! those numbers.

use crate::eval::eval_lifespan;
use crate::plan::{
    indexed_natural_join, indexed_time_join, node_label, probe_line, record_scan_access,
    unary_label, valid_partitions, AccessPath, BinaryOp, IndexSource, Plan, UnaryOp,
};
use hrdm_core::algebra::{
    cartesian_product, difference, difference_o, intersection, intersection_o, natural_join,
    theta_join, time_join, union, union_o, Comparator, Predicate, Quantifier,
};
use hrdm_core::{Attribute, HrdmError, Relation, Scheme, Tuple};
use hrdm_index::RelationIndexes;
use hrdm_time::Lifespan;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The default number of rows per [`RowBatch`].
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// The hard ceiling on one batch's row capacity — allocation sizes derived
/// from caller-supplied batch settings are capped here before any buffer is
/// reserved.
pub const MAX_BATCH_ROWS: usize = 65_536;

/// Rows per morsel when a parallel scan has no partition map to use as its
/// work units.
const MORSEL_ROWS: usize = 4096;

/// A cancellation probe: checked once per batch (and once per morsel by
/// parallel scan workers). Returning `true` aborts the stream with
/// [`ExecError::Cancelled`] before the next batch is produced.
pub type CancelProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// A bounded batch of `Arc`-backed tuples — the unit of flow between
/// executors and out of a [`QueryStream`].
#[derive(Clone, Debug, Default)]
pub struct RowBatch {
    rows: Vec<Tuple>,
}

impl RowBatch {
    /// Wraps a row vector as a batch.
    pub fn new(rows: Vec<Tuple>) -> RowBatch {
        RowBatch { rows }
    }

    /// The batch's tuples.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consumes the batch into its row vector.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Everything that can abort a stream mid-flight.
#[derive(Clone, PartialEq, Debug)]
pub enum ExecError {
    /// An operator failed (unknown relation, type error, …) — exactly the
    /// errors the materializing evaluator reports.
    Eval(HrdmError),
    /// The stream's [`CancelProbe`] fired; the stream stopped within one
    /// batch boundary.
    Cancelled,
    /// More than [`ExecOptions::max_rows`] rows were streamed.
    RowLimit(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Eval(e) => write!(f, "{e}"),
            ExecError::Cancelled => f.write_str("query cancelled"),
            ExecError::RowLimit(n) => write!(f, "result exceeds the cap of {n} rows"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<HrdmError> for ExecError {
    fn from(e: HrdmError) -> Self {
        ExecError::Eval(e)
    }
}

/// Knobs for one streaming execution.
#[derive(Clone)]
pub struct ExecOptions {
    /// Target rows per batch (clamped to `1..=`[`MAX_BATCH_ROWS`]).
    pub batch_rows: usize,
    /// Abort with [`ExecError::RowLimit`] once more than this many rows
    /// have been streamed from the root.
    pub max_rows: Option<u64>,
    /// Worker threads available to parallel (`Gather`)
    /// scans. `<= 1` disables parallelism.
    pub workers: usize,
    /// Minimum base-relation rows before a `SeqScan` leaf is worth
    /// parallelizing (thread spawn + channel overhead dominate below it).
    pub parallel_min_rows: usize,
    /// Cancellation probe, checked per batch.
    pub cancel: Option<CancelProbe>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            batch_rows: DEFAULT_BATCH_ROWS,
            max_rows: None,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            parallel_min_rows: 32_768,
            cancel: None,
        }
    }
}

impl fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecOptions")
            .field("batch_rows", &self.batch_rows)
            .field("max_rows", &self.max_rows)
            .field("workers", &self.workers)
            .field("parallel_min_rows", &self.parallel_min_rows)
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

impl ExecOptions {
    fn batch_rows_clamped(&self) -> usize {
        self.batch_rows.clamp(1, MAX_BATCH_ROWS)
    }
}

/// Per-operator runtime statistics: output rows, output batches, and
/// inclusive wall time (an operator's clock runs while its children work
/// for it, mirroring the span semantics of the materializing evaluator).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ExecStats {
    /// Rows this operator emitted.
    pub rows: u64,
    /// Batches this operator emitted.
    pub batches: u64,
    /// Inclusive wall nanoseconds across `open` and every `next_batch`.
    pub wall_ns: u64,
}

/// One physical operator of a streaming plan, driven pull-style.
///
/// Lifecycle: exactly one successful [`open`](QueryExecutor::open) (which
/// returns the operator's output scheme), then [`QueryExecutor::next_batch`]
/// (QueryExecutor::next_batch) until it yields `Ok(None)` or an error,
/// then [`close`](QueryExecutor::close). `close` is idempotent and must
/// also be safe to call on a never-opened or mid-stream executor (that is
/// how cancellation tears a tree down). After `close`, accumulated
/// [`ExecStats`] remain readable — `EXPLAIN ANALYZE` renders them.
pub trait QueryExecutor {
    /// Prepares the operator (resolving relations, evaluating lifespan
    /// bounds, typechecking predicates, spawning scan workers) and
    /// returns its output scheme. Blocking operators do their whole
    /// computation here.
    fn open(&mut self) -> Result<Scheme, ExecError>;

    /// The next bounded batch, or `Ok(None)` once the stream is drained.
    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError>;

    /// Releases cursors, buffers, and worker threads. Idempotent.
    fn close(&mut self);

    /// Statistics accumulated so far (valid during and after the run).
    fn stats(&self) -> ExecStats;

    /// Renders this operator (and its inputs, indented) one line per
    /// node, optionally annotated with measured stats.
    fn render(&self, depth: usize, annotate: bool, out: &mut String);
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn annotation(stats: &ExecStats, annotate: bool) -> String {
    if annotate {
        format!(
            " (actual time={}, batches={}, rows={})",
            crate::plan::fmt_ns(stats.wall_ns),
            stats.batches,
            stats.rows
        )
    } else {
        String::new()
    }
}

fn cancelled(probe: &Option<CancelProbe>) -> bool {
    probe.as_ref().is_some_and(|c| c())
}

// ---------------------------------------------------------------------------
// Per-tuple operator kernels
// ---------------------------------------------------------------------------

/// A compiled per-tuple unary: parameters (lifespan bounds, predicate
/// typechecks, domain checks) are resolved once at `open`, so applying it
/// to a tuple is pure and `Send` — the same kernel runs inline in a
/// [`FilterExec`] or fused into [`GatherExec`] scan workers.
enum TupleOp {
    TimeSlice(Lifespan),
    TimeSliceDynamic(Attribute),
    SelectWhen(Predicate),
    SelectIf {
        predicate: Predicate,
        quantifier: Quantifier,
        bound: Option<Lifespan>,
    },
    Project(Vec<Attribute>),
}

/// Compiles `op` against its input scheme: evaluates lifespan parameters
/// through `src`, typechecks predicates, and derives the output scheme.
/// The checks run in the same order as the materializing evaluator so
/// error behaviour matches.
fn compile_op(
    op: &UnaryOp,
    in_scheme: &Scheme,
    src: &dyn IndexSource,
) -> Result<(TupleOp, Scheme), HrdmError> {
    match op {
        UnaryOp::Project(attrs) => {
            let scheme = in_scheme.project(attrs)?;
            Ok((TupleOp::Project(attrs.clone()), scheme))
        }
        UnaryOp::SelectWhen(predicate) => {
            predicate.typecheck(in_scheme)?;
            Ok((TupleOp::SelectWhen(predicate.clone()), in_scheme.clone()))
        }
        UnaryOp::SelectIf {
            predicate,
            quantifier,
            lifespan,
        } => {
            let bound = match lifespan {
                Some(l) => Some(eval_lifespan(l, src)?),
                None => None,
            };
            predicate.typecheck(in_scheme)?;
            Ok((
                TupleOp::SelectIf {
                    predicate: predicate.clone(),
                    quantifier: *quantifier,
                    bound,
                },
                in_scheme.clone(),
            ))
        }
        UnaryOp::TimeSlice(lifespan) => {
            let window = eval_lifespan(lifespan, src)?;
            Ok((TupleOp::TimeSlice(window), in_scheme.clone()))
        }
        UnaryOp::TimeSliceDynamic(attr) => {
            let dom = in_scheme.dom(attr)?;
            if !dom.is_time_valued() {
                return Err(HrdmError::NotTimeValued(attr.clone()));
            }
            Ok((TupleOp::TimeSliceDynamic(attr.clone()), in_scheme.clone()))
        }
    }
}

/// Applies one compiled unary to one tuple. The bodies replicate the
/// per-tuple loops of `hrdm_core::algebra::{timeslice, select, project}`
/// exactly — the streaming differential oracle holds the two accountable.
fn apply_op(op: &TupleOp, t: &Tuple) -> Result<Option<Tuple>, HrdmError> {
    match op {
        TupleOp::TimeSlice(window) => {
            let sliced = t.restrict(window);
            Ok(sliced.bears_information().then_some(sliced))
        }
        TupleOp::TimeSliceDynamic(attr) => {
            let image = match t.value(attr) {
                Some(tv) => tv.image_lifespan()?,
                None => Lifespan::empty(),
            };
            let sliced = t.restrict(&image);
            Ok(sliced.bears_information().then_some(sliced))
        }
        TupleOp::SelectWhen(predicate) => {
            let truth = predicate.when_true(t)?;
            Ok((!truth.is_empty()).then(|| t.restrict(&truth)))
        }
        TupleOp::SelectIf {
            predicate,
            quantifier,
            bound,
        } => {
            let domain = match bound {
                Some(l) => l.intersect(t.lifespan()),
                None => t.lifespan().clone(),
            };
            let truth = predicate.when_true(t)?;
            let selected = match quantifier {
                Quantifier::Exists => domain.intersects(&truth),
                Quantifier::Forall => truth.contains_lifespan(&domain),
            };
            Ok(selected.then(|| t.clone()))
        }
        TupleOp::Project(attrs) => Ok(Some(t.project(attrs))),
    }
}

/// Runs a tuple through a fused chain of compiled unaries (in application
/// order — innermost first). `None` means some stage dropped the tuple.
fn apply_chain(ops: &[TupleOp], t: &Tuple) -> Result<Option<Tuple>, HrdmError> {
    let mut cur = t.clone();
    for op in ops {
        match apply_op(op, &cur)? {
            Some(next) => cur = next,
            None => return Ok(None),
        }
    }
    Ok(Some(cur))
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// A serial base-relation scan honouring its planned [`AccessPath`], with
/// the same degradation rules as the materializing evaluator: a missing or
/// stale index at `open` time falls back to reading everything, never to
/// an error.
struct ScanExec<'a> {
    name: String,
    access: AccessPath,
    label: String,
    src: &'a dyn IndexSource,
    batch_rows: usize,
    state: Option<ScanState>,
    stats: ExecStats,
    /// Rows-streamed leaderboard credit fires once, at first close.
    reported: bool,
}

struct ScanState {
    relation: Relation,
    /// `None` = every position (SeqScan / degraded index scan).
    positions: Option<Vec<usize>>,
    cursor: usize,
}

impl<'a> ScanExec<'a> {
    fn build(
        name: &str,
        access: &AccessPath,
        label: String,
        src: &'a dyn IndexSource,
        opts: &ExecOptions,
    ) -> ScanExec<'a> {
        ScanExec {
            name: name.to_string(),
            access: access.clone(),
            label,
            src,
            batch_rows: opts.batch_rows_clamped(),
            state: None,
            stats: ExecStats::default(),
            reported: false,
        }
    }
}

/// Candidate positions for `access` over `r`, mirroring
/// `plan::eval_scan`'s index/partition selection exactly.
fn scan_positions(
    access: &AccessPath,
    src: &dyn IndexSource,
    name: &str,
    r: &Relation,
) -> Option<Vec<usize>> {
    match (access, src.indexes(name)) {
        (AccessPath::SeqScan, _) | (_, None) => None,
        (AccessPath::LifespanIndex { window, .. }, Some(idx)) => {
            match valid_partitions(src, name, r) {
                Some(parts) => Some(parts.prune_positions(window)),
                None => Some(idx.lifespan().overlapping(window)),
            }
        }
        (AccessPath::KeyIndex { key, .. }, Some(idx)) => {
            idx.key().map(|key_idx| key_idx.lookup(key).to_vec())
        }
    }
}

/// Copies the next up-to-`batch_rows` tuples of `state` into a fresh
/// batch buffer (capacity capped at [`MAX_BATCH_ROWS`] — batch settings
/// are caller input, not trusted sizes).
fn scan_next_batch(state: &mut ScanState, batch_rows: usize) -> Option<RowBatch> {
    let total = match &state.positions {
        Some(p) => p.len(),
        None => state.relation.len(),
    };
    if state.cursor >= total {
        return None;
    }
    let end = (state.cursor + batch_rows).min(total);
    let mut rows = Vec::with_capacity(batch_rows.min(MAX_BATCH_ROWS));
    match &state.positions {
        Some(positions) => {
            for pos in &positions[state.cursor..end] {
                if let Some(t) = state.relation.tuple_at(*pos) {
                    rows.push(t.clone());
                }
            }
        }
        None => {
            if let Some(slice) = state.relation.tuples().get(state.cursor..end) {
                rows.extend_from_slice(slice);
            }
        }
    }
    state.cursor = end;
    Some(RowBatch::new(rows))
}

impl QueryExecutor for ScanExec<'_> {
    fn open(&mut self) -> Result<Scheme, ExecError> {
        let started = Instant::now();
        record_scan_access(&self.access);
        let r = self
            .src
            .relation(&self.name)
            .ok_or_else(|| HrdmError::UnknownRelation(self.name.clone()))?;
        let positions = scan_positions(&self.access, self.src, &self.name, r);
        let scheme = r.scheme().clone();
        self.state = Some(ScanState {
            relation: r.clone(),
            positions,
            cursor: 0,
        });
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        Ok(scheme)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let started = Instant::now();
        let out = match &mut self.state {
            Some(state) => scan_next_batch(state, self.batch_rows),
            None => None,
        };
        if let Some(b) = &out {
            self.stats.rows += b.len() as u64;
            self.stats.batches += 1;
        }
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        Ok(out)
    }

    fn close(&mut self) {
        self.state = None;
        if !self.reported {
            self.reported = true;
            hrdm_obs::window::top_relations().record(&self.name, self.stats.rows);
        }
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn render(&self, depth: usize, annotate: bool, out: &mut String) {
        indent(out, depth);
        out.push_str(&self.label);
        out.push_str(&annotation(&self.stats, annotate));
        out.push('\n');
    }
}

// ---------------------------------------------------------------------------
// Streaming unaries
// ---------------------------------------------------------------------------

/// A per-tuple unary operator applied batch-by-batch over its child.
/// Checks the stream's [`CancelProbe`] whenever a child batch is fully
/// filtered away, so a highly-selective predicate over a large serial
/// scan still cancels within one input-batch boundary even though it
/// produces no output batches for the stream root to gate on.
struct FilterExec<'a> {
    op: UnaryOp,
    label: String,
    src: &'a dyn IndexSource,
    child: Box<dyn QueryExecutor + 'a>,
    cancel: Option<CancelProbe>,
    compiled: Option<TupleOp>,
    stats: ExecStats,
}

impl QueryExecutor for FilterExec<'_> {
    fn open(&mut self) -> Result<Scheme, ExecError> {
        let started = Instant::now();
        let in_scheme = self.child.open()?;
        let result = compile_op(&self.op, &in_scheme, self.src);
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        let (compiled, out_scheme) = result?;
        self.compiled = Some(compiled);
        Ok(out_scheme)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let started = Instant::now();
        let result = loop {
            let Some(op) = &self.compiled else {
                break Ok(None); // never opened (or already closed)
            };
            match self.child.next_batch() {
                Ok(Some(batch)) => {
                    let mut rows = Vec::new();
                    for t in batch.rows() {
                        match apply_op(op, t) {
                            Ok(Some(t2)) => rows.push(t2),
                            Ok(None) => {}
                            Err(e) => return Err(ExecError::Eval(e)),
                        }
                    }
                    if !rows.is_empty() {
                        self.stats.rows += rows.len() as u64;
                        self.stats.batches += 1;
                        break Ok(Some(RowBatch::new(rows)));
                    }
                    // A fully-filtered batch yields nothing: check for
                    // cancellation before pulling the next one, since no
                    // output reaches the stream root's per-batch gate.
                    if cancelled(&self.cancel) {
                        break Err(ExecError::Cancelled);
                    }
                }
                Ok(None) => break Ok(None),
                Err(e) => break Err(e),
            }
        };
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        result
    }

    fn close(&mut self) {
        self.compiled = None;
        self.child.close();
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn render(&self, depth: usize, annotate: bool, out: &mut String) {
        indent(out, depth);
        out.push_str(&self.label);
        out.push_str(&annotation(&self.stats, annotate));
        out.push('\n');
        self.child.render(depth + 1, annotate, out);
    }
}

// ---------------------------------------------------------------------------
// Blocking operators
// ---------------------------------------------------------------------------

/// Which blocking computation a [`BlockingExec`] runs at `open`.
enum BlockingKind {
    Binary(BinaryOp),
    Theta {
        a: Attribute,
        op: Comparator,
        b: Attribute,
    },
    TimeJoin {
        attr: Attribute,
    },
    IndexedNaturalJoin {
        right: String,
    },
    IndexedTimeJoin {
        right: String,
        attr: Attribute,
    },
}

/// Joins, products, and set operators: children are drained fully at
/// `open` (cancellation is checked between input batches), the result is
/// computed by the same algebra functions the materializing evaluator
/// calls, then streamed out in batches.
struct BlockingExec<'a> {
    kind: BlockingKind,
    label: String,
    probe: Option<String>,
    src: &'a dyn IndexSource,
    children: Vec<Box<dyn QueryExecutor + 'a>>,
    cancel: Option<CancelProbe>,
    batch_rows: usize,
    out: Option<ScanState>,
    stats: ExecStats,
}

/// Drains `child` into a materialized relation (set semantics, like every
/// intermediate of the materializing evaluator), checking `cancel`
/// between batches.
fn drain_child(
    child: &mut dyn QueryExecutor,
    cancel: &Option<CancelProbe>,
) -> Result<Relation, ExecError> {
    let scheme = child.open()?;
    let mut rows: Vec<Tuple> = Vec::new();
    loop {
        if cancelled(cancel) {
            child.close();
            return Err(ExecError::Cancelled);
        }
        match child.next_batch()? {
            Some(batch) => rows.extend(batch.into_rows()),
            None => break,
        }
    }
    child.close();
    Ok(Relation::from_parts_unchecked(scheme, rows))
}

impl BlockingExec<'_> {
    fn compute(&mut self) -> Result<Relation, ExecError> {
        let mut inputs = Vec::new();
        for child in &mut self.children {
            inputs.push(drain_child(child.as_mut(), &self.cancel)?);
        }
        let result = match (&self.kind, inputs.as_slice()) {
            (BlockingKind::Binary(op), [a, b]) => match op {
                BinaryOp::Union => union(a, b),
                BinaryOp::Intersection => intersection(a, b),
                BinaryOp::Difference => difference(a, b),
                BinaryOp::UnionO => union_o(a, b),
                BinaryOp::IntersectionO => intersection_o(a, b),
                BinaryOp::DifferenceO => difference_o(a, b),
                BinaryOp::Product => cartesian_product(a, b),
                BinaryOp::NaturalJoin => natural_join(a, b),
            },
            (BlockingKind::Theta { a, op, b }, [l, r]) => theta_join(l, r, a, *op, b),
            (BlockingKind::TimeJoin { attr }, [l, r]) => time_join(l, r, attr),
            (BlockingKind::IndexedNaturalJoin { right }, [a]) => {
                let b = self
                    .src
                    .relation(right)
                    .ok_or_else(|| HrdmError::UnknownRelation(right.clone()))?;
                match self.src.indexes(right).and_then(RelationIndexes::key) {
                    Some(key_idx) => indexed_natural_join(a, b, key_idx),
                    None => natural_join(a, b), // index dropped since planning
                }
            }
            (BlockingKind::IndexedTimeJoin { right, attr }, [a]) => {
                let b = self
                    .src
                    .relation(right)
                    .ok_or_else(|| HrdmError::UnknownRelation(right.clone()))?;
                match self.src.indexes(right) {
                    Some(idx) => {
                        indexed_time_join(a, b, attr, idx, valid_partitions(self.src, right, b))
                    }
                    None => time_join(a, b, attr),
                }
            }
            // Arity is fixed at build time; a mismatch cannot be reached
            // through `build_executor`.
            _ => Err(HrdmError::UnknownRelation(self.label.clone())),
        }?;
        Ok(result)
    }
}

impl QueryExecutor for BlockingExec<'_> {
    fn open(&mut self) -> Result<Scheme, ExecError> {
        let started = Instant::now();
        let result = self.compute();
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        let r = result?;
        let scheme = r.scheme().clone();
        self.out = Some(ScanState {
            relation: r,
            positions: None,
            cursor: 0,
        });
        Ok(scheme)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let started = Instant::now();
        let out = match &mut self.out {
            Some(state) => scan_next_batch(state, self.batch_rows),
            None => None,
        };
        if let Some(b) = &out {
            self.stats.rows += b.len() as u64;
            self.stats.batches += 1;
        }
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        Ok(out)
    }

    fn close(&mut self) {
        self.out = None;
        for child in &mut self.children {
            child.close();
        }
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn render(&self, depth: usize, annotate: bool, out: &mut String) {
        indent(out, depth);
        out.push_str(&self.label);
        out.push_str(&annotation(&self.stats, annotate));
        out.push('\n');
        for child in &self.children {
            child.render(depth + 1, annotate, out);
        }
        if let Some(probe) = &self.probe {
            indent(out, depth + 1);
            out.push_str(probe);
            out.push('\n');
        }
    }
}

// ---------------------------------------------------------------------------
// Gather: morsel-parallel leaf scans
// ---------------------------------------------------------------------------

/// One unit of parallel scan work: either a contiguous position range or
/// an explicit position set (one partition of the relation's map).
enum Morsel {
    Range(usize, usize),
    Positions(Vec<usize>),
}

/// A morsel-parallel leaf: a full-relation `SeqScan` fused with the
/// per-tuple unaries stacked directly above it, executed by `workers`
/// threads that claim morsels from a shared cursor and push result
/// batches through one bounded channel.
///
/// Morsels are the relation's partition position sets when a current
/// partition map exists (partitions are independent position sets with
/// min/max summaries — exactly the work-unit shape morsel scheduling
/// wants), or fixed-size position ranges otherwise. Workers observe a
/// stop flag and the stream's [`CancelProbe`] at morsel and batch
/// granularity, so `close` (and cancellation) tears the pool down without
/// waiting for the scan to finish.
struct GatherExec<'a> {
    scan_name: String,
    access: AccessPath,
    chain: Vec<UnaryOp>,
    /// Labels for rendering: fused unaries outermost-first, scan last.
    fused_labels: Vec<String>,
    src: &'a dyn IndexSource,
    workers: usize,
    batch_rows: usize,
    cancel: Option<CancelProbe>,
    running: Option<GatherRuntime>,
    spawned: usize,
    morsel_count: usize,
    stats: ExecStats,
    /// Rows-streamed leaderboard credit fires once, at first close.
    reported: bool,
}

struct GatherRuntime {
    rx: Receiver<Result<Vec<Tuple>, HrdmError>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

/// The shared, immutable context of one parallel scan.
struct GatherJob {
    tuples: Arc<Vec<Tuple>>,
    morsels: Vec<Morsel>,
    next_morsel: AtomicUsize,
    ops: Vec<TupleOp>,
    batch_rows: usize,
    stop: Arc<AtomicBool>,
    cancel: Option<CancelProbe>,
}

impl GatherJob {
    fn interrupted(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || cancelled(&self.cancel)
    }
}

/// One scan worker: claim morsels, run tuples through the fused kernel,
/// ship full batches. Exits on stop/cancel, on a kernel error (shipped to
/// the consumer), or when the consumer hangs up (send fails).
fn gather_worker(job: &GatherJob, tx: &SyncSender<Result<Vec<Tuple>, HrdmError>>) {
    let mut batch: Vec<Tuple> = Vec::new();
    loop {
        if job.interrupted() {
            return;
        }
        let m = job.next_morsel.fetch_add(1, Ordering::SeqCst);
        let Some(morsel) = job.morsels.get(m) else {
            break;
        };
        let positions: &mut dyn Iterator<Item = usize> = match morsel {
            Morsel::Range(lo, hi) => &mut (*lo..*hi),
            Morsel::Positions(p) => &mut p.iter().copied(),
        };
        for pos in positions {
            let Some(t) = job.tuples.get(pos) else {
                continue;
            };
            match apply_chain(&job.ops, t) {
                Ok(Some(t2)) => {
                    batch.push(t2);
                    if batch.len() >= job.batch_rows
                        && (job.interrupted() || tx.send(Ok(std::mem::take(&mut batch))).is_err())
                    {
                        return;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    }
    if !batch.is_empty() && !job.interrupted() {
        let _ = tx.send(Ok(batch));
    }
}

/// Splits the scan into morsels: partition position sets when a current
/// partition map exists, fixed-size ranges otherwise.
fn plan_morsels(src: &dyn IndexSource, name: &str, r: &Relation) -> Vec<Morsel> {
    if let Some(parts) = valid_partitions(src, name, r) {
        if parts.partition_count() > 1 {
            return parts
                .iter()
                .filter(|(_, p)| !p.is_empty())
                .map(|(_, p)| Morsel::Positions(p.positions().collect()))
                .collect();
        }
    }
    let mut morsels = Vec::new();
    let mut lo = 0usize;
    while lo < r.len() {
        let hi = (lo + MORSEL_ROWS).min(r.len());
        morsels.push(Morsel::Range(lo, hi));
        lo = hi;
    }
    morsels
}

impl GatherExec<'_> {
    fn shutdown(&mut self) {
        if let Some(rt) = self.running.take() {
            rt.stop.store(true, Ordering::SeqCst);
            // Dropping the receiver makes every blocked `send` fail, so
            // workers exit promptly even with a full channel.
            drop(rt.rx);
            for h in rt.handles {
                let _ = h.join();
            }
        }
    }
}

impl QueryExecutor for GatherExec<'_> {
    fn open(&mut self) -> Result<Scheme, ExecError> {
        let started = Instant::now();
        record_scan_access(&self.access);
        let result = (|| -> Result<(Scheme, GatherRuntime, usize, usize), ExecError> {
            let r = self
                .src
                .relation(&self.scan_name)
                .ok_or_else(|| HrdmError::UnknownRelation(self.scan_name.clone()))?;
            // Compile the fused unaries bottom-up against the scan scheme.
            let mut scheme = r.scheme().clone();
            let mut ops = Vec::new();
            for op in self.chain.iter().rev() {
                let (compiled, out_scheme) = compile_op(op, &scheme, self.src)?;
                ops.push(compiled);
                scheme = out_scheme;
            }
            let morsels = plan_morsels(self.src, &self.scan_name, r);
            let workers = self.workers.min(morsels.len()).max(1);
            let stop = Arc::new(AtomicBool::new(false));
            let job = Arc::new(GatherJob {
                tuples: r.tuples_shared(),
                morsels,
                next_morsel: AtomicUsize::new(0),
                ops,
                batch_rows: self.batch_rows,
                stop: Arc::clone(&stop),
                cancel: self.cancel.clone(),
            });
            let morsel_count = job.morsels.len();
            let (tx, rx) = std::sync::mpsc::sync_channel(workers * 2);
            let mut handles = Vec::new();
            for _ in 0..workers {
                let job = Arc::clone(&job);
                let tx = tx.clone();
                handles.push(std::thread::spawn(move || gather_worker(&job, &tx)));
            }
            drop(tx); // consumers detect end-of-stream via RecvError
            Ok((
                scheme,
                GatherRuntime { rx, stop, handles },
                workers,
                morsel_count,
            ))
        })();
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        let (scheme, runtime, workers, morsel_count) = result?;
        self.running = Some(runtime);
        self.spawned = workers;
        self.morsel_count = morsel_count;
        Ok(scheme)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let started = Instant::now();
        let received = match &self.running {
            Some(rt) => rt.rx.recv().ok(),
            None => None,
        };
        let result = match received {
            Some(Ok(rows)) => {
                self.stats.rows += rows.len() as u64;
                self.stats.batches += 1;
                Ok(Some(RowBatch::new(rows)))
            }
            Some(Err(e)) => {
                self.shutdown();
                Err(ExecError::Eval(e))
            }
            // Every worker finished and dropped its sender. Workers also
            // bail out without sending when the cancel probe fires, so a
            // disconnect with the probe raised is an aborted scan, not a
            // drained one — reporting it as end-of-stream would let a
            // truncated result masquerade as a complete `Done`.
            None => {
                self.shutdown();
                if cancelled(&self.cancel) {
                    Err(ExecError::Cancelled)
                } else {
                    Ok(None)
                }
            }
        };
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        result
    }

    fn close(&mut self) {
        self.shutdown();
        if !self.reported {
            self.reported = true;
            hrdm_obs::window::top_relations().record(&self.scan_name, self.stats.rows);
        }
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn render(&self, depth: usize, annotate: bool, out: &mut String) {
        indent(out, depth);
        out.push_str(&format!(
            "Gather(workers: {}, morsels: {})",
            self.spawned.max(1),
            self.morsel_count
        ));
        out.push_str(&annotation(&self.stats, annotate));
        out.push('\n');
        for (i, label) in self.fused_labels.iter().enumerate() {
            indent(out, depth + 1 + i);
            out.push_str(label);
            out.push('\n');
        }
    }
}

impl Drop for GatherExec<'_> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Pre-materialized results
// ---------------------------------------------------------------------------

/// Streams an already-materialized relation (the defensive path for
/// results produced outside the executor tree).
struct PreMaterialized {
    label: String,
    batch_rows: usize,
    relation: Option<Relation>,
    state: Option<ScanState>,
    stats: ExecStats,
}

impl QueryExecutor for PreMaterialized {
    fn open(&mut self) -> Result<Scheme, ExecError> {
        let Some(r) = self.relation.take() else {
            return Err(ExecError::Eval(HrdmError::UnknownRelation(
                self.label.clone(),
            )));
        };
        let scheme = r.scheme().clone();
        self.state = Some(ScanState {
            relation: r,
            positions: None,
            cursor: 0,
        });
        Ok(scheme)
    }

    fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        let started = Instant::now();
        let out = match &mut self.state {
            Some(state) => scan_next_batch(state, self.batch_rows),
            None => None,
        };
        if let Some(b) = &out {
            self.stats.rows += b.len() as u64;
            self.stats.batches += 1;
        }
        self.stats.wall_ns += started.elapsed().as_nanos() as u64;
        Ok(out)
    }

    fn close(&mut self) {
        self.state = None;
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn render(&self, depth: usize, annotate: bool, out: &mut String) {
        indent(out, depth);
        out.push_str(&self.label);
        out.push_str(&annotation(&self.stats, annotate));
        out.push('\n');
    }
}

// ---------------------------------------------------------------------------
// Executor-tree construction
// ---------------------------------------------------------------------------

/// The stack of unary operators above `p`'s leftmost descendant chain:
/// ops outermost-first, plus the chain's bottom node.
fn unary_chain(p: &Plan) -> (Vec<&UnaryOp>, &Plan) {
    let mut ops = Vec::new();
    let mut cur = p;
    while let Plan::Unary { op, input } = cur {
        ops.push(op);
        cur = input;
    }
    (ops, cur)
}

/// `Some(workers)` when [`build_executor`] would root a [`GatherExec`] at
/// `p`: the node heads a (possibly empty) chain of per-tuple unaries over
/// a full `SeqScan` of a relation big enough to amortize thread spawns.
/// EXPLAIN uses the same predicate, so the printed plan always matches
/// what execution does.
fn gather_at(p: &Plan, src: &dyn IndexSource, opts: &ExecOptions) -> Option<usize> {
    if opts.workers < 2 {
        return None;
    }
    let (_, bottom) = unary_chain(p);
    let Plan::Scan {
        relation,
        access: AccessPath::SeqScan,
    } = bottom
    else {
        return None;
    };
    let r = src.relation(relation)?;
    (r.len() >= opts.parallel_min_rows).then_some(opts.workers)
}

/// Builds the executor tree for a physical plan. Construction is
/// infallible — relation resolution, typechecks, and lifespan-parameter
/// evaluation all happen at `open`, in the same bottom-up order as the
/// materializing evaluator, so error behaviour matches.
pub fn build_executor<'a>(
    p: &Plan,
    src: &'a dyn IndexSource,
    opts: &ExecOptions,
) -> Box<dyn QueryExecutor + 'a> {
    if gather_at(p, src, opts).is_some() {
        let (ops, bottom) = unary_chain(p);
        let (name, access) = match bottom {
            Plan::Scan { relation, access } => (relation.as_str(), access),
            // unreachable in practice: gather_at only fires on scans.
            _ => ("", &AccessPath::SeqScan),
        };
        let mut fused_labels: Vec<String> = ops.iter().map(|op| unary_label(op)).collect();
        fused_labels.push(node_label(bottom));
        return Box::new(GatherExec {
            scan_name: name.to_string(),
            access: access.clone(),
            chain: ops.into_iter().cloned().collect(),
            fused_labels,
            src,
            workers: opts.workers,
            batch_rows: opts.batch_rows_clamped(),
            cancel: opts.cancel.clone(),
            running: None,
            spawned: 0,
            morsel_count: 0,
            stats: ExecStats::default(),
            reported: false,
        });
    }
    match p {
        Plan::Scan { relation, access } => {
            Box::new(ScanExec::build(relation, access, node_label(p), src, opts))
        }
        Plan::Unary { op, input } => Box::new(FilterExec {
            op: op.clone(),
            label: node_label(p),
            src,
            child: build_executor(input, src, opts),
            cancel: opts.cancel.clone(),
            compiled: None,
            stats: ExecStats::default(),
        }),
        Plan::Binary { op, left, right } => blocking(
            BlockingKind::Binary(*op),
            p,
            vec![
                build_executor(left, src, opts),
                build_executor(right, src, opts),
            ],
            src,
            opts,
        ),
        Plan::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => blocking(
            BlockingKind::Theta {
                a: a.clone(),
                op: *op,
                b: b.clone(),
            },
            p,
            vec![
                build_executor(left, src, opts),
                build_executor(right, src, opts),
            ],
            src,
            opts,
        ),
        Plan::TimeJoin { left, right, attr } => blocking(
            BlockingKind::TimeJoin { attr: attr.clone() },
            p,
            vec![
                build_executor(left, src, opts),
                build_executor(right, src, opts),
            ],
            src,
            opts,
        ),
        Plan::IndexedNaturalJoin { left, right } => blocking(
            BlockingKind::IndexedNaturalJoin {
                right: right.clone(),
            },
            p,
            vec![build_executor(left, src, opts)],
            src,
            opts,
        ),
        Plan::IndexedTimeJoin { left, right, attr } => blocking(
            BlockingKind::IndexedTimeJoin {
                right: right.clone(),
                attr: attr.clone(),
            },
            p,
            vec![build_executor(left, src, opts)],
            src,
            opts,
        ),
    }
}

fn blocking<'a>(
    kind: BlockingKind,
    p: &Plan,
    children: Vec<Box<dyn QueryExecutor + 'a>>,
    src: &'a dyn IndexSource,
    opts: &ExecOptions,
) -> Box<dyn QueryExecutor + 'a> {
    Box::new(BlockingExec {
        kind,
        label: node_label(p),
        probe: probe_line(p),
        src,
        children,
        cancel: opts.cancel.clone(),
        batch_rows: opts.batch_rows_clamped(),
        out: None,
        stats: ExecStats::default(),
    })
}

/// Renders the streaming plan for `p` without running it: the same
/// indented tree as the materializing EXPLAIN, except that chains a
/// `Gather` would absorb render under a `Gather(workers: k)` node.
pub fn explain_stream_plan(p: &Plan, src: &dyn IndexSource, opts: &ExecOptions) -> String {
    let mut out = String::new();
    render_plan_node(p, src, opts, 0, &mut out);
    out
}

fn render_plan_node(
    p: &Plan,
    src: &dyn IndexSource,
    opts: &ExecOptions,
    depth: usize,
    out: &mut String,
) {
    use std::fmt::Write;
    if let Some(workers) = gather_at(p, src, opts) {
        indent(out, depth);
        let _ = writeln!(out, "Gather(workers: {workers})");
        let (ops, bottom) = unary_chain(p);
        let mut d = depth + 1;
        for op in ops {
            indent(out, d);
            let _ = writeln!(out, "{}", unary_label(op));
            d += 1;
        }
        indent(out, d);
        let _ = writeln!(out, "{}", node_label(bottom));
        return;
    }
    indent(out, depth);
    let _ = writeln!(out, "{}", node_label(p));
    match p {
        Plan::Scan { .. } => {}
        Plan::Unary { input, .. } => render_plan_node(input, src, opts, depth + 1, out),
        Plan::Binary { left, right, .. }
        | Plan::ThetaJoin { left, right, .. }
        | Plan::TimeJoin { left, right, .. } => {
            render_plan_node(left, src, opts, depth + 1, out);
            render_plan_node(right, src, opts, depth + 1, out);
        }
        Plan::IndexedNaturalJoin { left, .. } | Plan::IndexedTimeJoin { left, .. } => {
            render_plan_node(left, src, opts, depth + 1, out);
        }
    }
    if let Some(probe) = probe_line(p) {
        indent(out, depth + 1);
        let _ = writeln!(out, "{probe}");
    }
}

// ---------------------------------------------------------------------------
// The stream root
// ---------------------------------------------------------------------------

/// A live, pull-driven query result: the opened executor tree plus
/// per-batch enforcement of the row cap and cancellation.
///
/// Obtain one from [`crate::stream_query_on_snapshot`]; iterate it (it is
/// an [`Iterator`] of `Result<RowBatch, ExecError>`), or call
/// [`collect_relation`](QueryStream::collect_relation) to materialize the
/// whole result with set semantics.
pub struct QueryStream<'a> {
    root: Box<dyn QueryExecutor + 'a>,
    scheme: Scheme,
    max_rows: Option<u64>,
    cancel: Option<CancelProbe>,
    plan_ns: u64,
    rows: u64,
    batches: u64,
    done: bool,
}

impl<'a> QueryStream<'a> {
    /// Opens `root` and wraps it with the stream-level caps of `opts`.
    pub fn new(
        mut root: Box<dyn QueryExecutor + 'a>,
        opts: &ExecOptions,
    ) -> Result<QueryStream<'a>, ExecError> {
        let scheme = match root.open() {
            Ok(s) => s,
            Err(e) => {
                root.close();
                return Err(e);
            }
        };
        Ok(QueryStream {
            root,
            scheme,
            max_rows: opts.max_rows,
            cancel: opts.cancel.clone(),
            plan_ns: 0,
            rows: 0,
            batches: 0,
            done: false,
        })
    }

    /// Streams an already-materialized relation (used for results computed
    /// outside the executor tree).
    pub fn from_relation(r: Relation, opts: &ExecOptions) -> Result<QueryStream<'a>, ExecError> {
        QueryStream::new(
            Box::new(PreMaterialized {
                label: "Materialized".to_string(),
                batch_rows: opts.batch_rows_clamped(),
                relation: Some(r),
                state: None,
                stats: ExecStats::default(),
            }),
            opts,
        )
    }

    pub(crate) fn set_plan_ns(&mut self, ns: u64) {
        self.plan_ns = ns;
    }

    /// Nanoseconds the pipeline spent parsing, optimizing, and planning
    /// before this stream was opened.
    pub fn plan_ns(&self) -> u64 {
        self.plan_ns
    }

    /// The result scheme (known as soon as the stream exists).
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Rows handed out so far.
    pub fn rows_streamed(&self) -> u64 {
        self.rows
    }

    /// Batches handed out so far.
    pub fn batches_streamed(&self) -> u64 {
        self.batches
    }

    /// The next batch. Checks the cancellation probe first and the row cap
    /// after counting the batch, so both abort within one batch boundary.
    /// Any terminal outcome (drain, cancel, cap, error) closes the tree;
    /// afterwards the stream is fused.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>, ExecError> {
        if self.done {
            return Ok(None);
        }
        if cancelled(&self.cancel) {
            self.done = true;
            self.root.close();
            return Err(ExecError::Cancelled);
        }
        match self.root.next_batch() {
            Ok(Some(batch)) => {
                self.rows += batch.len() as u64;
                self.batches += 1;
                if let Some(max) = self.max_rows {
                    if self.rows > max {
                        self.done = true;
                        self.root.close();
                        return Err(ExecError::RowLimit(max));
                    }
                }
                Ok(Some(batch))
            }
            Ok(None) => {
                self.done = true;
                self.root.close();
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                self.root.close();
                Err(e)
            }
        }
    }

    /// Drains the stream into a materialized relation with set semantics
    /// (duplicates collapse), which is exactly what the materializing
    /// evaluator's operators produce.
    pub fn collect_relation(mut self) -> Result<Relation, ExecError> {
        let mut rows: Vec<Tuple> = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch.into_rows());
        }
        Ok(Relation::from_parts_unchecked(self.scheme.clone(), rows))
    }

    /// Renders the executor tree, optionally annotated with the measured
    /// per-operator stats of this run (`EXPLAIN ANALYZE`'s body).
    pub fn render_plan(&self, annotate: bool) -> String {
        let mut out = String::new();
        self.root.render(0, annotate, &mut out);
        out
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Result<RowBatch, ExecError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_batch() {
            Ok(Some(b)) => Some(Ok(b)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

impl Drop for QueryStream<'_> {
    fn drop(&mut self) {
        self.root.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::plan::{plan, IndexedRelations};
    use hrdm_core::prelude::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicUsize;

    fn scheme() -> Scheme {
        let era = Lifespan::interval(0, 4096);
        Scheme::builder()
            .key_attr("K", ValueKind::Int, era.clone())
            .attr("V", HistoricalDomain::int(), era)
            .build()
            .unwrap()
    }

    fn tup(k: i64, lo: i64, len: i64, v: i64) -> Tuple {
        let life = Lifespan::interval(lo, lo + len);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(v)))
            .finish(&scheme())
            .unwrap()
    }

    fn source(n: i64) -> IndexedRelations {
        let tuples: Vec<Tuple> = (0..n).map(|k| tup(k, k % 64, 40, k * 10)).collect();
        let mut map = BTreeMap::new();
        map.insert(
            "r".to_string(),
            Relation::with_tuples(scheme(), tuples).unwrap(),
        );
        IndexedRelations::new(map)
    }

    fn collect(text: &str, src: &IndexedRelations, opts: &ExecOptions) -> Relation {
        let q = parse_query(text).unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("expected relation query, got {other:?}"),
        };
        let (optimized, _) = crate::optimizer::optimize(&e);
        let p = plan(&optimized, src);
        QueryStream::new(build_executor(&p, src, opts), opts)
            .unwrap()
            .collect_relation()
            .unwrap()
    }

    #[test]
    fn streaming_matches_materialized_eval() {
        let src = source(500);
        let opts = ExecOptions {
            batch_rows: 64,
            ..ExecOptions::default()
        };
        for text in [
            "r",
            "TIMESLICE [10..20] (r)",
            "SELECT-WHEN (V >= 100) (r)",
            "PROJECT [V] (TIMESLICE [0..31] (r))",
            "TIMESLICE [5..9] (r) UNION TIMESLICE [9..12] (r)",
        ] {
            let q = parse_query(text).unwrap();
            #[allow(deprecated)]
            let reference = match crate::eval::evaluate(&q, &src).unwrap() {
                crate::eval::QueryResult::Relation(r) => r,
                other => panic!("expected relation, got {other:?}"),
            };
            let streamed = collect(text, &src, &opts);
            assert_eq!(streamed, reference, "{text}");
        }
    }

    #[test]
    fn parallel_scan_matches_serial_and_spawns_workers() {
        let src = source(5000);
        let parallel = ExecOptions {
            batch_rows: 128,
            workers: 4,
            parallel_min_rows: 1,
            ..ExecOptions::default()
        };
        let serial = ExecOptions {
            workers: 1,
            ..ExecOptions::default()
        };
        let text = "SELECT-WHEN (V >= 0) (r)";
        let a = collect(text, &src, &parallel);
        let b = collect(text, &src, &serial);
        assert_eq!(a, b);

        // The plan renders a Gather node exactly when it parallelizes.
        let q = parse_query(text).unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let (optimized, _) = crate::optimizer::optimize(&e);
        let p = plan(&optimized, &src);
        let plan_text = explain_stream_plan(&p, &src, &parallel);
        assert!(plan_text.contains("Gather(workers: 4)"), "{plan_text}");
        assert!(plan_text.contains("Scan r [SeqScan]"), "{plan_text}");
        let serial_text = explain_stream_plan(&p, &src, &serial);
        assert!(!serial_text.contains("Gather"), "{serial_text}");
    }

    #[test]
    fn cancel_aborts_within_one_batch() {
        let src = source(5000);
        let fired = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&fired);
        let opts = ExecOptions {
            batch_rows: 32,
            workers: 1,
            cancel: Some(Arc::new(move || probe.fetch_add(1, Ordering::SeqCst) >= 2)),
            ..ExecOptions::default()
        };
        let q = parse_query("r").unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let p = plan(&e, &src);
        let mut s = QueryStream::new(build_executor(&p, &src, &opts), &opts).unwrap();
        let mut rows = 0u64;
        let err = loop {
            match s.next_batch() {
                Ok(Some(b)) => rows += b.len() as u64,
                Ok(None) => panic!("expected cancellation, stream drained ({rows} rows)"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, ExecError::Cancelled);
        assert!(rows < 5000, "cancel landed after {rows} rows");
    }

    /// A gather disconnect caused by cancellation must surface as
    /// `Cancelled`, not as a clean drain: workers that bail on the probe
    /// drop their senders exactly like drained ones, and reporting that
    /// as end-of-stream would pass a truncated result off as complete.
    /// Drives the executor directly (not through `QueryStream`) so the
    /// stream root's own probe check cannot mask the gather-level path.
    #[test]
    fn cancelled_gather_disconnect_is_not_a_drain() {
        let src = source(5000);
        let flag = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&flag);
        let opts = ExecOptions {
            batch_rows: 128,
            workers: 4,
            parallel_min_rows: 1,
            cancel: Some(Arc::new(move || probe.load(Ordering::SeqCst) != 0)),
            ..ExecOptions::default()
        };
        let q = parse_query("r").unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let p = plan(&e, &src);
        let mut root = build_executor(&p, &src, &opts);
        root.open().unwrap();
        // Raise the probe while workers are mid-scan; in-flight batches
        // may still arrive, then every worker exits without sending.
        flag.store(1, Ordering::SeqCst);
        let err = loop {
            match root.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("cancelled gather reported a clean drain"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, ExecError::Cancelled);
        root.close();
    }

    /// A selective filter that discards every row produces no output
    /// batches for the stream root to gate on, so the filter itself must
    /// honor the probe between child batches on serial plans.
    #[test]
    fn cancel_aborts_fully_filtered_serial_scan() {
        let src = source(5000);
        let fired = Arc::new(AtomicUsize::new(0));
        let probe = Arc::clone(&fired);
        let opts = ExecOptions {
            batch_rows: 32,
            workers: 1,
            cancel: Some(Arc::new(move || probe.fetch_add(1, Ordering::SeqCst) >= 2)),
            ..ExecOptions::default()
        };
        // V = k*10 >= 0 for every row: the predicate matches nothing.
        let q = parse_query("SELECT-WHEN (V < 0) (r)").unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let p = plan(&e, &src);
        let mut s = QueryStream::new(build_executor(&p, &src, &opts), &opts).unwrap();
        match s.next_batch() {
            Err(ExecError::Cancelled) => {}
            other => panic!("expected Cancelled before the scan drained, got {other:?}"),
        }
        // Cancelled after two probe checks, far short of draining all
        // 5000/32 child batches.
        assert!(fired.load(Ordering::SeqCst) < 10);
    }

    #[test]
    fn row_cap_aborts_mid_stream() {
        let src = source(5000);
        let opts = ExecOptions {
            batch_rows: 32,
            workers: 1,
            max_rows: Some(100),
            ..ExecOptions::default()
        };
        let q = parse_query("r").unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let p = plan(&e, &src);
        let mut s = QueryStream::new(build_executor(&p, &src, &opts), &opts).unwrap();
        let err = loop {
            match s.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected a row-cap abort"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, ExecError::RowLimit(100));
    }

    #[test]
    fn open_reports_unknown_relations() {
        let src = source(1);
        let opts = ExecOptions::default();
        let q = parse_query("ghost").unwrap();
        let e = match q {
            crate::ast::Query::Relation(e) => e,
            other => panic!("unexpected {other:?}"),
        };
        let p = plan(&e, &src);
        match QueryStream::new(build_executor(&p, &src, &opts), &opts) {
            Err(ExecError::Eval(HrdmError::UnknownRelation(name))) => assert_eq!(name, "ghost"),
            Err(other) => panic!("expected UnknownRelation, got {other:?}"),
            Ok(_) => panic!("expected UnknownRelation, stream opened"),
        };
    }
}
