//! Access-path selection: turning an optimized expression into a physical
//! plan that uses indexes where they help.
//!
//! The rewrite optimizer ([`crate::optimizer`]) normalizes an expression
//! (fusing TIME-SLICEs, pushing them under selects, …); this module then
//! walks the normalized tree and picks an [`AccessPath`] for every base
//! relation scan:
//!
//! * `τ_L(R)` with a literal lifespan probes `R`'s **lifespan interval
//!   index** for the tuples alive somewhere in `L`;
//! * `σWHEN` / `σIF(…, EXISTS)` whose predicate pins the relation's full
//!   key with equality conjuncts probes the **key index**;
//! * `NATURAL-JOIN` / TIME-JOIN over base relations turn into index
//!   nested-loop joins probing the right side's key / lifespan index;
//! * everything else stays a sequential scan.
//!
//! Indexes only ever produce *candidate positions*; every operator
//! re-applies its exact semantics on the candidates, so a planned query
//! returns exactly what the unplanned evaluator returns (the workspace
//! test-suite asserts this equivalence on random inputs). A missing or
//! invalidated index at execution time degrades to a sequential scan, never
//! to an error.

use crate::ast::{Expr, LifespanExpr};
use crate::eval::{eval_lifespan, RelationSource};
use hrdm_core::algebra::{
    cartesian_product, difference, difference_o, intersection, intersection_o, natural_join,
    natural_join_pair, project, select_if, select_when, theta_join, time_join, time_join_pair,
    timeslice, timeslice_dynamic, union, union_o, Comparator, Operand, Predicate, Quantifier,
};
use hrdm_core::{Attribute, HrdmError, Relation, Result, Tuple, Value};
use hrdm_index::RelationIndexes;
use hrdm_storage::PartitionMap;
use hrdm_time::Lifespan;
use std::collections::BTreeMap;
use std::fmt;

/// A source of named relations that can also hand out their access methods.
///
/// `hrdm_storage::Database` implements this (it maintains indexes across
/// mutations); [`IndexedRelations`] wraps any in-memory relation map.
pub trait IndexSource: RelationSource {
    /// The current, valid indexes for `name`, if any.
    fn indexes(&self, name: &str) -> Option<&RelationIndexes>;

    /// The chronon-range partition map for `name`, if the source maintains
    /// one. Lifespan-bounded scans then plan only the partitions whose
    /// min/max summary overlaps the bound (partition pruning); `None`
    /// falls back to the relation-wide lifespan index.
    fn partitions(&self, name: &str) -> Option<&PartitionMap> {
        let _ = name;
        None
    }
}

impl IndexSource for hrdm_storage::Database {
    fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        hrdm_storage::Database::indexes(self, name)
    }

    fn partitions(&self, name: &str) -> Option<&PartitionMap> {
        hrdm_storage::Database::partitions(self, name)
    }
}

/// Snapshots carry their relations *and* the matching frozen indexes, so a
/// planned query against a snapshot uses index scans whose positions are
/// valid by construction — the index and tuple vector were published
/// together, and concurrent writers copy-on-write instead of mutating them.
impl IndexSource for hrdm_storage::DbSnapshot {
    fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        hrdm_storage::DbSnapshot::indexes(self, name)
    }

    /// The snapshot's frozen partition map: a repartition of the live
    /// database after this snapshot was taken builds new maps and leaves
    /// this one untouched.
    fn partitions(&self, name: &str) -> Option<&PartitionMap> {
        hrdm_storage::DbSnapshot::partitions(self, name)
    }
}

/// An in-memory [`IndexSource`]: a relation map plus indexes built eagerly
/// for every relation. Useful for tests and ad-hoc querying without a
/// `Database`.
pub struct IndexedRelations {
    relations: BTreeMap<String, Relation>,
    indexes: BTreeMap<String, RelationIndexes>,
}

impl IndexedRelations {
    /// Builds indexes over every relation of `relations`.
    pub fn new(relations: BTreeMap<String, Relation>) -> IndexedRelations {
        let indexes = relations
            .iter()
            .map(|(name, r)| (name.clone(), RelationIndexes::build(r)))
            .collect();
        IndexedRelations { relations, indexes }
    }
}

impl RelationSource for IndexedRelations {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }
}

impl IndexSource for IndexedRelations {
    fn indexes(&self, name: &str) -> Option<&RelationIndexes> {
        self.indexes.get(name)
    }
}

/// Plan-time partition-pruning statistics for one lifespan-bounded scan:
/// how many of the relation's partitions the bound actually touches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PartitionPruning {
    /// Partitions whose min/max summary overlaps the window.
    pub scanned: usize,
    /// Total partitions of the relation.
    pub total: usize,
}

impl PartitionPruning {
    /// Partitions skipped without being touched.
    pub fn pruned(&self) -> usize {
        self.total - self.scanned
    }
}

/// How a base-relation scan fetches its tuples.
#[derive(Clone, PartialEq, Debug)]
pub enum AccessPath {
    /// Read every tuple.
    SeqScan,
    /// Probe the lifespan interval index for tuples alive somewhere in the
    /// window — served partition-by-partition when the source maintains a
    /// partition map (only the partitions overlapping the window are
    /// touched).
    LifespanIndex {
        /// The stabbing/overlap window.
        window: Lifespan,
        /// Plan-time pruning statistics, when the source is partitioned.
        pruning: Option<PartitionPruning>,
    },
    /// Probe the key index with an equality key.
    KeyIndex {
        /// Key attributes, in key order.
        attrs: Vec<Attribute>,
        /// The probed key value, parallel to `attrs`.
        key: Vec<Value>,
    },
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::SeqScan => f.write_str("SeqScan"),
            AccessPath::LifespanIndex { window, pruning } => {
                write!(f, "IndexScan(lifespan, {})", fmt_window(window))?;
                if let Some(p) = pruning {
                    write!(f, " partitions: {}/{} pruned", p.pruned(), p.total)?;
                }
                Ok(())
            }
            AccessPath::KeyIndex { attrs, key } => {
                let probe: Vec<String> = attrs
                    .iter()
                    .zip(key)
                    .map(|(a, v)| match v {
                        Value::Str(s) => format!("{a} = \"{s}\""),
                        v => format!("{a} = {v}"),
                    })
                    .collect();
                write!(f, "IndexScan(key, {})", probe.join(", "))
            }
        }
    }
}

/// Renders a lifespan in the query language's `[lo..hi, …]` style.
fn fmt_window(l: &Lifespan) -> String {
    let parts: Vec<String> = l
        .intervals()
        .iter()
        .map(|iv| {
            if iv.lo() == iv.hi() {
                format!("{}", iv.lo())
            } else {
                format!("{}..{}", iv.lo(), iv.hi())
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// A physical plan: the operator tree with an [`AccessPath`] on every base
/// relation scan and join strategies resolved.
#[derive(Clone, PartialEq, Debug)]
pub enum Plan {
    /// A base-relation scan.
    Scan {
        /// The relation name.
        relation: String,
        /// How its tuples are fetched.
        access: AccessPath,
    },
    /// A unary operator over a sub-plan.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Its input.
        input: Box<Plan>,
    },
    /// A binary operator over two sub-plans (both sides scanned).
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// NATURAL-JOIN probing the right relation's key index per left tuple.
    IndexedNaturalJoin {
        /// Left (build) side.
        left: Box<Plan>,
        /// Right (probe) relation name.
        right: String,
    },
    /// TIME-JOIN probing the right relation's lifespan index per left tuple.
    IndexedTimeJoin {
        /// Left side (owns the time-valued attribute).
        left: Box<Plan>,
        /// Right (probe) relation name.
        right: String,
        /// The time-valued attribute of the left side.
        attr: Attribute,
    },
    /// θ-JOIN by nested loop (no index applies to the θ comparison itself,
    /// but both children are planned).
    ThetaJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left join attribute.
        a: Attribute,
        /// The comparator θ.
        op: Comparator,
        /// Right join attribute.
        b: Attribute,
    },
    /// TIME-JOIN by nested loop, when the right side is not an indexed
    /// base relation (both children still planned).
    TimeJoin {
        /// Left input (owns the time-valued attribute).
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The time-valued attribute of the left side.
        attr: Attribute,
    },
}

/// Unary operators as they appear in plans.
#[derive(Clone, PartialEq, Debug)]
pub enum UnaryOp {
    /// `π_X`.
    Project(Vec<Attribute>),
    /// `σ-IF(θ, Q, L)`.
    SelectIf {
        /// Selection criterion θ.
        predicate: Predicate,
        /// The bounded quantifier.
        quantifier: Quantifier,
        /// Optional lifespan bound.
        lifespan: Option<LifespanExpr>,
    },
    /// `σ-WHEN(θ)`.
    SelectWhen(Predicate),
    /// Static TIME-SLICE `τ_L`.
    TimeSlice(LifespanExpr),
    /// Dynamic TIME-SLICE `τ@A`.
    TimeSliceDynamic(Attribute),
}

/// Binary operators as they appear in plans.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BinaryOp {
    /// `∪`.
    Union,
    /// `∩`.
    Intersection,
    /// `−`.
    Difference,
    /// `∪ₒ`.
    UnionO,
    /// `∩ₒ`.
    IntersectionO,
    /// `−ₒ`.
    DifferenceO,
    /// `×`.
    Product,
    /// NATURAL-JOIN by nested loop.
    NaturalJoin,
}

/// Plans an optimized expression against the indexes `src` currently holds.
pub fn plan(expr: &Expr, src: &dyn IndexSource) -> Plan {
    plan_bounded(expr, src, None)
}

/// The widest lifespan window `W` such that evaluating `expr` over a
/// source holding **only tuples whose lifespan intersects `W`** gives the
/// same answer as over the full source — or `None` when no such window
/// short of all-of-`T` exists.
///
/// This is the out-of-core analogue of the planner's per-leaf bound
/// propagation (`plan_bounded`):
/// the bound-propagation rules are mirrored exactly (introduced at a
/// literal `τ_L`, narrowed by nesting, flowing through the unaries and
/// set operators, cut at products and joins), and `W` is the **union of
/// the bounds reaching every base-relation leaf**. A tuple disjoint from
/// `W` is disjoint from its leaf's bound, so the literal time-slices
/// above that leaf clip its whole contribution — the same argument that
/// makes the bounded access path sound, and differentially tested the
/// same way. One leaf reached with no bound (an unsliced scan, or a
/// relation referenced from a computed lifespan like `Ω(e)`) forces
/// `None`: some tuple of it could matter at any chronon.
///
/// `hrdm_storage::PagedDatabase::window_snapshot` takes `W` to
/// materialize the minimal snapshot; partitions disjoint from `W` stay
/// cold on disk.
pub fn materialization_window(expr: &Expr) -> Option<Lifespan> {
    let mut acc = Some(Lifespan::empty());
    collect_window(expr, None, &mut acc);
    acc
}

/// Folds the bound reaching each relation leaf of `expr` into `acc`
/// (`None` = give up: some leaf is unbounded).
fn collect_window(expr: &Expr, bound: Option<&Lifespan>, acc: &mut Option<Lifespan>) {
    if acc.is_none() {
        return;
    }
    match expr {
        Expr::Relation(_) => match bound {
            Some(b) => {
                if let Some(w) = acc {
                    *w = w.union(b);
                }
            }
            None => *acc = None,
        },
        Expr::TimeSlice {
            input,
            lifespan: LifespanExpr::Literal(window),
        } => {
            let narrowed = match bound {
                Some(b) => window.intersect(b),
                None => window.clone(),
            };
            collect_window(input, Some(&narrowed), acc);
        }
        // A computed slice window may itself mention relations (Ω(e));
        // those are read *unsliced* at run time, so they unbound W.
        Expr::TimeSlice { input, lifespan } => {
            lifespan_expr_relations(lifespan, acc);
            collect_window(input, bound, acc);
        }
        Expr::SelectIf {
            input, lifespan, ..
        } => {
            if let Some(l) = lifespan {
                lifespan_expr_relations(l, acc);
            }
            collect_window(input, bound, acc);
        }
        Expr::SelectWhen { input, .. }
        | Expr::Project { input, .. }
        | Expr::TimeSliceDynamic { input, .. } => collect_window(input, bound, acc),
        Expr::Union(a, b)
        | Expr::Intersection(a, b)
        | Expr::Difference(a, b)
        | Expr::UnionO(a, b)
        | Expr::IntersectionO(a, b)
        | Expr::DifferenceO(a, b) => {
            collect_window(a, bound, acc);
            collect_window(b, bound, acc);
        }
        Expr::Product(a, b) | Expr::NaturalJoin(a, b) => {
            collect_window(a, None, acc);
            collect_window(b, None, acc);
        }
        Expr::TimeJoin { left, right, .. } | Expr::ThetaJoin { left, right, .. } => {
            collect_window(left, None, acc);
            collect_window(right, None, acc);
        }
    }
}

/// Relations referenced from a lifespan expression (`Ω(e)` and friends)
/// are evaluated over the full source, never through a bounding `τ` —
/// any such reference makes the window unusable.
fn lifespan_expr_relations(l: &LifespanExpr, acc: &mut Option<Lifespan>) {
    match l {
        LifespanExpr::Literal(_) => {}
        LifespanExpr::When(e) => collect_window(e, None, acc),
        LifespanExpr::Union(a, b) | LifespanExpr::Intersect(a, b) | LifespanExpr::Minus(a, b) => {
            lifespan_expr_relations(a, acc);
            lifespan_expr_relations(b, acc);
        }
    }
}

/// Plans `expr` under an optional **lifespan bound**: a window `B` such
/// that base tuples whose lifespan is disjoint from `B` cannot affect the
/// result of the *bounded* expression (there is a literal TIME-SLICE above
/// that drops their whole contribution).
///
/// The bound is introduced at `τ_L` with a literal `L` and propagated down
/// through exactly the operators where pruning is sound — the per-tuple,
/// lifespan-non-increasing unaries (σWHEN, σIF, π, τ, τ@A) and all six set
/// operators, whose outputs derive from single input tuples (or key-merged
/// groups) without ever growing a lifespan beyond its generators. It is
/// cut at products and joins, whose output rows combine both sides.
///
/// A bounded base-relation scan becomes a [`AccessPath::LifespanIndex`]
/// scan, which a partitioned source serves by **partition pruning**: only
/// partitions whose min/max summary overlaps `B` are touched. Like every
/// access path, this yields candidates only — the timeslice above
/// re-applies exact semantics, so planned ≡ unplanned holds (asserted by
/// the differential suite).
fn plan_bounded(expr: &Expr, src: &dyn IndexSource, bound: Option<&Lifespan>) -> Plan {
    match expr {
        Expr::Relation(name) => {
            let access = match (bound, base_with_indexes(expr, src)) {
                (Some(b), Some(_)) => AccessPath::LifespanIndex {
                    window: b.clone(),
                    pruning: src
                        .partitions(name)
                        .map(|parts| parts.pruning_counts(b))
                        .map(|(scanned, total)| PartitionPruning { scanned, total }),
                },
                _ => AccessPath::SeqScan,
            };
            Plan::Scan {
                relation: name.clone(),
                access,
            }
        }

        // τ_L with a literal L introduces (or narrows) the bound.
        Expr::TimeSlice {
            input,
            lifespan: lifespan @ LifespanExpr::Literal(window),
        } => {
            let narrowed = match bound {
                Some(b) => window.intersect(b),
                None => window.clone(),
            };
            Plan::Unary {
                op: UnaryOp::TimeSlice(lifespan.clone()),
                input: Box::new(plan_bounded(input, src, Some(&narrowed))),
            }
        }
        // A computed window (e.g. `WHEN(…)`) is unknown at plan time; the
        // slice itself is still per-tuple non-increasing, so an outer
        // bound keeps flowing through it.
        Expr::TimeSlice { input, lifespan } => Plan::Unary {
            op: UnaryOp::TimeSlice(lifespan.clone()),
            input: Box::new(plan_bounded(input, src, bound)),
        },

        // σWHEN(θ)(R) with θ pinning R's full key: probe the key index.
        // Safe because a tuple with a different (constant) key value has an
        // empty truth span for θ and would be dropped by σWHEN anyway.
        Expr::SelectWhen { input, predicate } => {
            let scan = key_probe_scan(input, predicate, src);
            Plan::Unary {
                op: UnaryOp::SelectWhen(predicate.clone()),
                input: Box::new(scan.unwrap_or_else(|| plan_bounded(input, src, bound))),
            }
        }

        // σIF(θ, EXISTS, L)(R) likewise. FORALL is *not* key-index
        // eligible: its quantification domain can be empty, in which case
        // the tuple is selected vacuously — even with a non-matching key.
        // A lifespan bound is sound for both quantifiers, though: σIF
        // passes tuples through whole, so a pruned-out tuple's selection
        // dies at the bounding τ either way.
        Expr::SelectIf {
            input,
            predicate,
            quantifier,
            lifespan,
        } => {
            let scan = if *quantifier == Quantifier::Exists {
                key_probe_scan(input, predicate, src)
            } else {
                None
            };
            Plan::Unary {
                op: UnaryOp::SelectIf {
                    predicate: predicate.clone(),
                    quantifier: *quantifier,
                    lifespan: lifespan.clone(),
                },
                input: Box::new(scan.unwrap_or_else(|| plan_bounded(input, src, bound))),
            }
        }

        // NATURAL-JOIN with a keyed base relation on the right whose key
        // attributes are all shared: index nested-loop join.
        Expr::NaturalJoin(left, right) => {
            if let Some(right_name) = natural_probe_side(left, right, src) {
                Plan::IndexedNaturalJoin {
                    left: Box::new(plan_bounded(left, src, None)),
                    right: right_name.to_string(),
                }
            } else {
                Plan::Binary {
                    op: BinaryOp::NaturalJoin,
                    left: Box::new(plan_bounded(left, src, None)),
                    right: Box::new(plan_bounded(right, src, None)),
                }
            }
        }

        // TIME-JOIN with an indexed base relation on the right: probe its
        // lifespan index with `t1.l ∩ image(t1(A))` per left tuple. On a
        // partitioned source the probe itself prunes partitions at run
        // time (the probe window is per-tuple, so there is no plan-time
        // k/N to report).
        Expr::TimeJoin { left, right, attr } => {
            if let Some(right_name) = base_with_indexes(right, src) {
                Plan::IndexedTimeJoin {
                    left: Box::new(plan_bounded(left, src, None)),
                    right: right_name.to_string(),
                    attr: attr.clone(),
                }
            } else {
                Plan::TimeJoin {
                    left: Box::new(plan_bounded(left, src, None)),
                    right: Box::new(plan_bounded(right, src, None)),
                    attr: attr.clone(),
                }
            }
        }

        Expr::Project { input, attrs } => Plan::Unary {
            op: UnaryOp::Project(attrs.clone()),
            input: Box::new(plan_bounded(input, src, bound)),
        },
        Expr::TimeSliceDynamic { input, attr } => Plan::Unary {
            op: UnaryOp::TimeSliceDynamic(attr.clone()),
            input: Box::new(plan_bounded(input, src, bound)),
        },
        Expr::Union(a, b) => binary(BinaryOp::Union, a, b, src, bound),
        Expr::Intersection(a, b) => binary(BinaryOp::Intersection, a, b, src, bound),
        Expr::Difference(a, b) => binary(BinaryOp::Difference, a, b, src, bound),
        Expr::UnionO(a, b) => binary(BinaryOp::UnionO, a, b, src, bound),
        Expr::IntersectionO(a, b) => binary(BinaryOp::IntersectionO, a, b, src, bound),
        Expr::DifferenceO(a, b) => binary(BinaryOp::DifferenceO, a, b, src, bound),
        Expr::Product(a, b) => binary(BinaryOp::Product, a, b, src, None),
        Expr::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => Plan::ThetaJoin {
            left: Box::new(plan_bounded(left, src, None)),
            right: Box::new(plan_bounded(right, src, None)),
            a: a.clone(),
            op: *op,
            b: b.clone(),
        },
    }
}

fn binary(
    op: BinaryOp,
    a: &Expr,
    b: &Expr,
    src: &dyn IndexSource,
    bound: Option<&Lifespan>,
) -> Plan {
    Plan::Binary {
        op,
        left: Box::new(plan_bounded(a, src, bound)),
        right: Box::new(plan_bounded(b, src, bound)),
    }
}

/// Is `e` a bare base relation that currently has indexes?
fn base_with_indexes<'e>(e: &'e Expr, src: &dyn IndexSource) -> Option<&'e str> {
    match e {
        Expr::Relation(name) if src.indexes(name).is_some() => Some(name),
        _ => None,
    }
}

/// A key-index scan for `input` when it is an indexed base relation and
/// `predicate` pins its full key with equality conjuncts.
fn key_probe_scan(input: &Expr, predicate: &Predicate, src: &dyn IndexSource) -> Option<Plan> {
    let name = base_with_indexes(input, src)?;
    src.indexes(name)?.key()?;
    let scheme = src.relation(name)?.scheme();
    let key_attrs: Vec<Attribute> = scheme.key().to_vec();
    if key_attrs.is_empty() {
        return None;
    }
    let mut bindings: Vec<(Attribute, Value)> = Vec::new();
    collect_equality_conjuncts(predicate, &mut bindings);
    // Each binding must match the key attribute's declared kind exactly:
    // the hash lookup uses structural Value equality, while predicate
    // semantics compare Int and Float numerically — probing an Int key
    // with a Float literal would silently miss matching tuples.
    let key: Option<Vec<Value>> = key_attrs
        .iter()
        .map(|k| {
            let kind = scheme.dom(k).ok()?.kind();
            bindings
                .iter()
                .find(|(a, v)| a == k && v.kind() == kind)
                .map(|(_, v)| v.clone())
        })
        .collect();
    Some(Plan::Scan {
        relation: name.to_string(),
        access: AccessPath::KeyIndex {
            attrs: key_attrs,
            key: key?,
        },
    })
}

/// Collects `A = const` bindings from the top-level conjunction of `p`.
/// Disjunctions and negations contribute nothing (pruning through them
/// would be unsound).
fn collect_equality_conjuncts(p: &Predicate, out: &mut Vec<(Attribute, Value)>) {
    match p {
        Predicate::And(a, b) => {
            collect_equality_conjuncts(a, out);
            collect_equality_conjuncts(b, out);
        }
        Predicate::Cmp {
            left: Operand::Attr(a),
            op: Comparator::Eq,
            right: Operand::Const(v),
        }
        | Predicate::Cmp {
            left: Operand::Const(v),
            op: Comparator::Eq,
            right: Operand::Attr(a),
        } => out.push((a.clone(), v.clone())),
        _ => {}
    }
}

/// For `left NATJOIN right`: the right relation's name when both sides are
/// base relations and the right side's key index can drive the probe (its
/// key attributes are all common attributes).
fn natural_probe_side<'e>(left: &Expr, right: &'e Expr, src: &dyn IndexSource) -> Option<&'e str> {
    let left_name = match left {
        Expr::Relation(n) => n,
        _ => return None,
    };
    let right_name = base_with_indexes(right, src)?;
    let key_idx = src.indexes(right_name)?.key()?;
    let left_scheme = src.relation(left_name)?.scheme();
    let right_scheme = src.relation(right_name)?.scheme();
    // Probe keys come from left-tuple values and are matched by structural
    // equality in the hash map, so the shared attributes must have the
    // same declared kind on both sides (Int-vs-Float would compare equal
    // semantically but miss in the map).
    let all_key_attrs_common =
        key_idx
            .attrs()
            .iter()
            .all(|a| match (left_scheme.dom(a), right_scheme.dom(a)) {
                (Ok(l), Ok(r)) => l.kind() == r.kind(),
                _ => false,
            });
    if all_key_attrs_common && !key_idx.attrs().is_empty() {
        Some(right_name)
    } else {
        None
    }
}

/// Evaluates a plan. Behaviour is exactly [`crate::eval::eval_expr`] on the
/// corresponding expression; indexes only prune candidates.
///
/// Every node evaluates inside an [`hrdm_obs::Span`], so running a plan
/// under [`hrdm_obs::with_trace`] yields a trace tree mirroring the plan
/// shape (one node per operator, inclusive wall time, output rows) —
/// that is what `EXPLAIN ANALYZE` renders. Outside a trace the span is
/// one thread-local read per *operator* (not per tuple).
pub fn eval_plan(p: &Plan, src: &dyn IndexSource) -> Result<Relation> {
    let span = hrdm_obs::Span::enter(span_name(p));
    let r = eval_plan_inner(p, src)?;
    span.record_rows(r.len() as u64);
    Ok(r)
}

/// The span label for a plan node (labels identify the operator kind;
/// the trace tree's *shape* is what ties a span back to its node).
fn span_name(p: &Plan) -> &'static str {
    match p {
        Plan::Scan { .. } => "scan",
        Plan::Unary { op, .. } => match op {
            UnaryOp::Project(_) => "project",
            UnaryOp::SelectIf { .. } => "select-if",
            UnaryOp::SelectWhen(_) => "select-when",
            UnaryOp::TimeSlice(_) => "timeslice",
            UnaryOp::TimeSliceDynamic(_) => "timeslice-dynamic",
        },
        Plan::Binary { op, .. } => match op {
            BinaryOp::Union => "union",
            BinaryOp::Intersection => "intersection",
            BinaryOp::Difference => "difference",
            BinaryOp::UnionO => "union-o",
            BinaryOp::IntersectionO => "intersection-o",
            BinaryOp::DifferenceO => "difference-o",
            BinaryOp::Product => "product",
            BinaryOp::NaturalJoin => "natural-join",
        },
        Plan::IndexedNaturalJoin { .. } => "natural-join-indexed",
        Plan::IndexedTimeJoin { .. } => "time-join-indexed",
        Plan::ThetaJoin { .. } => "theta-join",
        Plan::TimeJoin { .. } => "time-join",
    }
}

/// The engine-wide access-path counters, registered once in the global
/// observability registry.
struct ScanObs {
    seq_scans: std::sync::Arc<hrdm_obs::Counter>,
    index_scans: std::sync::Arc<hrdm_obs::Counter>,
    partitions_probed: std::sync::Arc<hrdm_obs::Counter>,
    partitions_pruned: std::sync::Arc<hrdm_obs::Counter>,
}

fn scan_obs() -> &'static ScanObs {
    static OBS: std::sync::OnceLock<ScanObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let r = hrdm_obs::global();
        ScanObs {
            seq_scans: r.counter(
                "hrdm_query_seq_scans_total",
                "Base-relation scans served by reading every tuple",
            ),
            index_scans: r.counter(
                "hrdm_query_index_scans_total",
                "Base-relation scans served through a key or lifespan index",
            ),
            partitions_probed: r.counter(
                "hrdm_query_partitions_probed_total",
                "Partitions whose summary overlapped a bounded scan's window",
            ),
            partitions_pruned: r.counter(
                "hrdm_query_partitions_pruned_total",
                "Partitions skipped by bounded scans without being touched",
            ),
        }
    })
}

/// Feeds one scan's access path into the global counters (observational
/// only — gated by the `HRDM_OBS_OFF` kill switch).
pub(crate) fn record_scan_access(access: &AccessPath) {
    if !hrdm_obs::enabled() {
        return;
    }
    let obs = scan_obs();
    match access {
        AccessPath::SeqScan => obs.seq_scans.inc(),
        AccessPath::LifespanIndex { pruning, .. } => {
            obs.index_scans.inc();
            if let Some(p) = pruning {
                obs.partitions_probed.add(p.scanned as u64);
                obs.partitions_pruned.add(p.pruned() as u64);
            }
        }
        AccessPath::KeyIndex { .. } => obs.index_scans.inc(),
    }
}

fn eval_plan_inner(p: &Plan, src: &dyn IndexSource) -> Result<Relation> {
    match p {
        Plan::Scan { relation, access } => eval_scan(relation, access, src),
        Plan::Unary { op, input } => {
            let r = eval_plan(input, src)?;
            match op {
                UnaryOp::Project(attrs) => project(&r, attrs),
                UnaryOp::SelectIf {
                    predicate,
                    quantifier,
                    lifespan,
                } => {
                    let bound = match lifespan {
                        Some(l) => Some(eval_lifespan(l, src)?),
                        None => None,
                    };
                    select_if(&r, predicate, *quantifier, bound.as_ref())
                }
                UnaryOp::SelectWhen(predicate) => select_when(&r, predicate),
                UnaryOp::TimeSlice(lifespan) => {
                    let l = eval_lifespan(lifespan, src)?;
                    Ok(timeslice(&r, &l))
                }
                UnaryOp::TimeSliceDynamic(attr) => timeslice_dynamic(&r, attr),
            }
        }
        Plan::Binary { op, left, right } => {
            let a = eval_plan(left, src)?;
            let b = eval_plan(right, src)?;
            match op {
                BinaryOp::Union => union(&a, &b),
                BinaryOp::Intersection => intersection(&a, &b),
                BinaryOp::Difference => difference(&a, &b),
                BinaryOp::UnionO => union_o(&a, &b),
                BinaryOp::IntersectionO => intersection_o(&a, &b),
                BinaryOp::DifferenceO => difference_o(&a, &b),
                BinaryOp::Product => cartesian_product(&a, &b),
                BinaryOp::NaturalJoin => natural_join(&a, &b),
            }
        }
        Plan::IndexedNaturalJoin { left, right } => {
            let a = eval_plan(left, src)?;
            let b = src
                .relation(right)
                .ok_or_else(|| HrdmError::UnknownRelation(right.clone()))?;
            match src.indexes(right).and_then(RelationIndexes::key) {
                Some(key_idx) => indexed_natural_join(&a, b, key_idx),
                None => natural_join(&a, b), // index dropped since planning
            }
        }
        Plan::IndexedTimeJoin { left, right, attr } => {
            let a = eval_plan(left, src)?;
            let b = src
                .relation(right)
                .ok_or_else(|| HrdmError::UnknownRelation(right.clone()))?;
            match src.indexes(right) {
                Some(idx) => indexed_time_join(&a, b, attr, idx, valid_partitions(src, right, b)),
                None => time_join(&a, b, attr),
            }
        }
        Plan::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => {
            let l = eval_plan(left, src)?;
            let r = eval_plan(right, src)?;
            theta_join(&l, &r, a, *op, b)
        }
        Plan::TimeJoin { left, right, attr } => {
            let l = eval_plan(left, src)?;
            let r = eval_plan(right, src)?;
            time_join(&l, &r, attr)
        }
    }
}

fn eval_scan(name: &str, access: &AccessPath, src: &dyn IndexSource) -> Result<Relation> {
    record_scan_access(access);
    let r = src
        .relation(name)
        .ok_or_else(|| HrdmError::UnknownRelation(name.to_string()))?;
    match (access, src.indexes(name)) {
        (AccessPath::SeqScan, _) | (_, None) => Ok(r.clone()),
        (AccessPath::LifespanIndex { window, .. }, Some(idx)) => {
            // Partition-pruned when the source keeps a (current) partition
            // map: skip partitions whose summary misses the window, take
            // fully-covered partitions whole, probe the rest through
            // their own small indexes.
            match valid_partitions(src, name, r) {
                Some(parts) => Ok(r.subset_at_positions(&parts.prune_positions(window))),
                None => Ok(r.subset_at_positions(&idx.lifespan().overlapping(window))),
            }
        }
        (AccessPath::KeyIndex { key, .. }, Some(idx)) => match idx.key() {
            Some(key_idx) => Ok(r.subset_at_positions(key_idx.lookup(key))),
            None => Ok(r.clone()),
        },
    }
}

/// `src`'s partition map for `name`, but only when its positions are
/// current against `r` — a stale map (out-of-band mutation) degrades to
/// the relation-wide index, never to wrong positions.
pub(crate) fn valid_partitions<'s>(
    src: &'s dyn IndexSource,
    name: &str,
    r: &Relation,
) -> Option<&'s PartitionMap> {
    src.partitions(name).filter(|p| p.tuple_count() == r.len())
}

/// Index nested-loop NATURAL-JOIN: per left tuple, probe the right key
/// index where possible; fall back to scanning the right side for left
/// tuples without a constant probe key. Exact per-pair semantics come from
/// [`natural_join_pair`].
pub(crate) fn indexed_natural_join(
    left: &Relation,
    right: &Relation,
    key_idx: &hrdm_index::KeyIndex,
) -> Result<Relation> {
    let common: Vec<Attribute> = left
        .scheme()
        .attr_names()
        .filter(|a| right.scheme().contains(a))
        .cloned()
        .collect();
    let scheme = left.scheme().natural_concat(right.scheme())?;
    let mut out: Vec<Tuple> = Vec::new();
    for t1 in left.iter() {
        match key_idx.probe_key_of(t1) {
            Some(key) => {
                for &pos in key_idx.lookup(&key) {
                    if let Some(t2) = right.tuple_at(pos) {
                        if let Some(j) = natural_join_pair(t1, t2, &common)? {
                            out.push(j);
                        }
                    }
                }
            }
            // No constant probe key on the left tuple (e.g. an empty or
            // time-varying shared attribute): check every right tuple.
            None => {
                for t2 in right.iter() {
                    if let Some(j) = natural_join_pair(t1, t2, &common)? {
                        out.push(j);
                    }
                }
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// Index nested-loop TIME-JOIN: per left tuple, probe the right lifespan
/// index with `t1.l ∩ image(t1(A))`. On a partitioned right side the
/// probe prunes at partition granularity first (run-time partition
/// pruning — each probe window is per-tuple). Exact per-pair semantics
/// come from [`time_join_pair`].
pub(crate) fn indexed_time_join(
    left: &Relation,
    right: &Relation,
    attr: &Attribute,
    idx: &RelationIndexes,
    parts: Option<&PartitionMap>,
) -> Result<Relation> {
    let dom = left.scheme().dom(attr)?;
    if !dom.is_time_valued() {
        return Err(HrdmError::NotTimeValued(attr.clone()));
    }
    let scheme = left.scheme().disjoint_concat(right.scheme())?;
    let mut out: Vec<Tuple> = Vec::new();
    for t1 in left.iter() {
        let image = match t1.value(attr) {
            Some(tv) => tv.image_lifespan()?,
            None => Lifespan::empty(),
        };
        if image.is_empty() {
            continue;
        }
        let probe = t1.lifespan().intersect(&image);
        let candidates = match parts {
            Some(parts) => parts.prune_positions(&probe),
            None => idx.lifespan().overlapping(&probe),
        };
        for pos in candidates {
            if let Some(t2) = right.tuple_at(pos) {
                if let Some(j) = time_join_pair(t1, t2, &image) {
                    out.push(j);
                }
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// Optimizes, plans, and evaluates a top-level query against an indexed
/// source. Relation-sorted queries go through access-path selection;
/// lifespan- and aggregate-sorted queries evaluate their relational
/// subexpressions through the plain evaluator.
pub fn evaluate_planned(
    q: &crate::ast::Query,
    src: &dyn IndexSource,
) -> Result<crate::eval::QueryResult> {
    match q {
        crate::ast::Query::Relation(e) => {
            let (optimized, _) = crate::optimizer::optimize(e);
            let p = plan(&optimized, src);
            Ok(crate::eval::QueryResult::Relation(eval_plan(&p, src)?))
        }
        other => {
            #[allow(deprecated)] // non-relation sorts have no physical plan
            crate::eval::evaluate(other, src)
        }
    }
}

/// The full EXPLAIN for an expression: the optimizer's before/after trees
/// and rewrite trace, followed by the physical plan with access paths.
pub fn explain_with_access(e: &Expr, src: &dyn IndexSource) -> String {
    let (optimized, trace) = crate::optimizer::optimize(e);
    let p = plan(&optimized, src);
    let mut out = crate::explain::explain_optimized(e, &optimized, &trace);
    out.push_str("== access paths ==\n");
    out.push_str(&crate::exec::explain_stream_plan(
        &p,
        src,
        &crate::exec::ExecOptions::default(),
    ));
    out
}

/// Renders a plan as an indented tree, one line per node, with the chosen
/// access path on every scan.
pub fn explain_plan(p: &Plan) -> String {
    let mut out = String::new();
    walk(p, None, 0, &mut out);
    out
}

/// Renders a plan annotated with a trace tree from an actual run (as
/// produced by [`eval_plan`] under [`hrdm_obs::with_trace`]): every
/// operator line gains `(actual time=…, rows=…)`, and bounded scans
/// keep their plan-time `partitions: k/N pruned` counts. The trace
/// mirrors the plan shape by construction; if it doesn't (observability
/// disabled), the un-annotated plan renders instead.
pub fn explain_plan_analyzed(p: &Plan, trace: Option<&hrdm_obs::TraceNode>) -> String {
    let mut out = String::new();
    walk(p, trace, 0, &mut out);
    out
}

/// Renders nanoseconds at a human scale (`870ns`, `12.4µs`, `3.10ms`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{:.2}ms", ns as f64 / 1e6)
    }
}

fn annotation(trace: Option<&hrdm_obs::TraceNode>) -> String {
    match trace {
        Some(t) => {
            let rows = t
                .rows
                .map(|r| r.to_string())
                .unwrap_or_else(|| "?".to_string());
            format!(" (actual time={}, rows={rows})", fmt_ns(t.wall_ns))
        }
        None => String::new(),
    }
}

/// The one-line EXPLAIN label of a single plan node (no indentation, no
/// annotation). Shared between the plan renderer ([`explain_plan`]) and the
/// streaming-executor renderer ([`crate::exec`]), so EXPLAIN output stays
/// byte-identical whichever tree produced it.
pub(crate) fn node_label(p: &Plan) -> String {
    match p {
        Plan::Scan { relation, access } => format!("Scan {relation} [{access}]"),
        Plan::Unary { op, .. } => unary_label(op),
        Plan::Binary { op, .. } => format!("{op:?}"),
        Plan::IndexedNaturalJoin { .. } => "NaturalJoin (index nested loop)".to_string(),
        Plan::IndexedTimeJoin { attr, .. } => format!("TimeJoin @{attr} (index nested loop)"),
        Plan::ThetaJoin { a, op, b, .. } => format!("ThetaJoin {a} {op} {b}"),
        Plan::TimeJoin { attr, .. } => format!("TimeJoin @{attr}"),
    }
}

/// The EXPLAIN label of a unary operator.
pub(crate) fn unary_label(op: &UnaryOp) -> String {
    match op {
        UnaryOp::Project(attrs) => {
            let names: Vec<&str> = attrs.iter().map(|a| a.name()).collect();
            format!("Project [{}]", names.join(", "))
        }
        UnaryOp::SelectIf {
            predicate,
            quantifier,
            ..
        } => format!("Select-If {predicate} ({quantifier})"),
        UnaryOp::SelectWhen(predicate) => format!("Select-When {predicate}"),
        UnaryOp::TimeSlice(l) => format!("TimeSlice {l}"),
        UnaryOp::TimeSliceDynamic(attr) => format!("TimeSlice @{attr}"),
    }
}

/// The synthetic probe pseudo-child line of the index nested-loop joins
/// (they have no plan child for the probe side).
pub(crate) fn probe_line(p: &Plan) -> Option<String> {
    match p {
        Plan::IndexedNaturalJoin { right, .. } => {
            Some(format!("Probe {right} [IndexScan(key, from left tuple)]"))
        }
        Plan::IndexedTimeJoin { right, attr, .. } => Some(format!(
            "Probe {right} [IndexScan(lifespan, t.l ∩ image(t({attr})))]"
        )),
        _ => None,
    }
}

fn walk(p: &Plan, trace: Option<&hrdm_obs::TraceNode>, depth: usize, out: &mut String) {
    use std::fmt::Write;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let annot = annotation(trace);
    let child = |i: usize| trace.and_then(|t| t.children.get(i));
    let _ = writeln!(out, "{}{annot}", node_label(p));
    match p {
        Plan::Scan { .. } => {}
        Plan::Unary { input, .. } => walk(input, child(0), depth + 1, out),
        Plan::Binary { left, right, .. }
        | Plan::ThetaJoin { left, right, .. }
        | Plan::TimeJoin { left, right, .. } => {
            walk(left, child(0), depth + 1, out);
            walk(right, child(1), depth + 1, out);
        }
        Plan::IndexedNaturalJoin { left, .. } | Plan::IndexedTimeJoin { left, .. } => {
            walk(left, child(0), depth + 1, out);
        }
    }
    if let Some(probe) = probe_line(p) {
        for _ in 0..depth + 1 {
            out.push_str("  ");
        }
        let _ = writeln!(out, "{probe}");
    }
}
