//! Evaluation of algebra expressions against a source of named relations.

use crate::ast::{Expr, LifespanExpr, Query};
use hrdm_core::algebra::{
    cartesian_product, difference, difference_o, intersection, intersection_o, natural_join,
    project, select_if, select_when, theta_join, time_join, timeslice, timeslice_dynamic, union,
    union_o, when,
};
use hrdm_core::{HrdmError, Relation, Result};
use hrdm_time::Lifespan;

/// Anything that can resolve relation names — a database, a test map, …
pub trait RelationSource {
    /// The relation bound to `name`, if any.
    fn relation(&self, name: &str) -> Option<&Relation>;
}

impl RelationSource for hrdm_storage::Database {
    fn relation(&self, name: &str) -> Option<&Relation> {
        hrdm_storage::Database::relation(self, name)
    }
}

/// A snapshot is the preferred query target under concurrency: the whole
/// pipeline (optimize → plan → evaluate) runs against one immutable state,
/// with zero locks and unaffected by concurrent writers.
impl RelationSource for hrdm_storage::DbSnapshot {
    fn relation(&self, name: &str) -> Option<&Relation> {
        hrdm_storage::DbSnapshot::relation(self, name)
    }
}

impl RelationSource for std::collections::BTreeMap<String, Relation> {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

impl RelationSource for std::collections::HashMap<String, Relation> {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

/// The result of a query: one of the algebra's sorts (plus the aggregate
/// extension's time-varying values).
#[derive(Clone, PartialEq, Debug)]
pub enum QueryResult {
    /// A historical relation.
    Relation(Relation),
    /// A lifespan.
    Lifespan(Lifespan),
    /// A time-varying value (aggregate extension).
    Function(hrdm_core::TemporalValue),
}

/// Evaluates a top-level query by materializing every intermediate
/// relation.
#[deprecated(
    since = "0.1.0",
    note = "use the streaming executor API instead: `stream_query_on_snapshot` \
            (or `run_query_on_snapshot` to collect) runs the same algebra \
            through bounded batches with per-batch caps and cancellation"
)]
#[allow(deprecated)]
pub fn evaluate(q: &Query, src: &dyn RelationSource) -> Result<QueryResult> {
    match q {
        Query::Relation(e) => Ok(QueryResult::Relation(eval_expr(e, src)?)),
        Query::Lifespan(l) => Ok(QueryResult::Lifespan(eval_lifespan(l, src)?)),
        Query::Aggregate { op, attr, input } => {
            let r = eval_expr(input, src)?;
            Ok(QueryResult::Function(
                hrdm_core::algebra::aggregate_over_time(&r, attr, *op)?,
            ))
        }
    }
}

/// Evaluates a relation-sorted expression, materializing every
/// intermediate relation.
#[deprecated(
    since = "0.1.0",
    note = "use the streaming executor API instead: plan the expression and \
            drive `crate::exec::build_executor`'s tree (or call \
            `stream_query_on_snapshot`) for bounded-memory, cancellable \
            evaluation"
)]
#[allow(deprecated)]
pub fn eval_expr(e: &Expr, src: &dyn RelationSource) -> Result<Relation> {
    match e {
        Expr::Relation(name) => src
            .relation(name)
            .cloned()
            .ok_or_else(|| HrdmError::UnknownRelation(name.clone())),
        Expr::Union(a, b) => union(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::Intersection(a, b) => intersection(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::Difference(a, b) => difference(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::UnionO(a, b) => union_o(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::IntersectionO(a, b) => intersection_o(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::DifferenceO(a, b) => difference_o(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::Product(a, b) => cartesian_product(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::Project { input, attrs } => project(&eval_expr(input, src)?, attrs),
        Expr::SelectIf {
            input,
            predicate,
            quantifier,
            lifespan,
        } => {
            let r = eval_expr(input, src)?;
            let bound = match lifespan {
                Some(l) => Some(eval_lifespan(l, src)?),
                None => None,
            };
            select_if(&r, predicate, *quantifier, bound.as_ref())
        }
        Expr::SelectWhen { input, predicate } => select_when(&eval_expr(input, src)?, predicate),
        Expr::TimeSlice { input, lifespan } => {
            let l = eval_lifespan(lifespan, src)?;
            Ok(timeslice(&eval_expr(input, src)?, &l))
        }
        Expr::TimeSliceDynamic { input, attr } => timeslice_dynamic(&eval_expr(input, src)?, attr),
        Expr::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => theta_join(&eval_expr(left, src)?, &eval_expr(right, src)?, a, *op, b),
        Expr::NaturalJoin(a, b) => natural_join(&eval_expr(a, src)?, &eval_expr(b, src)?),
        Expr::TimeJoin { left, right, attr } => {
            time_join(&eval_expr(left, src)?, &eval_expr(right, src)?, attr)
        }
    }
}

/// Evaluates a lifespan-sorted expression. Lifespans are scalar-sized, so
/// this is not deprecated — the streaming executor itself uses it to
/// resolve lifespan parameters at `open`.
#[allow(deprecated)] // WHEN embeds a relation expression.
pub fn eval_lifespan(l: &LifespanExpr, src: &dyn RelationSource) -> Result<Lifespan> {
    match l {
        LifespanExpr::Literal(ls) => Ok(ls.clone()),
        LifespanExpr::When(e) => Ok(when(&eval_expr(e, src)?)),
        LifespanExpr::Union(a, b) => Ok(eval_lifespan(a, src)?.union(&eval_lifespan(b, src)?)),
        LifespanExpr::Intersect(a, b) => {
            Ok(eval_lifespan(a, src)?.intersect(&eval_lifespan(b, src)?))
        }
        LifespanExpr::Minus(a, b) => Ok(eval_lifespan(a, src)?.difference(&eval_lifespan(b, src)?)),
    }
}

#[cfg(test)]
#[allow(deprecated)] // the materialized entry points stay covered until removal
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};
    use hrdm_core::{HistoricalDomain, Scheme, TemporalValue, Tuple, Value, ValueKind};
    use std::collections::BTreeMap;

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn dept_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("DNAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "BUDGET",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn source() -> BTreeMap<String, Relation> {
        let mut emp = Relation::new(emp_scheme());
        let add = |r: &mut Relation,
                   name: &str,
                   spans: &[(i64, i64)],
                   sal: &[(i64, i64, i64)],
                   dept: &str| {
            let life = Lifespan::of(spans);
            let t = Tuple::builder(life.clone())
                .constant("NAME", name)
                .value(
                    "SALARY",
                    TemporalValue::of(
                        &sal.iter()
                            .map(|&(a, b, v)| (a, b, Value::Int(v)))
                            .collect::<Vec<_>>(),
                    ),
                )
                .value("DEPT", TemporalValue::constant(&life, Value::str(dept)))
                .finish(&emp_scheme())
                .unwrap();
            r.insert(t).unwrap();
        };
        add(
            &mut emp,
            "John",
            &[(0, 19)],
            &[(0, 9, 25_000), (10, 19, 30_000)],
            "Toys",
        );
        add(&mut emp, "Mary", &[(5, 30)], &[(5, 30, 30_000)], "Shoes");

        let mut dept = Relation::new(dept_scheme());
        let toys_life = Lifespan::interval(0, 40);
        dept.insert(
            Tuple::builder(toys_life.clone())
                .constant("DNAME", "Toys")
                .value(
                    "BUDGET",
                    TemporalValue::constant(&toys_life, Value::Int(100_000)),
                )
                .finish(&dept_scheme())
                .unwrap(),
        )
        .unwrap();

        let mut m = BTreeMap::new();
        m.insert("emp".to_string(), emp);
        m.insert("dept".to_string(), dept);
        m
    }

    fn run(src_text: &str) -> QueryResult {
        let q = parse_query(src_text).unwrap();
        evaluate(&q, &source()).unwrap()
    }

    #[test]
    fn evaluates_named_relation() {
        match run("emp") {
            QueryResult::Relation(r) => assert_eq!(r.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_relation_errors() {
        let q = parse_query("ghost").unwrap();
        assert!(evaluate(&q, &source()).is_err());
    }

    #[test]
    fn the_papers_flagship_query() {
        // σ-WHEN(Name=John ∧ Salary=30K)(emp): one tuple, lifespan [10,19].
        match run("SELECT-WHEN (NAME = \"John\" AND SALARY = 30000) (emp)") {
            QueryResult::Relation(r) => {
                assert_eq!(r.len(), 1);
                assert_eq!(r.tuples()[0].lifespan(), &Lifespan::interval(10, 19));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn when_query_returns_lifespan() {
        match run("WHEN (SELECT-WHEN (SALARY = 30000) (emp))") {
            QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(5, 30)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timeslice_with_when_parameter() {
        // Slice everyone to the era when Mary existed.
        match run("TIMESLICE (WHEN (SELECT-IF (NAME = \"Mary\", EXISTS) (emp))) (emp)") {
            QueryResult::Relation(r) => {
                assert_eq!(r.lifespan(), Lifespan::interval(5, 30));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_through_the_language() {
        match run("emp JOIN dept ON DEPT = DNAME") {
            QueryResult::Relation(r) => {
                assert_eq!(r.len(), 1); // only John is in Toys
                assert_eq!(r.tuples()[0].lifespan(), &Lifespan::interval(0, 19));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lifespan_algebra_queries() {
        match run("[0..10] & [5..20]") {
            QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(5, 10)),
            other => panic!("unexpected {other:?}"),
        }
        match run("WHEN (emp) - [0..9]") {
            QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(10, 30)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_queries_produce_time_varying_values() {
        let q = parse_query("COUNT SALARY (emp)").unwrap();
        match evaluate(&q, &source()).unwrap() {
            QueryResult::Function(f) => {
                use hrdm_time::Chronon;
                assert_eq!(f.at(Chronon::new(2)), Some(&Value::Int(1)));
                assert_eq!(f.at(Chronon::new(7)), Some(&Value::Int(2)));
                assert_eq!(f.at(Chronon::new(25)), Some(&Value::Int(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Aggregates compose with the algebra underneath.
        let q = parse_query("SUM SALARY (SELECT-WHEN (SALARY = 30000) (emp))").unwrap();
        match evaluate(&q, &source()).unwrap() {
            QueryResult::Function(f) => {
                use hrdm_time::Chronon;
                assert_eq!(f.at(Chronon::new(12)), Some(&Value::Int(60_000)));
                assert_eq!(f.at(Chronon::new(25)), Some(&Value::Int(30_000)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-numeric SUM is a type error.
        let q = parse_query("SUM NAME (emp)").unwrap();
        assert!(evaluate(&q, &source()).is_err());
        // AVG renders as float.
        let q = parse_query("AVG SALARY (emp)").unwrap();
        match evaluate(&q, &source()).unwrap() {
            QueryResult::Function(f) => {
                use hrdm_time::Chronon;
                assert_eq!(
                    f.at(Chronon::new(7)),
                    Some(&Value::float(27_500.0).unwrap())
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eval_matches_direct_algebra() {
        let e = parse_expr("PROJECT [NAME] (SELECT-IF (SALARY >= 30000, EXISTS) (emp))").unwrap();
        let via_lang = eval_expr(&e, &source()).unwrap();
        let direct = {
            let src = source();
            let emp = src.get("emp").unwrap();
            let picked = hrdm_core::algebra::select_if(
                emp,
                &hrdm_core::algebra::Predicate::attr_op_value(
                    "SALARY",
                    hrdm_core::algebra::Comparator::Ge,
                    30_000i64,
                ),
                hrdm_core::algebra::Quantifier::Exists,
                None,
            )
            .unwrap();
            hrdm_core::algebra::project(&picked, &["NAME".into()]).unwrap()
        };
        assert_eq!(via_lang, direct);
    }
}
