//! `hrdmq` — a small interactive shell for HRDM databases.
//!
//! ```sh
//! cargo run -p hrdm-query --bin hrdmq -- /path/to/db-dir
//! ```
//!
//! Reads one query per line (the textual algebra of `hrdm-query`), prints
//! relations or lifespans. Meta-commands:
//!
//! * `\d` — list relations and schemes,
//! * `\log` — show the schema-evolution log,
//! * `\explain <query>` — show the optimized plan and rewrite trace,
//! * `\q` — quit.

use hrdm_query::{evaluate_planned, explain_with_access, parse_query, Query, QueryResult};
use hrdm_storage::Database;
use std::io::{self, BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let db = match args.get(1) {
        Some(dir) => match Database::load(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("failed to load database from {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("usage: hrdmq <database-dir>   (no dir given: starting empty)");
            Database::new()
        }
    };

    let names: Vec<&str> = db.relation_names().collect();
    println!("hrdmq — {} relation(s): {}", names.len(), names.join(", "));
    println!("type a query, \\d for schemas, \\q to quit");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("hrdm> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        if line == "\\d" {
            for name in db.relation_names() {
                let r = db.relation(name).expect("listed relations exist");
                println!("{name}: {} — {} tuple(s)", r.scheme(), r.len());
            }
            continue;
        }
        if line == "\\log" {
            for ev in db.catalog().log() {
                println!("{ev}");
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\explain ") {
            match parse_query(rest) {
                Ok(Query::Relation(e)) => {
                    println!("{}", explain_with_access(&e, &db));
                }
                Ok(_) => println!("(only relation-sorted queries have a relational plan)"),
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }

        match parse_query(line) {
            Err(e) => println!("parse error: {e}"),
            Ok(q) => {
                // Relation-sorted queries go through the rewrite optimizer
                // and the index-aware access-path planner.
                match evaluate_planned(&q, &db) {
                    Ok(QueryResult::Relation(r)) => {
                        print!("{r}");
                        println!("({} tuple(s))", r.len());
                    }
                    Ok(QueryResult::Lifespan(l)) => println!("{l}"),
                    Ok(QueryResult::Function(f)) => println!("{f}"),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}
