//! `hrdmq` — a small interactive shell for HRDM databases.
//!
//! ```sh
//! cargo run -p hrdm-query --bin hrdmq -- /path/to/db-dir
//! ```
//!
//! Reads one query per line (the textual algebra of `hrdm-query`), prints
//! relations or lifespans. A directory argument **attaches** durably: every
//! write is WAL-logged before it is acknowledged, and reopening the
//! directory recovers it. The shell runs on the concurrent engine: each
//! query evaluates against an immutable [`hrdm_storage::DbSnapshot`], and
//! writes go through the group-commit writer. Writes use
//! `name := <query>`, which materializes a query result as a relation.
//! Meta-commands:
//!
//! * `\d` — list relations and schemes,
//! * `\log` — show the schema-evolution log,
//! * `\explain <query>` — show the optimized plan and rewrite trace,
//! * `\open <dir>` — attach to a database directory (creating it if new),
//! * `\checkpoint` — fold the WAL into fresh heap files (atomic commit),
//! * `\stats` — group-commit counters (batches, ops, batch sizes) and the
//!   current snapshot version,
//! * `\q` — quit.

use hrdm_query::{evaluate_planned, explain_with_access, parse_query, Query, QueryResult};
use hrdm_storage::ConcurrentDatabase;
use std::io::{self, BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let db = match args.get(1) {
        Some(dir) => match ConcurrentDatabase::open(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("failed to open database at {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("usage: hrdmq <database-dir>   (no dir given: starting detached)");
            ConcurrentDatabase::new()
        }
    };
    let mut db = db;

    {
        let snap = db.snapshot();
        let names: Vec<&str> = snap.relation_names().collect();
        println!("hrdmq — {} relation(s): {}", names.len(), names.join(", "));
    }
    match db.with_database(|d| d.attached_dir().map(|p| p.display().to_string())) {
        Some(dir) => println!("attached to {dir} (durable; \\checkpoint to compact)"),
        None => println!("detached (in-memory; \\open <dir> to attach durably)"),
    }
    println!("type a query, `name := query` to materialize, \\d for schemas, \\q to quit");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("hrdm> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            break;
        }
        if line == "\\d" {
            let snap = db.snapshot();
            for name in snap.relation_names() {
                let r = snap.relation(name).expect("listed relations exist");
                println!("{name}: {} — {} tuple(s)", r.scheme(), r.len());
            }
            continue;
        }
        if line == "\\log" {
            let snap = db.snapshot();
            for ev in snap.catalog().log() {
                println!("{ev}");
            }
            continue;
        }
        if line == "\\stats" {
            let stats = db.stats();
            let snap = db.snapshot();
            println!(
                "group commit: {} batch(es), {} op(s), mean batch {:.2}, max batch {}, last batch {}",
                stats.batches,
                stats.ops,
                stats.mean_batch(),
                stats.max_batch,
                stats.last_batch
            );
            match snap.epoch() {
                Some(e) => println!("snapshot: version {}, epoch {e}", snap.version()),
                None => println!("snapshot: version {} (detached)", snap.version()),
            }
            continue;
        }
        if line == "\\checkpoint" {
            match db.checkpoint() {
                Ok(()) => println!(
                    "checkpointed (epoch {})",
                    db.snapshot().epoch().expect("attached after checkpoint")
                ),
                Err(e) => println!("checkpoint error: {e}"),
            }
            continue;
        }
        if let Some(dir) = line.strip_prefix("\\open ") {
            let dir = dir.trim();
            match ConcurrentDatabase::open(std::path::Path::new(dir)) {
                Ok(opened) => {
                    db = opened;
                    let n = db.snapshot().relation_names().count();
                    println!("attached to {dir} — {n} relation(s)");
                }
                // The error itself names the offending file where it can;
                // always lead with the directory the user asked for.
                Err(e) => println!("open error for {dir}: {e}"),
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("\\explain ") {
            match parse_query(rest) {
                Ok(Query::Relation(e)) => {
                    println!("{}", explain_with_access(&e, &*db.snapshot()));
                }
                Ok(_) => println!("(only relation-sorted queries have a relational plan)"),
                Err(e) => println!("parse error: {e}"),
            }
            continue;
        }

        // `name := <query>`: materialize a query result as a relation,
        // through the durable group-commit write path when attached.
        if let Some((name, query_text)) = split_assignment(line) {
            match parse_query(query_text) {
                Err(e) => println!("parse error: {e}"),
                Ok(q) => match evaluate_planned(&q, &*db.snapshot()) {
                    Ok(QueryResult::Relation(r)) => {
                        let tuples = r.len();
                        let exists = db.snapshot().relation(name).is_some();
                        let result = if exists {
                            db.put_relation(name, r)
                        } else {
                            db.create_relation(name, r.scheme().clone())
                                .and_then(|()| db.put_relation(name, r))
                        };
                        match result {
                            Ok(()) => println!("{name} := {tuples} tuple(s)"),
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    Ok(_) => println!("(only relation-sorted queries can be materialized)"),
                    Err(e) => println!("error: {e}"),
                },
            }
            continue;
        }

        match parse_query(line) {
            Err(e) => println!("parse error: {e}"),
            Ok(q) => {
                // Relation-sorted queries go through the rewrite optimizer
                // and the index-aware access-path planner, evaluated
                // against one immutable snapshot.
                match evaluate_planned(&q, &*db.snapshot()) {
                    Ok(QueryResult::Relation(r)) => {
                        print!("{r}");
                        println!("({} tuple(s))", r.len());
                    }
                    Ok(QueryResult::Lifespan(l)) => println!("{l}"),
                    Ok(QueryResult::Function(f)) => println!("{f}"),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}

/// Splits `name := query` into its halves; `None` when the line is not an
/// assignment. The name must look like an identifier so queries containing
/// `:=` in string literals are not misparsed.
fn split_assignment(line: &str) -> Option<(&str, &str)> {
    let (lhs, rhs) = line.split_once(":=")?;
    let name = lhs.trim();
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-');
    if ok {
        Some((name, rhs.trim()))
    } else {
        None
    }
}
