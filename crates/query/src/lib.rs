//! # hrdm-query — an algebra language, evaluator, and optimizer for HRDM
//!
//! The paper defines its algebra mathematically; this crate makes it
//! *runnable as text*:
//!
//! ```
//! use hrdm_query::{run_query_on_snapshot, IndexedRelations, QueryResult};
//! use hrdm_core::prelude::*;
//! use std::collections::BTreeMap;
//!
//! // emp(NAME*, SALARY) with John earning 25K then 30K.
//! let era = Lifespan::interval(0, 19);
//! let scheme = Scheme::builder()
//!     .key_attr("NAME", ValueKind::Str, era.clone())
//!     .attr("SALARY", HistoricalDomain::int(), era.clone())
//!     .build().unwrap();
//! let john = Tuple::builder(era.clone())
//!     .constant("NAME", "John")
//!     .value("SALARY", TemporalValue::of(&[
//!         (0, 9, Value::Int(25_000)), (10, 19, Value::Int(30_000)),
//!     ]))
//!     .finish(&scheme).unwrap();
//! let mut db = BTreeMap::new();
//! db.insert("emp".to_string(), Relation::with_tuples(scheme, vec![john]).unwrap());
//!
//! // The paper's §4.3 example, as text. WHEN extracts the lifespan sort.
//! // `run_query_on_snapshot` parses, optimizes, plans, and drains the
//! // streaming executor ([`exec`]) into a materialized answer.
//! let src = IndexedRelations::new(db);
//! let q = "WHEN (SELECT-WHEN (NAME = \"John\" AND SALARY = 30000) (emp))";
//! match run_query_on_snapshot(q, &src).unwrap() {
//!     QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(10, 19)),
//!     _ => unreachable!(),
//! }
//! ```
//!
//! The [`optimizer`] applies the algebraic identities the paper lists in §5
//! (select/TIME-SLICE commutation, distribution over set operators, …) as
//! rewrite rules, and [`explain()`] renders plans and rewrite traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod exec;
pub mod explain;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod pipeline;
pub mod plan;

pub use ast::{Expr, LifespanExpr, Query};
#[allow(deprecated)]
pub use eval::{eval_expr, eval_lifespan, evaluate, QueryResult, RelationSource};
pub use exec::{
    build_executor, explain_stream_plan, CancelProbe, ExecError, ExecOptions, ExecStats,
    QueryExecutor, QueryStream, RowBatch, DEFAULT_BATCH_ROWS,
};
pub use explain::{explain, explain_optimized};
pub use lexer::{lex, LexError, Token};
pub use optimizer::{optimize, Rewrite};
pub use parser::{parse_expr, parse_query, ParseError};
pub use pipeline::{
    explain_analyze_query_text, explain_query_text, paged_snapshot_for_query, run_query_on_paged,
    run_query_on_snapshot, run_query_on_snapshot_timed, stream_query_on_paged,
    stream_query_on_snapshot, strip_explain_analyze, PagedQueryError, PipelineError,
    PipelineTiming, StreamedQuery, EXPLAIN_ANALYZE_PREFIX,
};
pub use plan::{
    eval_plan, evaluate_planned, explain_plan, explain_plan_analyzed, explain_with_access,
    materialization_window, plan, AccessPath, IndexSource, IndexedRelations, Plan,
};
