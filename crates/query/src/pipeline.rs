//! The textual query pipeline as one call: parse → optimize → plan →
//! evaluate against a snapshot (or any other [`IndexSource`]).
//!
//! Every front end that accepts *query text* — the `hrdmq` shell, the
//! `hrdmd` network server, the examples — runs the identical pipeline:
//! parse the text, rewrite-optimize relation-sorted expressions, select
//! access paths against the source's indexes, evaluate. This module is
//! that glue, written once, so the front ends cannot drift apart in how
//! they treat a query.

use crate::eval::QueryResult;
use crate::exec::{build_executor, ExecError, ExecOptions, QueryStream};
use crate::parser::{parse_query, ParseError};
use crate::plan::IndexSource;
use hrdm_core::HrdmError;
use hrdm_storage::{DbError, PagedDatabase};
use hrdm_time::Lifespan;
use std::fmt;
use std::time::Instant;

/// Everything that can go wrong running query *text* end to end: the text
/// may not parse, the (planned) evaluation may fail, or the stream may be
/// cut off by cancellation or a resource cap.
#[derive(Clone, PartialEq, Debug)]
pub enum PipelineError {
    /// The text is not a well-formed query.
    Parse(ParseError),
    /// The query is well-formed but evaluation failed (unknown relation,
    /// incomparable values, …).
    Eval(HrdmError),
    /// The stream's cancellation probe fired mid-query.
    Cancelled,
    /// A streaming resource cap (e.g. the row limit) was exceeded.
    Limit(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse error: {e}"),
            PipelineError::Eval(e) => write!(f, "error: {e}"),
            PipelineError::Cancelled => f.write_str("query cancelled"),
            PipelineError::Limit(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<HrdmError> for PipelineError {
    fn from(e: HrdmError) -> Self {
        PipelineError::Eval(e)
    }
}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::Eval(h) => PipelineError::Eval(h),
            ExecError::Cancelled => PipelineError::Cancelled,
            ExecError::RowLimit(n) => {
                PipelineError::Limit(format!("result exceeds the cap of {n} rows"))
            }
        }
    }
}

/// Where a query's wall time went: the *planning* half (parse + rewrite
/// optimization + access-path selection) versus the *execution* half
/// (operator evaluation). Servers surface these per-request so a slow
/// query can be attributed to the right phase.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PipelineTiming {
    /// Nanoseconds spent parsing, optimizing, and planning.
    pub plan_ns: u64,
    /// Nanoseconds spent evaluating the planned operators.
    pub exec_ns: u64,
}

/// Runs query text end to end against `src`: parse → optimize → plan →
/// evaluate. Relation-sorted queries go through the rewrite optimizer and
/// the index-aware access-path planner (index scans, partition pruning);
/// lifespan- and aggregate-sorted queries evaluate directly.
///
/// This is the single entry point shared by the `hrdmq` shell and the
/// `hrdmd` server — both answer exactly what this function returns.
pub fn run_query_on_snapshot(
    text: &str,
    src: &dyn IndexSource,
) -> Result<QueryResult, PipelineError> {
    run_query_on_snapshot_timed(text, src).map(|(result, _)| result)
}

/// [`run_query_on_snapshot`], also reporting where the time went.
///
/// The planning half covers parse + rewrite optimization + access-path
/// selection (everything before the first tuple is touched); the
/// execution half is the planned evaluation itself. Non-relation sorts
/// (lifespan, aggregate) have no physical plan — for those, planning is
/// the parse and execution is the direct evaluation.
pub fn run_query_on_snapshot_timed(
    text: &str,
    src: &dyn IndexSource,
) -> Result<(QueryResult, PipelineTiming), PipelineError> {
    match stream_query_on_snapshot(text, src, &ExecOptions::default())? {
        StreamedQuery::Rows(stream) => {
            let plan_ns = stream.plan_ns();
            let exec_started = Instant::now();
            let r = stream.collect_relation()?;
            Ok((
                QueryResult::Relation(r),
                PipelineTiming {
                    plan_ns,
                    exec_ns: exec_started.elapsed().as_nanos() as u64,
                },
            ))
        }
        StreamedQuery::Lifespan { value, timing } => Ok((QueryResult::Lifespan(value), timing)),
        StreamedQuery::Function { value, timing } => Ok((QueryResult::Function(value), timing)),
    }
}

/// A streamed query outcome: relation-sorted queries come back as a live
/// [`QueryStream`] (no materialization has happened yet); lifespan- and
/// aggregate-sorted results are scalar-sized and arrive complete.
pub enum StreamedQuery<'a> {
    /// A relation-sorted result, pulled batch by batch.
    Rows(QueryStream<'a>),
    /// A lifespan-sorted result (already complete).
    Lifespan {
        /// The lifespan value.
        value: Lifespan,
        /// Where the wall time went.
        timing: PipelineTiming,
    },
    /// An aggregate-sorted, time-varying result (already complete).
    Function {
        /// The time-varying value.
        value: hrdm_core::TemporalValue,
        /// Where the wall time went.
        timing: PipelineTiming,
    },
}

/// The streaming front door: parse → optimize → plan → *open* an executor
/// tree, without materializing relation results. The returned
/// [`QueryStream`] enforces `opts`' row cap and cancellation probe per
/// batch, so front ends (the server's `RowChunk` loop, the shell) observe
/// Cancel within one batch boundary instead of after full evaluation.
///
/// [`run_query_on_snapshot`] is the collect-to-`Relation` wrapper over
/// this for callers that want the
/// materialized answer.
pub fn stream_query_on_snapshot<'a>(
    text: &str,
    src: &'a dyn IndexSource,
    opts: &ExecOptions,
) -> Result<StreamedQuery<'a>, PipelineError> {
    let plan_started = Instant::now();
    match parse_query(text)? {
        crate::ast::Query::Relation(e) => {
            let (optimized, _trace) = crate::optimizer::optimize(&e);
            let p = crate::plan::plan(&optimized, src);
            let root = build_executor(&p, src, opts);
            let plan_ns = plan_started.elapsed().as_nanos() as u64;
            let mut stream = QueryStream::new(root, opts)?;
            stream.set_plan_ns(plan_ns);
            Ok(StreamedQuery::Rows(stream))
        }
        other => {
            let plan_ns = plan_started.elapsed().as_nanos() as u64;
            let exec_started = Instant::now();
            #[allow(deprecated)]
            let result = crate::eval::evaluate(&other, src)?;
            let timing = PipelineTiming {
                plan_ns,
                exec_ns: exec_started.elapsed().as_nanos() as u64,
            };
            match result {
                QueryResult::Lifespan(value) => Ok(StreamedQuery::Lifespan { value, timing }),
                QueryResult::Function(value) => Ok(StreamedQuery::Function { value, timing }),
                // Unreachable (the parser sorts relation queries above),
                // but stream it rather than fail if it ever happens.
                QueryResult::Relation(r) => {
                    let mut stream = QueryStream::from_relation(r, opts)?;
                    stream.set_plan_ns(plan_ns);
                    Ok(StreamedQuery::Rows(stream))
                }
            }
        }
    }
}

/// Everything that can go wrong running query text against an
/// out-of-core [`PagedDatabase`]: the ordinary pipeline failures, plus
/// the storage layer failing to materialize the window (I/O error, bad
/// checksum, …) — a failure class the in-memory pipeline cannot have.
#[derive(Debug)]
pub enum PagedQueryError {
    /// The query itself failed (parse, eval, cancel, cap).
    Pipeline(PipelineError),
    /// Reading the window from disk failed.
    Storage(DbError),
}

impl fmt::Display for PagedQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagedQueryError::Pipeline(e) => e.fmt(f),
            PagedQueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PagedQueryError {}

impl From<PipelineError> for PagedQueryError {
    fn from(e: PipelineError) -> Self {
        PagedQueryError::Pipeline(e)
    }
}

impl From<DbError> for PagedQueryError {
    fn from(e: DbError) -> Self {
        PagedQueryError::Storage(e)
    }
}

impl From<ParseError> for PagedQueryError {
    fn from(e: ParseError) -> Self {
        PagedQueryError::Pipeline(PipelineError::Parse(e))
    }
}

/// The minimal snapshot a paged source must materialize to answer
/// `text`, plus the window it was clipped to (`None` = everything).
///
/// The window is [`crate::plan::materialization_window`] of the
/// *optimized* relational expression — the same shape the planner will
/// bound — so a query under a literal `TIMESLICE` faults in only the
/// partitions its window can touch. Non-relation sorts (lifespan,
/// aggregate) and unbounded queries materialize the full database.
pub fn paged_snapshot_for_query(
    text: &str,
    db: &PagedDatabase,
) -> Result<(hrdm_storage::DbSnapshot, Option<Lifespan>), PagedQueryError> {
    let window = match parse_query(text)? {
        crate::ast::Query::Relation(e) => {
            let (optimized, _trace) = crate::optimizer::optimize(&e);
            crate::plan::materialization_window(&optimized)
        }
        _ => None,
    };
    let snap = db.window_snapshot(window.as_ref())?;
    Ok((snap, window))
}

/// Runs query text end to end against an out-of-core database: compute
/// the query's materialization window, fault in that window through the
/// buffer pool (pruned partitions stay on disk), then run the ordinary
/// snapshot pipeline over the result.
pub fn run_query_on_paged(text: &str, db: &PagedDatabase) -> Result<QueryResult, PagedQueryError> {
    let (snap, _window) = paged_snapshot_for_query(text, db)?;
    run_query_on_snapshot(text, &snap).map_err(PagedQueryError::from)
}

/// The streaming counterpart of [`run_query_on_paged`]: materializes the
/// query's window, opens the stream over it, and hands the live
/// [`StreamedQuery`] to `f`. Scoped as a callback because the stream
/// borrows the window snapshot, which lives on this frame.
pub fn stream_query_on_paged<T>(
    text: &str,
    db: &PagedDatabase,
    opts: &ExecOptions,
    f: impl FnOnce(StreamedQuery<'_>) -> Result<T, PipelineError>,
) -> Result<T, PagedQueryError> {
    let (snap, _window) = paged_snapshot_for_query(text, db)?;
    let streamed = stream_query_on_snapshot(text, &snap, opts)?;
    f(streamed).map_err(PagedQueryError::from)
}

/// Parses and EXPLAINs query text against `src`: the optimizer's rewrite
/// trace plus the physical plan with access paths. Only relation-sorted
/// queries have a relational plan; other sorts return `Ok(None)`.
pub fn explain_query_text(
    text: &str,
    src: &dyn IndexSource,
) -> Result<Option<String>, PipelineError> {
    match parse_query(text)? {
        crate::ast::Query::Relation(e) => Ok(Some(crate::plan::explain_with_access(&e, src))),
        _ => Ok(None),
    }
}

/// The query-text prefix selecting the analyzed-explain mode.
pub const EXPLAIN_ANALYZE_PREFIX: &str = "EXPLAIN ANALYZE";

/// Strips a leading `EXPLAIN ANALYZE` from `text`, returning the query
/// proper — the front ends' dispatch test for the analyzed mode.
pub fn strip_explain_analyze(text: &str) -> Option<&str> {
    let trimmed = text.trim_start();
    let rest = trimmed.strip_prefix(EXPLAIN_ANALYZE_PREFIX)?;
    // Require a separator so a relation named e.g. `EXPLAIN ANALYZER`
    // cannot be mistaken for the mode keyword.
    if rest.starts_with(char::is_whitespace) || rest.starts_with('(') {
        Some(rest.trim_start())
    } else {
        None
    }
}

/// `EXPLAIN ANALYZE`: runs the query for real through the streaming
/// executor and renders the executor tree annotated with measured
/// per-operator wall times, output row/batch counts, and (on bounded
/// scans) partition-pruning counts, followed by planning/execution
/// totals. Only relation-sorted queries have a relational plan; other
/// sorts return `Ok(None)`.
///
/// The per-operator numbers are the executors' own [`crate::exec::ExecStats`];
/// with observability disabled (`HRDM_OBS_OFF`) the plan still renders,
/// without actual-time annotations.
pub fn explain_analyze_query_text(
    text: &str,
    src: &dyn IndexSource,
) -> Result<Option<String>, PipelineError> {
    let opts = ExecOptions::default();
    let mut stream = match stream_query_on_snapshot(text, src, &opts)? {
        StreamedQuery::Rows(stream) => stream,
        _ => return Ok(None),
    };
    let plan_ns = stream.plan_ns();
    let exec_started = Instant::now();
    let mut rows: u64 = 0;
    while let Some(batch) = stream.next_batch()? {
        rows += batch.len() as u64;
    }
    let exec_ns = exec_started.elapsed().as_nanos() as u64;

    let mut out = String::from("== explain analyze ==\n");
    // When a trace id is ambient (a server worker installed the id the
    // client minted), print it so the remote caller can join this plan
    // to its own request, the slowlog, and the flight recorder.
    if let Some(trace) = hrdm_obs::trace::current() {
        out.push_str(&format!("trace: {}\n", hrdm_obs::trace::render(trace)));
    }
    out.push_str(&stream.render_plan(hrdm_obs::enabled()));
    out.push_str(&format!(
        "planning: {}\nexecution: {}\nrows: {rows}\n",
        crate::plan::fmt_ns(plan_ns),
        crate::plan::fmt_ns(exec_ns),
    ));
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{evaluate_planned, IndexedRelations};
    use hrdm_core::prelude::*;
    use std::collections::BTreeMap;

    fn source() -> IndexedRelations {
        let era = Lifespan::interval(0, 19);
        let scheme = Scheme::builder()
            .key_attr("NAME", ValueKind::Str, era.clone())
            .attr("SALARY", HistoricalDomain::int(), era.clone())
            .build()
            .unwrap();
        let john = Tuple::builder(era.clone())
            .constant("NAME", "John")
            .value(
                "SALARY",
                TemporalValue::of(&[(0, 9, Value::Int(25_000)), (10, 19, Value::Int(30_000))]),
            )
            .finish(&scheme)
            .unwrap();
        let mut map = BTreeMap::new();
        map.insert(
            "emp".to_string(),
            Relation::with_tuples(scheme, vec![john]).unwrap(),
        );
        IndexedRelations::new(map)
    }

    #[test]
    fn runs_relation_and_lifespan_sorts() {
        let src = source();
        match run_query_on_snapshot("SELECT-WHEN (SALARY = 30000) (emp)", &src).unwrap() {
            QueryResult::Relation(r) => assert_eq!(r.len(), 1),
            other => panic!("expected relation, got {other:?}"),
        }
        match run_query_on_snapshot("WHEN (SELECT-WHEN (SALARY = 30000) (emp))", &src).unwrap() {
            QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(10, 19)),
            other => panic!("expected lifespan, got {other:?}"),
        }
    }

    #[test]
    fn parse_and_eval_errors_are_distinguished() {
        let src = source();
        assert!(matches!(
            run_query_on_snapshot("NOT A QUERY ((", &src),
            Err(PipelineError::Parse(_))
        ));
        assert!(matches!(
            run_query_on_snapshot("WHEN (ghost)", &src),
            Err(PipelineError::Eval(HrdmError::UnknownRelation(_)))
        ));
    }

    #[test]
    fn timing_is_reported_for_both_phases() {
        let src = source();
        let (_, timing) =
            run_query_on_snapshot_timed("SELECT-WHEN (SALARY = 30000) (emp)", &src).unwrap();
        // Both phases ran; wall clocks are positive on any real machine.
        assert!(timing.plan_ns > 0);
        assert!(timing.exec_ns > 0);
    }

    #[test]
    fn explain_text_reports_access_paths() {
        let src = source();
        let out = explain_query_text("SELECT-WHEN (NAME = \"John\") (emp)", &src)
            .unwrap()
            .expect("relation-sorted");
        assert!(out.contains("== access paths =="), "{out}");
        assert!(out.contains("IndexScan(key"), "{out}");
        // Non-relation sorts have no relational plan.
        assert_eq!(explain_query_text("WHEN (emp)", &src).unwrap(), None);
    }

    #[test]
    fn strip_explain_analyze_requires_a_separator() {
        assert_eq!(
            strip_explain_analyze("EXPLAIN ANALYZE TIMESLICE [0..9] (emp)"),
            Some("TIMESLICE [0..9] (emp)")
        );
        assert_eq!(
            strip_explain_analyze("  EXPLAIN ANALYZE(emp)"),
            Some("(emp)")
        );
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZER"), None);
        assert_eq!(strip_explain_analyze("TIMESLICE [0..9] (emp)"), None);
    }

    #[test]
    fn explain_analyze_annotates_every_operator() {
        let src = source();
        let out = explain_analyze_query_text("TIMESLICE [0..9] (emp)", &src)
            .unwrap()
            .expect("relation-sorted");
        assert!(out.contains("== explain analyze =="), "{out}");
        // Both the slice and the scan under it carry actual-run stats.
        assert_eq!(out.matches("(actual time=").count(), 2, "{out}");
        assert!(out.contains("rows=1)"), "{out}");
        assert!(out.contains("planning: "), "{out}");
        assert!(out.contains("execution: "), "{out}");
        assert!(out.contains("rows: 1"), "{out}");
        // Non-relation sorts have no relational plan to analyze.
        assert_eq!(
            explain_analyze_query_text("WHEN (emp)", &src).unwrap(),
            None
        );
    }

    #[test]
    fn pipeline_matches_evaluate_planned() {
        let src = source();
        let text = "TIMESLICE [0..9] (emp)";
        let via_helper = match run_query_on_snapshot(text, &src).unwrap() {
            QueryResult::Relation(r) => r,
            other => panic!("expected relation, got {other:?}"),
        };
        let q = parse_query(text).unwrap();
        let direct = match evaluate_planned(&q, &src).unwrap() {
            QueryResult::Relation(r) => r,
            other => panic!("expected relation, got {other:?}"),
        };
        assert_eq!(via_helper, direct);
    }
}
