//! The algebra expression tree.
//!
//! One node per paper operator (§4), plus named relation references. The
//! algebra is multi-sorted: [`Expr`] nodes denote relations,
//! [`LifespanExpr`] nodes denote lifespans — and `WHEN` is exactly the
//! bridge between the sorts, which is why a TIME-SLICE parameter can be the
//! `WHEN` of a subquery (paper §4.5).

use hrdm_core::algebra::{Comparator, Predicate, Quantifier};
use hrdm_core::Attribute;
use hrdm_time::Lifespan;
use std::fmt;

/// An expression denoting a historical relation.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A named base relation.
    Relation(String),
    /// `r1 ∪ r2`.
    Union(Box<Expr>, Box<Expr>),
    /// `r1 ∩ r2`.
    Intersection(Box<Expr>, Box<Expr>),
    /// `r1 − r2`.
    Difference(Box<Expr>, Box<Expr>),
    /// `r1 ∪ₒ r2` (object-based).
    UnionO(Box<Expr>, Box<Expr>),
    /// `r1 ∩ₒ r2` (object-based).
    IntersectionO(Box<Expr>, Box<Expr>),
    /// `r1 −ₒ r2` (object-based).
    DifferenceO(Box<Expr>, Box<Expr>),
    /// `r1 × r2`.
    Product(Box<Expr>, Box<Expr>),
    /// `π_X`.
    Project {
        /// Input relation.
        input: Box<Expr>,
        /// Attributes to keep, in order.
        attrs: Vec<Attribute>,
    },
    /// `σ-IF(θ, Q, L)`.
    SelectIf {
        /// Input relation.
        input: Box<Expr>,
        /// Selection criterion θ.
        predicate: Predicate,
        /// The bounded quantifier.
        quantifier: Quantifier,
        /// Optional lifespan bound `L` (`None` = all of `T`).
        lifespan: Option<LifespanExpr>,
    },
    /// `σ-WHEN(θ)`.
    SelectWhen {
        /// Input relation.
        input: Box<Expr>,
        /// Selection criterion θ.
        predicate: Predicate,
    },
    /// Static TIME-SLICE `τ_L`.
    TimeSlice {
        /// Input relation.
        input: Box<Expr>,
        /// The slicing lifespan.
        lifespan: LifespanExpr,
    },
    /// Dynamic TIME-SLICE `τ@A`.
    TimeSliceDynamic {
        /// Input relation.
        input: Box<Expr>,
        /// The time-valued attribute.
        attr: Attribute,
    },
    /// `JOIN [A θ B]`.
    ThetaJoin {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// Left join attribute.
        a: Attribute,
        /// The comparator θ.
        op: Comparator,
        /// Right join attribute.
        b: Attribute,
    },
    /// `NATURAL-JOIN`.
    NaturalJoin(Box<Expr>, Box<Expr>),
    /// TIME-JOIN `[@A]`.
    TimeJoin {
        /// Left operand (owns the time-valued attribute).
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// The time-valued attribute of the left operand.
        attr: Attribute,
    },
}

/// An expression denoting a lifespan (the algebra's second sort).
#[derive(Clone, PartialEq, Debug)]
pub enum LifespanExpr {
    /// A literal lifespan.
    Literal(Lifespan),
    /// `Ω(e)` — the WHEN of a relational subexpression.
    When(Box<Expr>),
    /// Union of two lifespan expressions.
    Union(Box<LifespanExpr>, Box<LifespanExpr>),
    /// Intersection of two lifespan expressions.
    Intersect(Box<LifespanExpr>, Box<LifespanExpr>),
    /// Difference of two lifespan expressions.
    Minus(Box<LifespanExpr>, Box<LifespanExpr>),
}

/// A top-level query: one of the algebra's sorts, plus the aggregate
/// extension (which produces a *time-varying value* — a third sort the
/// 1987 paper does not have but its successors all added).
#[derive(Clone, PartialEq, Debug)]
pub enum Query {
    /// A query producing a relation.
    Relation(Expr),
    /// A query producing a lifespan.
    Lifespan(LifespanExpr),
    /// A time-varying aggregate over a relational subexpression.
    Aggregate {
        /// The aggregate operator.
        op: hrdm_core::algebra::AggregateOp,
        /// The aggregated attribute.
        attr: Attribute,
        /// The input relation expression.
        input: Expr,
    },
}

impl Expr {
    /// Shorthand: a named relation.
    pub fn rel(name: impl Into<String>) -> Expr {
        Expr::Relation(name.into())
    }

    /// Shorthand: projection.
    pub fn project<I, A>(self, attrs: I) -> Expr
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        Expr::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Shorthand: SELECT-IF.
    pub fn select_if(self, predicate: Predicate, quantifier: Quantifier) -> Expr {
        Expr::SelectIf {
            input: Box::new(self),
            predicate,
            quantifier,
            lifespan: None,
        }
    }

    /// Shorthand: SELECT-WHEN.
    pub fn select_when(self, predicate: Predicate) -> Expr {
        Expr::SelectWhen {
            input: Box::new(self),
            predicate,
        }
    }

    /// Shorthand: static TIME-SLICE with a literal lifespan.
    pub fn timeslice(self, l: Lifespan) -> Expr {
        Expr::TimeSlice {
            input: Box::new(self),
            lifespan: LifespanExpr::Literal(l),
        }
    }

    /// Number of nodes in the tree, **lifespan subexpressions included**
    /// (used by optimizer fixpoint bounds and tests).
    ///
    /// A `TIMESLICE` window or `SELECT-IF` bound is a [`LifespanExpr`]
    /// that may nest arbitrarily large relational subtrees through
    /// `WHEN(…)`; not counting them would let the optimizer's
    /// size²-bounded fixpoint loop under-budget rewrites of those
    /// subtrees.
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Relation(_) => 0,
            Expr::Union(a, b)
            | Expr::Intersection(a, b)
            | Expr::Difference(a, b)
            | Expr::UnionO(a, b)
            | Expr::IntersectionO(a, b)
            | Expr::DifferenceO(a, b)
            | Expr::Product(a, b)
            | Expr::NaturalJoin(a, b) => a.size() + b.size(),
            Expr::ThetaJoin { left, right, .. } | Expr::TimeJoin { left, right, .. } => {
                left.size() + right.size()
            }
            Expr::Project { input, .. } | Expr::TimeSliceDynamic { input, .. } => input.size(),
            Expr::SelectWhen { input, .. } => input.size(),
            Expr::SelectIf {
                input, lifespan, ..
            } => input.size() + lifespan.as_ref().map_or(0, LifespanExpr::size),
            Expr::TimeSlice { input, lifespan } => input.size() + lifespan.size(),
        }
    }
}

impl LifespanExpr {
    /// Number of nodes in the lifespan expression, counting the relational
    /// subtrees under `WHEN(…)` bridges at their full [`Expr::size`].
    pub fn size(&self) -> usize {
        match self {
            LifespanExpr::Literal(_) => 1,
            LifespanExpr::When(e) => 1 + e.size(),
            LifespanExpr::Union(a, b)
            | LifespanExpr::Intersect(a, b)
            | LifespanExpr::Minus(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Relation(name) => write!(f, "{name}"),
            Expr::Union(a, b) => write!(f, "({a} UNION {b})"),
            Expr::Intersection(a, b) => write!(f, "({a} INTERSECT {b})"),
            Expr::Difference(a, b) => write!(f, "({a} MINUS {b})"),
            Expr::UnionO(a, b) => write!(f, "({a} UNION-O {b})"),
            Expr::IntersectionO(a, b) => write!(f, "({a} INTERSECT-O {b})"),
            Expr::DifferenceO(a, b) => write!(f, "({a} MINUS-O {b})"),
            Expr::Product(a, b) => write!(f, "({a} PRODUCT {b})"),
            Expr::Project { input, attrs } => {
                let names: Vec<&str> = attrs.iter().map(|a| a.name()).collect();
                write!(f, "PROJECT [{}] ({input})", names.join(", "))
            }
            Expr::SelectIf {
                input,
                predicate,
                quantifier,
                lifespan,
            } => match lifespan {
                Some(l) => write!(f, "SELECT-IF ({predicate}, {quantifier}, {l}) ({input})"),
                None => write!(f, "SELECT-IF ({predicate}, {quantifier}) ({input})"),
            },
            Expr::SelectWhen { input, predicate } => {
                write!(f, "SELECT-WHEN ({predicate}) ({input})")
            }
            Expr::TimeSlice { input, lifespan } => {
                write!(f, "TIMESLICE {lifespan} ({input})")
            }
            Expr::TimeSliceDynamic { input, attr } => write!(f, "SLICE@{attr} ({input})"),
            Expr::ThetaJoin {
                left,
                right,
                a,
                op,
                b,
            } => write!(f, "({left} JOIN {right} ON {a} {op} {b})"),
            Expr::NaturalJoin(a, b) => write!(f, "({a} NATJOIN {b})"),
            Expr::TimeJoin { left, right, attr } => {
                write!(f, "({left} TIMEJOIN@{attr} {right})")
            }
        }
    }
}

impl fmt::Display for LifespanExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifespanExpr::Literal(l) => {
                // Render `{[1,3], [5]}` as `[1..3, 5]`.
                let parts: Vec<String> = l
                    .intervals()
                    .iter()
                    .map(|iv| {
                        if iv.lo() == iv.hi() {
                            format!("{}", iv.lo())
                        } else {
                            format!("{}..{}", iv.lo(), iv.hi())
                        }
                    })
                    .collect();
                write!(f, "[{}]", parts.join(", "))
            }
            LifespanExpr::When(e) => write!(f, "(WHEN ({e}))"),
            LifespanExpr::Union(a, b) => write!(f, "({a} | {b})"),
            LifespanExpr::Intersect(a, b) => write!(f, "({a} & {b})"),
            LifespanExpr::Minus(a, b) => write!(f, "({a} - {b})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Relation(e) => write!(f, "{e}"),
            Query::Lifespan(l) => write!(f, "{l}"),
            Query::Aggregate { op, attr, input } => write!(f, "{op} {attr} ({input})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::algebra::Predicate;

    #[test]
    fn builders_compose() {
        let e = Expr::rel("emp")
            .select_when(Predicate::eq_value("SALARY", 30_000i64))
            .project(["NAME"])
            .timeslice(Lifespan::interval(0, 10));
        // 4 relational nodes + the literal window lifespan node.
        assert_eq!(e.size(), 5);
        let text = e.to_string();
        assert!(text.contains("SELECT-WHEN"));
        assert!(text.contains("PROJECT"));
        assert!(text.contains("TIMESLICE [0..10]"));
    }

    /// Regression: `size()` used to ignore lifespan subexpressions
    /// entirely, so a `WHEN(…)` window nesting a large relational subtree
    /// counted as zero — silently loosening the optimizer's size²
    /// fixpoint bound for exactly the trees that need it most.
    #[test]
    fn size_counts_nested_lifespan_expressions() {
        let inner = Expr::rel("a").select_when(Predicate::eq_value("X", 1i64)); // size 2
        let window = LifespanExpr::Intersect(
            Box::new(LifespanExpr::When(Box::new(inner))), // 1 + 2
            Box::new(LifespanExpr::Literal(Lifespan::interval(0, 5))), // 1
        ); // 1 + 3 + 1 = 5
        assert_eq!(window.size(), 5);
        let sliced = Expr::TimeSlice {
            input: Box::new(Expr::rel("emp")),
            lifespan: window.clone(),
        };
        assert_eq!(sliced.size(), 1 + 1 + 5);
        let bounded = Expr::SelectIf {
            input: Box::new(Expr::rel("emp")),
            predicate: Predicate::eq_value("Y", 2i64),
            quantifier: hrdm_core::algebra::Quantifier::Exists,
            lifespan: Some(window),
        };
        assert_eq!(bounded.size(), 1 + 1 + 5);
        // And a nested lifespan tree strictly grows the size, so the
        // optimizer's bound grows with it.
        let deeper = Expr::TimeSlice {
            input: Box::new(Expr::rel("emp")),
            lifespan: LifespanExpr::When(Box::new(Expr::rel("b").timeslice(Lifespan::point(3)))),
        };
        assert!(deeper.size() > Expr::rel("emp").timeslice(Lifespan::point(3)).size());
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::Union(Box::new(Expr::rel("a")), Box::new(Expr::rel("b")));
        assert_eq!(e.to_string(), "(a UNION b)");
        let l = LifespanExpr::When(Box::new(Expr::rel("emp")));
        assert_eq!(l.to_string(), "(WHEN (emp))");
    }

    #[test]
    fn lifespan_literal_display() {
        let l = LifespanExpr::Literal(Lifespan::of(&[(1, 3), (5, 5)]));
        assert_eq!(l.to_string(), "[1..3, 5]");
    }
}
