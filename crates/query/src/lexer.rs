//! Tokenizer for the HRDM algebra language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `-` (lifespan minus; also allowed inside hyphenated keywords like
    /// `SELECT-IF`, which the lexer folds into the identifier)
    Minus,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::DotDot => write!(f, ".."),
            Token::At => write!(f, "@"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Minus => write!(f, "-"),
        }
    }
}

/// A lexing error with a byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Byte offset in the input.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '@' => {
                out.push(Token::At);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token::DotDot);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        message: "stray '.'".into(),
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        at: i,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '-' => {
                // A '-' directly following an identifier continues a
                // hyphenated keyword (SELECT-IF, UNION-O, …); otherwise it is
                // a minus (negative number or lifespan difference).
                let continues_keyword = matches!(out.last(), Some(Token::Ident(_)))
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_alphabetic());
                if continues_keyword {
                    if let Some(Token::Ident(prev)) = out.last_mut() {
                        prev.push('-');
                        i += 1;
                        // Consume the following identifier chunk directly.
                        while i < bytes.len()
                            && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                        {
                            prev.push(bytes[i] as char);
                            i += 1;
                        }
                        continue;
                    }
                    // lint: no-panic-ok(the matches! guard on this branch admits only the idents consumed above)
                    unreachable!("guarded by matches! above");
                } else if bytes
                    .get(i + 1)
                    .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    // Negative number literal.
                    let (tok, next) = lex_number(input, i)?;
                    out.push(tok);
                    i = next;
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    // Allow dots inside identifiers (prefixed attributes like
                    // e.NAME) but not a trailing `..` range.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    // A single '.' followed by a digit makes it a float; '..' is a range.
    if i < bytes.len()
        && bytes[i] == b'.'
        && bytes
            .get(i + 1)
            .is_some_and(|b| (*b as char).is_ascii_digit())
    {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|e| LexError {
                at: start,
                message: format!("bad float literal: {e}"),
            })
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|e| LexError {
                at: start,
                message: format!("bad integer literal: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("PROJECT [NAME, SALARY] (emp)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("PROJECT".into()),
                Token::LBracket,
                Token::Ident("NAME".into()),
                Token::Comma,
                Token::Ident("SALARY".into()),
                Token::RBracket,
                Token::LParen,
                Token::Ident("emp".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn hyphenated_keywords_fold() {
        let toks = lex("SELECT-IF SELECT-WHEN UNION-O").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT-IF".into()),
                Token::Ident("SELECT-WHEN".into()),
                Token::Ident("UNION-O".into()),
            ]
        );
    }

    #[test]
    fn numbers_ranges_and_negatives() {
        let toks = lex("[0..10, -5..-1, 3.5]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBracket,
                Token::Int(0),
                Token::DotDot,
                Token::Int(10),
                Token::Comma,
                Token::Int(-5),
                Token::DotDot,
                Token::Int(-1),
                Token::Comma,
                Token::Float(3.5),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("a = b != c < d <= e > f >= g").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge
                )
            })
            .collect();
        assert_eq!(ops.len(), 6);
    }

    #[test]
    fn strings_and_errors() {
        assert_eq!(
            lex("\"John Smith\"").unwrap(),
            vec![Token::Str("John Smith".into())]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("!x").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn dotted_identifiers() {
        let toks = lex("e.NAME").unwrap();
        assert_eq!(toks, vec![Token::Ident("e.NAME".into())]);
    }

    #[test]
    fn minus_in_lifespan_context() {
        // After ']' a '-' is a set minus, not a keyword continuation.
        let toks = lex("[1..2] - [3..4]").unwrap();
        assert!(toks.contains(&Token::Minus));
    }
}
