//! EXPLAIN: a tree rendering of algebra expressions and optimizer traces.

use crate::ast::{Expr, LifespanExpr};
use crate::optimizer::Rewrite;
use std::fmt::Write;

/// Renders an expression as an indented operator tree.
pub fn explain(e: &Expr) -> String {
    let mut out = String::new();
    walk(e, 0, &mut out);
    out
}

/// Renders an optimizer run: before/after trees plus the fired rules.
pub fn explain_optimized(before: &Expr, after: &Expr, trace: &[Rewrite]) -> String {
    let mut out = String::new();
    out.push_str("== unoptimized ==\n");
    out.push_str(&explain(before));
    out.push_str("== rewrites ==\n");
    if trace.is_empty() {
        out.push_str("  (none)\n");
    }
    for r in trace {
        let _ = writeln!(out, "  {}", r.rule);
    }
    out.push_str("== optimized ==\n");
    out.push_str(&explain(after));
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn walk(e: &Expr, depth: usize, out: &mut String) {
    indent(depth, out);
    match e {
        Expr::Relation(name) => {
            let _ = writeln!(out, "Relation {name}");
        }
        Expr::Union(a, b) => {
            out.push_str("Union\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::Intersection(a, b) => {
            out.push_str("Intersection\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::Difference(a, b) => {
            out.push_str("Difference\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::UnionO(a, b) => {
            out.push_str("Union-O\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::IntersectionO(a, b) => {
            out.push_str("Intersection-O\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::DifferenceO(a, b) => {
            out.push_str("Difference-O\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::Product(a, b) => {
            out.push_str("Product\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::NaturalJoin(a, b) => {
            out.push_str("NaturalJoin\n");
            walk(a, depth + 1, out);
            walk(b, depth + 1, out);
        }
        Expr::Project { input, attrs } => {
            let names: Vec<&str> = attrs.iter().map(|a| a.name()).collect();
            let _ = writeln!(out, "Project [{}]", names.join(", "));
            walk(input, depth + 1, out);
        }
        Expr::SelectIf {
            input,
            predicate,
            quantifier,
            lifespan,
        } => {
            match lifespan {
                Some(l) => {
                    let _ = writeln!(out, "Select-If {predicate} ({quantifier} over {l})");
                }
                None => {
                    let _ = writeln!(out, "Select-If {predicate} ({quantifier})");
                }
            }
            walk(input, depth + 1, out);
        }
        Expr::SelectWhen { input, predicate } => {
            let _ = writeln!(out, "Select-When {predicate}");
            walk(input, depth + 1, out);
        }
        Expr::TimeSlice { input, lifespan } => {
            match lifespan {
                LifespanExpr::Literal(l) => {
                    let _ = writeln!(out, "TimeSlice {l}");
                }
                other => {
                    let _ = writeln!(out, "TimeSlice {other}");
                }
            }
            walk(input, depth + 1, out);
        }
        Expr::TimeSliceDynamic { input, attr } => {
            let _ = writeln!(out, "TimeSlice @{attr}");
            walk(input, depth + 1, out);
        }
        Expr::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => {
            let _ = writeln!(out, "ThetaJoin {a} {op} {b}");
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
        Expr::TimeJoin { left, right, attr } => {
            let _ = writeln!(out, "TimeJoin @{attr}");
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::parser::parse_expr;

    #[test]
    fn renders_tree_shape() {
        let e = parse_expr("PROJECT [NAME] (SELECT-WHEN (SALARY = 1) (emp UNION dept))").unwrap();
        let text = explain(&e);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "Project [NAME]");
        assert!(lines[1].starts_with("  Select-When"));
        assert!(lines[2].starts_with("    Union"));
        assert!(lines[3].contains("Relation emp"));
        assert!(lines[4].contains("Relation dept"));
    }

    #[test]
    fn explain_optimized_shows_rules() {
        let e = parse_expr("TIMESLICE [0..10] (TIMESLICE [5..20] (emp))").unwrap();
        let (after, trace) = optimize(&e);
        let text = explain_optimized(&e, &after, &trace);
        assert!(text.contains("== rewrites =="));
        assert!(text.contains("FuseTimeslice"));
        assert!(text.contains("== optimized =="));
    }

    #[test]
    fn explain_with_no_rewrites() {
        let e = parse_expr("emp").unwrap();
        let (after, trace) = optimize(&e);
        let text = explain_optimized(&e, &after, &trace);
        assert!(text.contains("(none)"));
    }
}
