//! Recursive-descent parser for the HRDM algebra language.
//!
//! ```text
//! query      := expr                          -- relation-sorted
//!             | lifespanExpr                  -- lifespan-sorted (starts with WHEN or '[')
//! expr       := term (binop term)*
//! binop      := UNION | UNION-O | INTERSECT | INTERSECT-O | MINUS | MINUS-O
//!             | PRODUCT | NATJOIN
//!             | JOIN term ON attr cmp attr
//!             | TIMEJOIN '@' attr
//! term       := PROJECT '[' attr, … ']' '(' expr ')'
//!             | SELECT-IF '(' pred ',' quant [',' lifespanExpr] ')' '(' expr ')'
//!             | SELECT-WHEN '(' pred ')' '(' expr ')'
//!             | TIMESLICE lifespanExpr '(' expr ')'
//!             | SLICE '@' attr '(' expr ')'
//!             | '(' expr ')'
//!             | relationName
//! lifespanExpr := lsAtom (('&' | '|' | '-') lsAtom)*
//! lsAtom     := '[' [range (',' range)*] ']' | WHEN '(' expr ')' | '(' lifespanExpr ')'
//! range      := int ['..' int]
//! pred       := orPred; orPred := andPred (OR andPred)*;
//! andPred    := notPred (AND notPred)*
//! notPred    := NOT notPred | TRUE | '(' pred ')' | operand cmp operand
//! operand    := attrName | int | float | string | '@' int (a time value)
//! ```
//!
//! Keywords are case-insensitive; everything produces plain [`Query`] /
//! [`Expr`] values.

use crate::ast::{Expr, LifespanExpr, Query};
use crate::lexer::{lex, LexError, Token};
use hrdm_core::algebra::{Comparator, Operand, Predicate, Quantifier};
use hrdm_core::Value;
use hrdm_time::Lifespan;
use std::fmt;

/// A parse error with a token position.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Index of the offending token (or one past the end).
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: 0,
            message: e.to_string(),
        }
    }
}

/// Parses a top-level query of either sort.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    // Aggregate queries are prefix-marked: COUNT/SUM/MIN/MAX/AVG attr (expr).
    if let Some(Token::Ident(kw)) = toks.first() {
        let op = match kw.to_ascii_uppercase().as_str() {
            "COUNT" => Some(hrdm_core::algebra::AggregateOp::Count),
            "SUM" => Some(hrdm_core::algebra::AggregateOp::Sum),
            "MIN" => Some(hrdm_core::algebra::AggregateOp::Min),
            "MAX" => Some(hrdm_core::algebra::AggregateOp::Max),
            "AVG" => Some(hrdm_core::algebra::AggregateOp::Avg),
            _ => None,
        };
        if let Some(op) = op {
            let mut p = Parser { toks, pos: 1 };
            let attr = p.ident("aggregated attribute")?;
            let input = p.parenthesized_expr()?;
            p.expect_end()?;
            return Ok(Query::Aggregate {
                op,
                attr: attr.into(),
                input,
            });
        }
    }
    // Both remaining sorts can start with '(' — try the relation sort first,
    // then backtrack into the lifespan sort; report whichever error got
    // further.
    let mut p = Parser {
        toks: toks.clone(),
        pos: 0,
    };
    let expr_err = match p.expr().and_then(|e| {
        p.expect_end()?;
        Ok(e)
    }) {
        Ok(e) => return Ok(Query::Relation(e)),
        Err(e) => e,
    };
    let mut p = Parser { toks, pos: 0 };
    match p.lifespan_expr().and_then(|l| {
        p.expect_end()?;
        Ok(l)
    }) {
        Ok(l) => Ok(Query::Lifespan(l)),
        Err(ls_err) => {
            if ls_err.at >= expr_err.at {
                Err(ls_err)
            } else {
                Err(expr_err)
            }
        }
    }
}

/// Parses a relation-sorted expression.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

const RESERVED: &[&str] = &[
    "PROJECT",
    "SELECT-IF",
    "SELECT-WHEN",
    "TIMESLICE",
    "SLICE",
    "WHEN",
    "UNION",
    "UNION-O",
    "INTERSECT",
    "INTERSECT-O",
    "MINUS",
    "MINUS-O",
    "PRODUCT",
    "JOIN",
    "NATJOIN",
    "TIMEJOIN",
    "ON",
    "AND",
    "OR",
    "NOT",
    "TRUE",
    "FALSE",
    "EXISTS",
    "FORALL",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_keyword(&self) -> Option<&str> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.error(format!("expected {want}, found {t}"))
            }
            None => self.error(format!("expected {want}, found end of input")),
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            self.error("trailing input after query")
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self
            .peek_keyword()
            .is_some_and(|s| s.eq_ignore_ascii_case(kw))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(format!("expected keyword {kw}"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => self.error(format!(
                "expected {what}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        while let Some(kw) = self.peek_keyword().map(str::to_ascii_uppercase) {
            match kw.as_str() {
                "UNION" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::Union(Box::new(left), Box::new(right));
                }
                "UNION-O" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::UnionO(Box::new(left), Box::new(right));
                }
                "INTERSECT" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::Intersection(Box::new(left), Box::new(right));
                }
                "INTERSECT-O" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::IntersectionO(Box::new(left), Box::new(right));
                }
                "MINUS" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::Difference(Box::new(left), Box::new(right));
                }
                "MINUS-O" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::DifferenceO(Box::new(left), Box::new(right));
                }
                "PRODUCT" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::Product(Box::new(left), Box::new(right));
                }
                "NATJOIN" => {
                    self.pos += 1;
                    let right = self.term()?;
                    left = Expr::NaturalJoin(Box::new(left), Box::new(right));
                }
                "JOIN" => {
                    self.pos += 1;
                    let right = self.term()?;
                    self.expect_keyword("ON")?;
                    let a = self.ident("join attribute")?;
                    let op = self.comparator()?;
                    let b = self.ident("join attribute")?;
                    left = Expr::ThetaJoin {
                        left: Box::new(left),
                        right: Box::new(right),
                        a: a.into(),
                        op,
                        b: b.into(),
                    };
                }
                "TIMEJOIN" => {
                    self.pos += 1;
                    self.expect(&Token::At)?;
                    let attr = self.ident("time-valued attribute")?;
                    let right = self.term()?;
                    left = Expr::TimeJoin {
                        left: Box::new(left),
                        right: Box::new(right),
                        attr: attr.into(),
                    };
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let Some(kw) = self.peek_keyword().map(str::to_ascii_uppercase) else {
            return match self.peek() {
                Some(Token::LParen) => {
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(e)
                }
                _ => self.error("expected an expression"),
            };
        };
        match kw.as_str() {
            "PROJECT" => {
                self.pos += 1;
                self.expect(&Token::LBracket)?;
                let mut attrs = vec![self.ident("attribute")?];
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    attrs.push(self.ident("attribute")?);
                }
                self.expect(&Token::RBracket)?;
                let input = self.parenthesized_expr()?;
                Ok(Expr::Project {
                    input: Box::new(input),
                    attrs: attrs.into_iter().map(Into::into).collect(),
                })
            }
            "SELECT-IF" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let predicate = self.predicate()?;
                self.expect(&Token::Comma)?;
                let quantifier = if self.eat_keyword("EXISTS") {
                    Quantifier::Exists
                } else if self.eat_keyword("FORALL") {
                    Quantifier::Forall
                } else {
                    return self.error("expected EXISTS or FORALL");
                };
                let lifespan = if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    Some(self.lifespan_expr()?)
                } else {
                    None
                };
                self.expect(&Token::RParen)?;
                let input = self.parenthesized_expr()?;
                Ok(Expr::SelectIf {
                    input: Box::new(input),
                    predicate,
                    quantifier,
                    lifespan,
                })
            }
            "SELECT-WHEN" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let predicate = self.predicate()?;
                self.expect(&Token::RParen)?;
                let input = self.parenthesized_expr()?;
                Ok(Expr::SelectWhen {
                    input: Box::new(input),
                    predicate,
                })
            }
            "TIMESLICE" => {
                self.pos += 1;
                let lifespan = self.lifespan_expr()?;
                let input = self.parenthesized_expr()?;
                Ok(Expr::TimeSlice {
                    input: Box::new(input),
                    lifespan,
                })
            }
            "SLICE" => {
                self.pos += 1;
                self.expect(&Token::At)?;
                let attr = self.ident("time-valued attribute")?;
                let input = self.parenthesized_expr()?;
                Ok(Expr::TimeSliceDynamic {
                    input: Box::new(input),
                    attr: attr.into(),
                })
            }
            other if RESERVED.contains(&other) => {
                self.error(format!("keyword {other} cannot start an expression"))
            }
            _ => {
                let name = self.ident("relation name")?;
                Ok(Expr::Relation(name))
            }
        }
    }

    fn parenthesized_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen)?;
        let e = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(e)
    }

    // ---- lifespans ----

    fn lifespan_expr(&mut self) -> Result<LifespanExpr, ParseError> {
        let mut left = self.lifespan_atom()?;
        loop {
            match self.peek() {
                Some(Token::Amp) => {
                    self.pos += 1;
                    let right = self.lifespan_atom()?;
                    left = LifespanExpr::Intersect(Box::new(left), Box::new(right));
                }
                Some(Token::Pipe) => {
                    self.pos += 1;
                    let right = self.lifespan_atom()?;
                    left = LifespanExpr::Union(Box::new(left), Box::new(right));
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    let right = self.lifespan_atom()?;
                    left = LifespanExpr::Minus(Box::new(left), Box::new(right));
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn lifespan_atom(&mut self) -> Result<LifespanExpr, ParseError> {
        match self.peek() {
            Some(Token::LBracket) => {
                self.pos += 1;
                let mut pairs: Vec<(i64, i64)> = Vec::new();
                if !matches!(self.peek(), Some(Token::RBracket)) {
                    loop {
                        let lo = self.int("lifespan bound")?;
                        let hi = if matches!(self.peek(), Some(Token::DotDot)) {
                            self.pos += 1;
                            self.int("lifespan bound")?
                        } else {
                            lo
                        };
                        if lo > hi {
                            return self.error(format!("empty range {lo}..{hi}"));
                        }
                        pairs.push((lo, hi));
                        if matches!(self.peek(), Some(Token::Comma)) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(LifespanExpr::Literal(Lifespan::of(&pairs)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let l = self.lifespan_expr()?;
                self.expect(&Token::RParen)?;
                Ok(l)
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("WHEN") => {
                self.pos += 1;
                let e = self.parenthesized_expr()?;
                Ok(LifespanExpr::When(Box::new(e)))
            }
            _ => self.error("expected a lifespan ([..], WHEN (..), or parentheses)"),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(v),
            other => self.error(format!(
                "expected {what}, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )),
        }
    }

    // ---- predicates ----

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_pred()?;
        while self.eat_keyword("OR") {
            let right = self.and_pred()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.not_pred()?;
        while self.eat_keyword("AND") {
            let right = self.not_pred()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_pred(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_keyword("NOT") {
            return Ok(self.not_pred()?.negate());
        }
        if self
            .peek_keyword()
            .is_some_and(|s| s.eq_ignore_ascii_case("TRUE"))
        {
            // `TRUE` as a whole predicate — but only when not the left
            // operand of a comparison (TRUE = x is a comparison on bools).
            if !matches!(
                self.toks.get(self.pos + 1),
                Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
            ) {
                self.pos += 1;
                return Ok(Predicate::True);
            }
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let p = self.predicate()?;
            self.expect(&Token::RParen)?;
            return Ok(p);
        }
        let left = self.operand()?;
        let op = self.comparator()?;
        let right = self.operand()?;
        Ok(Predicate::cmp(left, op, right))
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("TRUE") => Ok(Operand::val(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("FALSE") => Ok(Operand::val(false)),
            Some(Token::Ident(s)) => Ok(Operand::attr(s)),
            Some(Token::Int(v)) => Ok(Operand::val(v)),
            Some(Token::Float(v)) => match Value::float(v) {
                Ok(v) => Ok(Operand::Const(v)),
                Err(_) => self.error("NaN float literal"),
            },
            Some(Token::Str(s)) => Ok(Operand::val(s.as_str())),
            Some(Token::At) => {
                let t = self.int("time literal")?;
                Ok(Operand::Const(Value::time(t)))
            }
            other => self.error(format!(
                "expected an operand, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )),
        }
    }

    fn comparator(&mut self) -> Result<Comparator, ParseError> {
        match self.bump() {
            Some(Token::Eq) => Ok(Comparator::Eq),
            Some(Token::Ne) => Ok(Comparator::Ne),
            Some(Token::Lt) => Ok(Comparator::Lt),
            Some(Token::Le) => Ok(Comparator::Le),
            Some(Token::Gt) => Ok(Comparator::Gt),
            Some(Token::Ge) => Ok(Comparator::Ge),
            other => self.error(format!(
                "expected a comparator, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_relation_name() {
        assert_eq!(parse_expr("emp").unwrap(), Expr::rel("emp"));
    }

    #[test]
    fn parses_project() {
        let e = parse_expr("PROJECT [NAME, SALARY] (emp)").unwrap();
        assert_eq!(e, Expr::rel("emp").project(["NAME", "SALARY"]));
    }

    #[test]
    fn parses_select_if_with_and_without_lifespan() {
        let e = parse_expr("SELECT-IF (SALARY > 30000, EXISTS) (emp)").unwrap();
        match e {
            Expr::SelectIf {
                quantifier: Quantifier::Exists,
                lifespan: None,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        let e = parse_expr("select-if (SALARY = 1, forall, [0..10, 20]) (emp)").unwrap();
        match e {
            Expr::SelectIf {
                quantifier: Quantifier::Forall,
                lifespan: Some(LifespanExpr::Literal(l)),
                ..
            } => assert_eq!(l, Lifespan::of(&[(0, 10), (20, 20)])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_select_when_with_compound_predicate() {
        let e = parse_expr("SELECT-WHEN (NAME = \"John\" AND SALARY = 30000) (emp)").unwrap();
        match e {
            Expr::SelectWhen { predicate, .. } => {
                assert!(matches!(predicate, Predicate::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_timeslice_with_when_parameter() {
        // The paper's multi-sorted composition: Ω's result feeding τ_L.
        let e = parse_expr("TIMESLICE (WHEN (SELECT-WHEN (SALARY = 30000) (emp))) (emp)").unwrap();
        match e {
            Expr::TimeSlice {
                lifespan: LifespanExpr::When(inner),
                ..
            } => assert!(matches!(*inner, Expr::SelectWhen { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dynamic_slice_and_timejoin() {
        let e = parse_expr("SLICE@HIRED (emp)").unwrap();
        assert!(matches!(e, Expr::TimeSliceDynamic { .. }));
        let e = parse_expr("emp TIMEJOIN@HIRED dept").unwrap();
        assert!(matches!(e, Expr::TimeJoin { .. }));
    }

    #[test]
    fn parses_binary_operators_left_associative() {
        let e = parse_expr("a UNION b MINUS c").unwrap();
        assert_eq!(
            e,
            Expr::Difference(
                Box::new(Expr::Union(
                    Box::new(Expr::rel("a")),
                    Box::new(Expr::rel("b"))
                )),
                Box::new(Expr::rel("c"))
            )
        );
        assert!(parse_expr("a UNION-O b").is_ok());
        assert!(parse_expr("a INTERSECT-O b").is_ok());
        assert!(parse_expr("a MINUS-O b").is_ok());
        assert!(parse_expr("a PRODUCT b").is_ok());
        assert!(parse_expr("a NATJOIN b").is_ok());
    }

    #[test]
    fn parses_theta_join() {
        let e = parse_expr("emp JOIN dept ON DEPT = DNAME").unwrap();
        match e {
            Expr::ThetaJoin { a, op, b, .. } => {
                assert_eq!(a.name(), "DEPT");
                assert_eq!(op, Comparator::Eq);
                assert_eq!(b.name(), "DNAME");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("emp JOIN dept ON SALARY <= BUDGET").is_ok());
    }

    #[test]
    fn parses_top_level_when_query() {
        let q = parse_query("WHEN (SELECT-WHEN (SALARY = 30000) (emp))").unwrap();
        assert!(matches!(q, Query::Lifespan(LifespanExpr::When(_))));
        let q = parse_query("[0..5] | [10..12]").unwrap();
        assert!(matches!(q, Query::Lifespan(LifespanExpr::Union(_, _))));
        let q = parse_query("emp").unwrap();
        assert!(matches!(q, Query::Relation(_)));
    }

    #[test]
    fn parses_lifespan_algebra() {
        let q = parse_query("([0..10] & [5..20]) - [7]").unwrap();
        assert!(matches!(q, Query::Lifespan(LifespanExpr::Minus(_, _))));
    }

    #[test]
    fn parses_time_literals_and_negations() {
        let e = parse_expr("SELECT-WHEN (HIRED = @42) (emp)").unwrap();
        match e {
            Expr::SelectWhen { predicate, .. } => match predicate {
                Predicate::Cmp { right, .. } => {
                    assert_eq!(right, Operand::Const(Value::time(42)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("SELECT-IF (NOT SALARY = 1, EXISTS) (emp)").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("PROJECT [] (emp)").is_err());
        assert!(parse_expr("emp UNION").is_err());
        assert!(parse_expr("SELECT-IF (X = 1) (emp)").is_err()); // missing quantifier
        assert!(parse_expr("emp extra").is_err());
        assert!(parse_expr("TIMESLICE [5..1] (emp)").is_err()); // inverted range
        assert!(parse_expr("JOIN (a) (b)").is_err()); // JOIN cannot start an expr
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_expr("project [A] (r)").is_ok());
        assert!(parse_expr("Timeslice [1..2] (r)").is_ok());
    }

    #[test]
    fn display_parse_round_trip() {
        let sources = [
            "PROJECT [NAME] (emp)",
            "SELECT-WHEN (SALARY = 30000) (emp)",
            "(emp UNION dept)",
            "TIMESLICE [0..10] (emp)",
            "SLICE@HIRED (emp)",
            "(emp JOIN dept ON A < B)",
            "(emp TIMEJOIN@H dept)",
            "(emp NATJOIN dept)",
        ];
        for src in sources {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
            assert_eq!(e, reparsed, "round trip of {src}");
        }
    }
}
