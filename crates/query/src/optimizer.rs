//! Rewrite-rule optimizer built on the algebraic identities of paper §5.
//!
//! "Many of the properties of the relational algebra carry over to the
//! historical relational algebra … the commutativity of select, the
//! distribution of select over the binary set-theoretic operators … the
//! distribution of TIMESLICE over the binary set-theoretic operators,
//! commutativity of TIMESLICE with both flavors of SELECT" (§5).
//!
//! Each rule below is such an identity, used left-to-right as a cost
//! improvement. Every rule is *semantics-preserving* and machine-checked:
//! the workspace integration tests evaluate random expressions optimized and
//! unoptimized and assert equal results.
//!
//! | Rule | Identity | Why it pays |
//! |---|---|---|
//! | `FuseTimeslice` | `τ_L1(τ_L2(e)) = τ_{L1∩L2}(e)` | one pass instead of two |
//! | `FuseSelectWhen` | `σW_p(σW_q(e)) = σW_{p∧q}(e)` | one pass instead of two |
//! | `FuseProject` | `π_Y(π_X(e)) = π_Y(e)` | drops the inner copy |
//! | `TimesliceThroughUnion` | `τ_L(e1 ∪ e2) = τ_L(e1) ∪ τ_L(e2)` | slice before the (deduplicating) union |
//! | `TimesliceThroughProject` | `τ_L(π_X(e)) = π_X(τ_L(e))` | slice before projection copies |
//! | `TimesliceThroughSelectWhen` | `τ_L(σW_p(e)) = σW_p(τ_L(e))` | slice first: predicates scan fewer segments |
//! | `SelectThroughProject` | `σ(π_X(e)) = π_X(σ(e))` when `attrs(σ) ⊆ X` | select first: project copies fewer tuples |

use crate::ast::{Expr, LifespanExpr};

/// A single applied rewrite, for EXPLAIN output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rewrite {
    /// The rule that fired.
    pub rule: &'static str,
}

/// Optimizes an expression by applying the §5 identities to fixpoint
/// (bounded by tree size). Returns the rewritten tree and the trace of
/// applied rules.
pub fn optimize(expr: &Expr) -> (Expr, Vec<Rewrite>) {
    let mut current = expr.clone();
    let mut trace = Vec::new();
    // Each pass either fires at least one rule (strictly reducing or
    // reordering into a normal form) or reaches fixpoint; bound iterations
    // to size² as a belt-and-braces guarantee of termination.
    let bound = current.size() * current.size() + 8;
    for _ in 0..bound {
        let (next, fired) = pass(&current, &mut trace);
        if !fired {
            return (next, trace);
        }
        current = next;
    }
    (current, trace)
}

/// One bottom-up rewrite pass; returns whether any rule fired.
fn pass(e: &Expr, trace: &mut Vec<Rewrite>) -> (Expr, bool) {
    // First rewrite children, then the node itself.
    let (node, child_fired) = map_children(e, trace);
    let (rewritten, self_fired) = apply_rules(node, trace);
    (rewritten, child_fired || self_fired)
}

fn map_children(e: &Expr, trace: &mut Vec<Rewrite>) -> (Expr, bool) {
    macro_rules! bin {
        ($ctor:ident, $a:expr, $b:expr) => {{
            let (a, fa) = pass($a, trace);
            let (b, fb) = pass($b, trace);
            (Expr::$ctor(Box::new(a), Box::new(b)), fa || fb)
        }};
    }
    match e {
        Expr::Relation(_) => (e.clone(), false),
        Expr::Union(a, b) => bin!(Union, a, b),
        Expr::Intersection(a, b) => bin!(Intersection, a, b),
        Expr::Difference(a, b) => bin!(Difference, a, b),
        Expr::UnionO(a, b) => bin!(UnionO, a, b),
        Expr::IntersectionO(a, b) => bin!(IntersectionO, a, b),
        Expr::DifferenceO(a, b) => bin!(DifferenceO, a, b),
        Expr::Product(a, b) => bin!(Product, a, b),
        Expr::NaturalJoin(a, b) => bin!(NaturalJoin, a, b),
        Expr::Project { input, attrs } => {
            let (i, f) = pass(input, trace);
            (
                Expr::Project {
                    input: Box::new(i),
                    attrs: attrs.clone(),
                },
                f,
            )
        }
        Expr::SelectIf {
            input,
            predicate,
            quantifier,
            lifespan,
        } => {
            let (i, f) = pass(input, trace);
            (
                Expr::SelectIf {
                    input: Box::new(i),
                    predicate: predicate.clone(),
                    quantifier: *quantifier,
                    lifespan: lifespan.clone(),
                },
                f,
            )
        }
        Expr::SelectWhen { input, predicate } => {
            let (i, f) = pass(input, trace);
            (
                Expr::SelectWhen {
                    input: Box::new(i),
                    predicate: predicate.clone(),
                },
                f,
            )
        }
        Expr::TimeSlice { input, lifespan } => {
            let (i, f) = pass(input, trace);
            (
                Expr::TimeSlice {
                    input: Box::new(i),
                    lifespan: lifespan.clone(),
                },
                f,
            )
        }
        Expr::TimeSliceDynamic { input, attr } => {
            let (i, f) = pass(input, trace);
            (
                Expr::TimeSliceDynamic {
                    input: Box::new(i),
                    attr: attr.clone(),
                },
                f,
            )
        }
        Expr::ThetaJoin {
            left,
            right,
            a,
            op,
            b,
        } => {
            let (l, fl) = pass(left, trace);
            let (r, fr) = pass(right, trace);
            (
                Expr::ThetaJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    a: a.clone(),
                    op: *op,
                    b: b.clone(),
                },
                fl || fr,
            )
        }
        Expr::TimeJoin { left, right, attr } => {
            let (l, fl) = pass(left, trace);
            let (r, fr) = pass(right, trace);
            (
                Expr::TimeJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    attr: attr.clone(),
                },
                fl || fr,
            )
        }
    }
}

fn apply_rules(e: Expr, trace: &mut Vec<Rewrite>) -> (Expr, bool) {
    match e {
        // τ_L1(τ_L2(e)) → τ_{L1 ∩ L2}(e) for literal lifespans.
        Expr::TimeSlice {
            input,
            lifespan: LifespanExpr::Literal(outer),
        } => match *input {
            Expr::TimeSlice {
                input: inner_input,
                lifespan: LifespanExpr::Literal(inner),
            } => {
                trace.push(Rewrite {
                    rule: "FuseTimeslice",
                });
                (
                    Expr::TimeSlice {
                        input: inner_input,
                        lifespan: LifespanExpr::Literal(outer.intersect(&inner)),
                    },
                    true,
                )
            }
            // τ_L(e1 ∪ e2) → τ_L(e1) ∪ τ_L(e2)  (§5: TIMESLICE distributes
            // over the set operators; safe for ∪ under set semantics).
            Expr::Union(a, b) => {
                trace.push(Rewrite {
                    rule: "TimesliceThroughUnion",
                });
                (
                    Expr::Union(
                        Box::new(Expr::TimeSlice {
                            input: a,
                            lifespan: LifespanExpr::Literal(outer.clone()),
                        }),
                        Box::new(Expr::TimeSlice {
                            input: b,
                            lifespan: LifespanExpr::Literal(outer),
                        }),
                    ),
                    true,
                )
            }
            // τ_L(π_X(e)) → π_X(τ_L(e)): restriction and attribute dropping
            // commute per tuple, and both operators deduplicate, so the sets
            // agree; slicing first shrinks what projection copies.
            Expr::Project {
                input: pi_input,
                attrs,
            } => {
                trace.push(Rewrite {
                    rule: "TimesliceThroughProject",
                });
                (
                    Expr::Project {
                        input: Box::new(Expr::TimeSlice {
                            input: pi_input,
                            lifespan: LifespanExpr::Literal(outer),
                        }),
                        attrs,
                    },
                    true,
                )
            }
            // τ_L(σW_p(e)) → σW_p(τ_L(e))  (§5: TIMESLICE commutes with
            // SELECT); slicing first shrinks every segment the predicate
            // will scan.
            Expr::SelectWhen {
                input: sel_input,
                predicate,
            } => {
                trace.push(Rewrite {
                    rule: "TimesliceThroughSelectWhen",
                });
                (
                    Expr::SelectWhen {
                        input: Box::new(Expr::TimeSlice {
                            input: sel_input,
                            lifespan: LifespanExpr::Literal(outer),
                        }),
                        predicate,
                    },
                    true,
                )
            }
            other => (
                Expr::TimeSlice {
                    input: Box::new(other),
                    lifespan: LifespanExpr::Literal(outer),
                },
                false,
            ),
        },

        // σW_p(σW_q(e)) → σW_{q ∧ p}(e).
        Expr::SelectWhen { input, predicate } => match *input {
            Expr::SelectWhen {
                input: inner_input,
                predicate: inner_pred,
            } => {
                trace.push(Rewrite {
                    rule: "FuseSelectWhen",
                });
                (
                    Expr::SelectWhen {
                        input: inner_input,
                        predicate: inner_pred.and(predicate),
                    },
                    true,
                )
            }
            // σW_p(π_X(e)) → π_X(σW_p(e)) when attrs(p) ⊆ X.
            Expr::Project {
                input: pi_input,
                attrs,
            } if predicate.attributes().iter().all(|a| attrs.contains(a)) => {
                trace.push(Rewrite {
                    rule: "SelectThroughProject",
                });
                (
                    Expr::Project {
                        input: Box::new(Expr::SelectWhen {
                            input: pi_input,
                            predicate,
                        }),
                        attrs,
                    },
                    true,
                )
            }
            other => (
                Expr::SelectWhen {
                    input: Box::new(other),
                    predicate,
                },
                false,
            ),
        },

        // σIF(π_X(e)) → π_X(σIF(e)) when attrs(p) ⊆ X.
        Expr::SelectIf {
            input,
            predicate,
            quantifier,
            lifespan,
        } => match *input {
            Expr::Project {
                input: pi_input,
                attrs,
            } if predicate.attributes().iter().all(|a| attrs.contains(a)) => {
                trace.push(Rewrite {
                    rule: "SelectThroughProject",
                });
                (
                    Expr::Project {
                        input: Box::new(Expr::SelectIf {
                            input: pi_input,
                            predicate,
                            quantifier,
                            lifespan,
                        }),
                        attrs,
                    },
                    true,
                )
            }
            other => (
                Expr::SelectIf {
                    input: Box::new(other),
                    predicate,
                    quantifier,
                    lifespan,
                },
                false,
            ),
        },

        // π_Y(π_X(e)) → π_Y(e)   (Y ⊆ X is guaranteed by validity).
        Expr::Project { input, attrs } => match *input {
            Expr::Project {
                input: inner_input, ..
            } => {
                trace.push(Rewrite {
                    rule: "FuseProject",
                });
                (
                    Expr::Project {
                        input: inner_input,
                        attrs,
                    },
                    true,
                )
            }
            other => (
                Expr::Project {
                    input: Box::new(other),
                    attrs,
                },
                false,
            ),
        },

        other => (other, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn opt(src: &str) -> (Expr, Vec<&'static str>) {
        let e = parse_expr(src).unwrap();
        let (out, trace) = optimize(&e);
        (out, trace.into_iter().map(|r| r.rule).collect())
    }

    #[test]
    fn fuses_nested_timeslices() {
        let (out, rules) = opt("TIMESLICE [0..10] (TIMESLICE [5..20] (emp))");
        assert!(rules.contains(&"FuseTimeslice"));
        assert_eq!(out.to_string(), "TIMESLICE [5..10] (emp)");
    }

    #[test]
    fn fuses_select_whens_into_conjunction() {
        let (out, rules) = opt("SELECT-WHEN (A = 1) (SELECT-WHEN (B = 2) (emp))");
        assert!(rules.contains(&"FuseSelectWhen"));
        assert!(matches!(out, Expr::SelectWhen { .. }));
        assert_eq!(out.size(), 2);
    }

    #[test]
    fn fuses_projections() {
        let (out, rules) = opt("PROJECT [A] (PROJECT [A, B] (emp))");
        assert!(rules.contains(&"FuseProject"));
        assert_eq!(out.to_string(), "PROJECT [A] (emp)");
    }

    #[test]
    fn distributes_timeslice_over_union() {
        let (out, rules) = opt("TIMESLICE [0..5] (a UNION b)");
        assert!(rules.contains(&"TimesliceThroughUnion"));
        assert_eq!(
            out.to_string(),
            "(TIMESLICE [0..5] (a) UNION TIMESLICE [0..5] (b))"
        );
    }

    #[test]
    fn pushes_timeslice_through_select_when() {
        let (out, rules) = opt("TIMESLICE [0..5] (SELECT-WHEN (A = 1) (emp))");
        assert!(rules.contains(&"TimesliceThroughSelectWhen"));
        assert_eq!(
            out.to_string(),
            "SELECT-WHEN (A = 1) (TIMESLICE [0..5] (emp))"
        );
    }

    #[test]
    fn pushes_select_through_project() {
        let (out, rules) = opt("SELECT-WHEN (A = 1) (PROJECT [A, B] (emp))");
        assert!(rules.contains(&"SelectThroughProject"));
        assert_eq!(
            out.to_string(),
            "PROJECT [A, B] (SELECT-WHEN (A = 1) (emp))"
        );

        // Not when the predicate needs a projected-away attribute.
        let (out, rules) = opt("SELECT-WHEN (C = 1) (PROJECT [A, B] (emp))");
        assert!(!rules.contains(&"SelectThroughProject"));
        assert!(matches!(out, Expr::SelectWhen { .. }));
    }

    #[test]
    fn cascades_fire_to_fixpoint() {
        // Slice over slice over select-when over project: several rules
        // compose.
        let (out, rules) =
            opt("TIMESLICE [0..10] (TIMESLICE [5..30] (SELECT-WHEN (A = 1) (PROJECT [A] (emp))))");
        assert!(rules.contains(&"FuseTimeslice"));
        assert!(rules.contains(&"TimesliceThroughSelectWhen"));
        assert!(rules.contains(&"SelectThroughProject"));
        assert_eq!(
            out.to_string(),
            "PROJECT [A] (SELECT-WHEN (A = 1) (TIMESLICE [5..10] (emp)))"
        );
    }

    #[test]
    fn leaves_irreducible_trees_alone() {
        let (out, rules) = opt("emp JOIN dept ON A = B");
        assert!(rules.is_empty());
        assert_eq!(out, parse_expr("emp JOIN dept ON A = B").unwrap());
    }
}
