//! The whole query pipeline (optimizer → access-path planner → evaluator)
//! over a [`hrdm_storage::DbSnapshot`] agrees with the same pipeline over a
//! single-threaded [`hrdm_storage::Database`] at the same commit point —
//! while a concurrent writer keeps mutating the live state underneath the
//! snapshot holder.

use hrdm_core::prelude::*;
use hrdm_query::{evaluate_planned, explain_with_access, parse_expr, parse_query, QueryResult};
use hrdm_storage::{ConcurrentDatabase, Database};
use std::sync::Arc;

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 1000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

#[test]
fn snapshot_pipeline_matches_single_threaded_oracle_under_writes() {
    let db = Arc::new(ConcurrentDatabase::new());
    db.create_relation("r", scheme()).unwrap();
    for k in 0..100 {
        db.insert("r", tup(k)).unwrap();
    }
    let snap = db.snapshot();

    // The single-threaded oracle at the same commit point.
    let mut oracle = Database::new();
    oracle.create_relation("r", scheme()).unwrap();
    for k in 0..100 {
        oracle.insert("r", tup(k)).unwrap();
    }

    // Concurrent writer commits while we evaluate on the snapshot.
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for k in 100..200 {
                db.insert("r", tup(k)).unwrap();
            }
        })
    };

    for q in [
        "TIMESLICE [0..40] (r)",
        "SELECT-WHEN (K = 17) (r)",
        "SELECT-IF (V >= 50, EXISTS) (r)",
        "PROJECT [K] (TIMESLICE [10..20] (r))",
        "r NATJOIN r",
    ] {
        let parsed = parse_query(q).unwrap();
        let via_snapshot = evaluate_planned(&parsed, &*snap).unwrap();
        let via_oracle = evaluate_planned(&parsed, &oracle).unwrap();
        match (via_snapshot, via_oracle) {
            (QueryResult::Relation(a), QueryResult::Relation(b)) => {
                assert_eq!(a, b, "snapshot diverged from oracle on {q}")
            }
            other => panic!("unexpected result shapes for {q}: {other:?}"),
        }
    }
    writer.join().unwrap();
    // The snapshot never saw the concurrent writer's 100 extra commits.
    assert_eq!(snap.relation("r").unwrap().len(), 100);
    assert_eq!(db.snapshot().relation("r").unwrap().len(), 200);
}

/// Snapshots carry their frozen indexes: the planner picks index scans
/// against a snapshot exactly as it does against the live database.
#[test]
fn planner_uses_snapshot_indexes() {
    let db = ConcurrentDatabase::new();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..50 {
        db.insert("r", tup(k)).unwrap();
    }
    let snap = db.snapshot();
    let e = parse_expr("TIMESLICE [5..9] (r)").unwrap();
    let text = explain_with_access(&e, &*snap);
    assert!(
        text.contains("IndexScan(lifespan"),
        "snapshot plan lost the index scan:\n{text}"
    );
    let e = parse_expr("SELECT-WHEN (K = 7) (r)").unwrap();
    let text = explain_with_access(&e, &*snap);
    assert!(
        text.contains("IndexScan(key"),
        "snapshot plan lost the key probe:\n{text}"
    );
}

/// A snapshot taken before a repartition keeps planning `IndexScan`
/// against its **frozen** partition map: the pruning counts in EXPLAIN
/// reflect the old cut, positions stay valid, and results equal the live
/// engine's for the shared prefix.
#[test]
fn old_snapshots_plan_index_scans_against_their_frozen_partition_map() {
    use hrdm_storage::PartitionPolicy;
    let db = ConcurrentDatabase::new();
    db.set_partition_policy(PartitionPolicy::SpanLog2(8)); // span 256
    db.create_relation("r", scheme()).unwrap();
    for k in 0..200 {
        db.insert("r", tup(k)).unwrap();
    }
    let old = db.snapshot();
    let old_parts = old.partitions("r").unwrap().partition_count();

    // The writer splits the hot partitions: span 256 → 16.
    db.set_partition_policy(PartitionPolicy::SpanLog2(4));
    for k in 200..260 {
        db.insert("r", tup(k)).unwrap();
    }

    // The old snapshot still plans an IndexScan, with pruning counts from
    // its frozen (coarse) map — not the live (fine) one.
    let e = parse_expr("TIMESLICE [100..180] (r)").unwrap();
    let text = explain_with_access(&e, &*old);
    assert!(
        text.contains("IndexScan(lifespan") && text.contains("partitions:"),
        "frozen snapshot lost its pruned index scan:\n{text}"
    );
    assert!(
        text.contains(&format!("/{old_parts} pruned")),
        "pruning totals must come from the frozen map ({old_parts} partitions):\n{text}"
    );
    let live_parts = db.snapshot().partitions("r").unwrap().partition_count();
    assert!(
        live_parts > old_parts,
        "the split must have grown the live partition count"
    );

    // And evaluation on the frozen map returns exactly the old prefix.
    let parsed = parse_query("TIMESLICE [0..1000] (r)").unwrap();
    match evaluate_planned(&parsed, &*old).unwrap() {
        QueryResult::Relation(r) => assert_eq!(r.len(), 200),
        other => panic!("unexpected result {other:?}"),
    }
}
