// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! Access-path selection: indexable queries get an `IndexScan`, everything
//! else a `SeqScan` — and either way the results are identical to the plain
//! evaluator's.

use hrdm_core::prelude::*;
use hrdm_query::{
    eval_expr, eval_plan, evaluate_planned, explain_plan, explain_with_access, optimize,
    parse_expr, parse_query, plan, AccessPath, IndexedRelations, Plan, QueryResult,
};
use std::collections::BTreeMap;

fn emp_scheme() -> Scheme {
    Scheme::builder()
        .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
        .attr(
            "SALARY",
            HistoricalDomain::int(),
            Lifespan::interval(0, 100),
        )
        .attr(
            "DEPT",
            HistoricalDomain::string(),
            Lifespan::interval(0, 100),
        )
        .build()
        .unwrap()
}

fn dept_scheme() -> Scheme {
    Scheme::builder()
        .key_attr("DEPT", ValueKind::Str, Lifespan::interval(0, 100))
        .attr(
            "BUDGET",
            HistoricalDomain::int(),
            Lifespan::interval(0, 100),
        )
        .build()
        .unwrap()
}

fn evt_scheme() -> Scheme {
    Scheme::builder()
        .key_attr("E", ValueKind::Int, Lifespan::interval(0, 100))
        .attr("AT", HistoricalDomain::time(), Lifespan::interval(0, 100))
        .build()
        .unwrap()
}

fn relations() -> BTreeMap<String, Relation> {
    let mut emp = Relation::new(emp_scheme());
    let mut add = |name: &str, spans: &[(i64, i64)], sal: i64, dept: &str| {
        let life = Lifespan::of(spans);
        let t = Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(sal)))
            .value("DEPT", TemporalValue::constant(&life, Value::str(dept)))
            .finish(&emp_scheme())
            .unwrap();
        emp.insert(t).unwrap();
    };
    add("John", &[(0, 19)], 25_000, "Toys");
    add("Mary", &[(5, 30)], 30_000, "Shoes");
    add("Igor", &[(40, 60), (70, 80)], 27_000, "Toys");

    let mut dept = Relation::new(dept_scheme());
    for (name, spans, budget) in [
        ("Toys", vec![(0i64, 50i64)], 100_000i64),
        ("Shoes", vec![(0, 90)], 50_000),
    ] {
        let life = Lifespan::of(&spans);
        dept.insert(
            Tuple::builder(life.clone())
                .constant("DEPT", name)
                .value("BUDGET", TemporalValue::constant(&life, Value::Int(budget)))
                .finish(&dept_scheme())
                .unwrap(),
        )
        .unwrap();
    }

    let mut evt = Relation::new(evt_scheme());
    let life = Lifespan::interval(0, 90);
    evt.insert(
        Tuple::builder(life.clone())
            .constant("E", 1i64)
            .value("AT", TemporalValue::constant(&life, Value::time(10)))
            .finish(&evt_scheme())
            .unwrap(),
    )
    .unwrap();

    let mut m = BTreeMap::new();
    m.insert("emp".to_string(), emp);
    m.insert("dept".to_string(), dept);
    m.insert("evt".to_string(), evt);
    m
}

fn indexed() -> IndexedRelations {
    IndexedRelations::new(relations())
}

/// Plans `src_text` (after optimization) and returns the plan plus its
/// rendering.
fn planned(src_text: &str) -> (Plan, String) {
    let e = parse_expr(src_text).unwrap();
    let (optimized, _) = optimize(&e);
    let p = plan(&optimized, &indexed());
    let text = explain_plan(&p);
    (p, text)
}

/// Asserts the planned evaluation returns exactly what the plain evaluator
/// returns for `src_text`.
fn assert_same_results(src_text: &str) {
    let e = parse_expr(src_text).unwrap();
    let src = indexed();
    let via_plan = {
        let (optimized, _) = optimize(&e);
        eval_plan(&plan(&optimized, &src), &src).unwrap()
    };
    let via_scan = eval_expr(&e, &relations()).unwrap();
    assert_eq!(via_plan, via_scan, "plan and scan disagree on {src_text}");
}

#[test]
fn timeslice_uses_lifespan_index() {
    let (p, text) = planned("TIMESLICE [10..20] (emp)");
    assert!(
        text.contains("IndexScan(lifespan, [10..20])"),
        "missing index scan in:\n{text}"
    );
    match &p {
        Plan::Unary { input, .. } => assert!(matches!(
            **input,
            Plan::Scan {
                access: AccessPath::LifespanIndex { .. },
                ..
            }
        )),
        other => panic!("unexpected plan {other:?}"),
    }
    assert_same_results("TIMESLICE [10..20] (emp)");
    // Fragmented windows and empty windows too.
    assert_same_results("TIMESLICE [0..3, 75..99] (emp)");
    assert_same_results("TIMESLICE [95..99] (emp)");
}

#[test]
fn select_when_with_key_equality_uses_key_index() {
    let q = "SELECT-WHEN (NAME = \"John\" AND SALARY = 25000) (emp)";
    let (_, text) = planned(q);
    assert!(
        text.contains("IndexScan(key, NAME = \"John\")"),
        "missing key index scan in:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn select_if_exists_with_key_equality_uses_key_index() {
    let q = "SELECT-IF (NAME = \"Igor\", EXISTS) (emp)";
    let (_, text) = planned(q);
    assert!(
        text.contains("IndexScan(key"),
        "missing key scan in:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn select_if_forall_stays_seq_scan() {
    // FORALL can select vacuously (empty quantification domain), so key
    // pruning would be unsound; the planner must not use the index.
    let q = "SELECT-IF (NAME = \"John\", FORALL, [90..95]) (emp)";
    let (_, text) = planned(q);
    assert!(text.contains("[SeqScan]"), "expected SeqScan in:\n{text}");
    assert!(!text.contains("IndexScan"), "unsound IndexScan in:\n{text}");
    assert_same_results(q);
}

#[test]
fn non_key_predicates_stay_seq_scan() {
    for q in [
        "SELECT-WHEN (SALARY = 30000) (emp)",
        "SELECT-WHEN (NAME = \"John\" OR SALARY = 30000) (emp)",
        "emp",
    ] {
        let (_, text) = planned(q);
        assert!(
            !text.contains("IndexScan"),
            "unexpected IndexScan for {q}:\n{text}"
        );
        assert!(
            text.contains("[SeqScan]"),
            "expected SeqScan for {q}:\n{text}"
        );
        assert_same_results(q);
    }
}

#[test]
fn optimizer_normal_form_composes_with_index() {
    // τ over σWHEN: the optimizer pushes the slice under the select, so
    // the planner can serve the slice from the lifespan index.
    let q = "TIMESLICE [0..10] (SELECT-WHEN (SALARY = 25000) (emp))";
    let (_, text) = planned(q);
    assert!(
        text.contains("IndexScan(lifespan, [0..10])"),
        "missing pushed-down index scan in:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn natural_join_probes_key_index() {
    let q = "emp NATJOIN dept";
    let (_, text) = planned(q);
    assert!(
        text.contains("index nested loop") && text.contains("IndexScan(key"),
        "missing index join in:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn time_join_probes_lifespan_index() {
    let q = "evt TIMEJOIN@AT dept";
    let (_, text) = planned(q);
    assert!(
        text.contains("index nested loop") && text.contains("IndexScan(lifespan"),
        "missing index time-join in:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn theta_join_plans_children() {
    // evt's attributes are disjoint from emp's, as θ-JOIN requires. The θ
    // comparison itself cannot use an index, but index opportunities in
    // the children must survive — here a literal TIMESLICE on the left.
    let q = "(TIMESLICE [0..10] (emp)) JOIN evt ON SALARY > E";
    let (p, text) = planned(q);
    assert!(matches!(p, Plan::ThetaJoin { .. }));
    assert!(
        text.contains("IndexScan(lifespan, [0..10])"),
        "child index scan lost inside θ-join:\n{text}"
    );
    assert_same_results(q);
    assert_same_results("emp JOIN evt ON SALARY > E");
}

#[test]
fn time_join_with_non_base_probe_side_plans_children() {
    // The probe side is not a bare indexed relation, so no index join —
    // but the left child's TIMESLICE still gets its lifespan index.
    let q = "(TIMESLICE [0..20] (evt)) TIMEJOIN@AT (PROJECT [DEPT] (dept))";
    let (p, text) = planned(q);
    assert!(matches!(p, Plan::TimeJoin { .. }));
    assert!(
        text.contains("IndexScan(lifespan, [0..20])"),
        "child index scan lost inside TIME-JOIN:\n{text}"
    );
    assert_same_results(q);
}

#[test]
fn cross_kind_key_literal_does_not_probe_the_key_index() {
    // evt is keyed on E: Int. A Float equality literal compares equal to
    // an Int *numerically* (predicate semantics) but not *structurally*
    // (hash lookup), so the planner must refuse the probe.
    let q = "SELECT-WHEN (E = 1.0) (evt)";
    let (_, text) = planned(q);
    assert!(
        !text.contains("IndexScan"),
        "unsound cross-kind key probe in:\n{text}"
    );
    assert_same_results(q);
    // The matching-kind literal still probes.
    let (_, text) = planned("SELECT-WHEN (E = 1) (evt)");
    assert!(text.contains("IndexScan(key, E = 1)"), "{text}");
    assert_same_results("SELECT-WHEN (E = 1) (evt)");
}

/// Interleaved inserts and queries against a real `Database`: the indexes
/// are maintained incrementally, so EXPLAIN keeps reporting `IndexScan`
/// after every write (no wholesale invalidation) and the planned results
/// keep matching the plain evaluator's.
#[test]
fn interleaved_inserts_keep_index_scans_and_equivalence() {
    let mut db = hrdm_storage::Database::new();
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, Lifespan::interval(0, 1000))
        .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 1000))
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();

    let queries = [
        "TIMESLICE [5..25] (r)",
        "SELECT-WHEN (K = 7) (r)",
        "SELECT-IF (K = 3 AND V <= 400, EXISTS) (r)",
    ];
    for k in 0..40i64 {
        let lo = (k * 11) % 300;
        let life = Lifespan::interval(lo, lo + 20);
        let t = Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k * 13)))
            .finish(&scheme)
            .unwrap();
        db.insert("r", t).unwrap();

        // No `ensure_indexes`, no rebuild: the write path alone must have
        // kept the indexes live.
        for q in &queries {
            let e = parse_expr(q).unwrap();
            let (optimized, _) = optimize(&e);
            let p = plan(&optimized, &db);
            let text = explain_plan(&p);
            assert!(
                text.contains("IndexScan"),
                "after {} inserts, {q} lost its index scan:\n{text}",
                k + 1
            );
            let via_plan = eval_plan(&p, &db).unwrap();
            let via_scan = eval_expr(&e, &db).unwrap();
            assert_eq!(via_plan, via_scan, "{q} after {} inserts", k + 1);
        }
    }
}

#[test]
fn without_indexes_everything_is_seq_scan() {
    // A source that has relations but no indexes: the planner degrades.
    struct Bare(BTreeMap<String, Relation>);
    impl hrdm_query::RelationSource for Bare {
        fn relation(&self, name: &str) -> Option<&Relation> {
            self.0.get(name)
        }
    }
    impl hrdm_query::IndexSource for Bare {
        fn indexes(&self, _: &str) -> Option<&hrdm_storage::RelationIndexes> {
            None
        }
    }
    let bare = Bare(relations());
    let e = parse_expr("TIMESLICE [10..20] (emp)").unwrap();
    let (optimized, _) = optimize(&e);
    let p = plan(&optimized, &bare);
    let text = explain_plan(&p);
    assert!(
        !text.contains("IndexScan"),
        "IndexScan without an index:\n{text}"
    );
    assert_eq!(
        eval_plan(&p, &bare).unwrap(),
        eval_expr(&e, &relations()).unwrap()
    );
}

/// A literal TIME-SLICE bound propagates through the per-tuple unaries
/// and the set operators down to every base scan — each one becomes a
/// lifespan-index scan — and planned results stay exactly the plain
/// evaluator's.
#[test]
fn timeslice_bound_propagates_to_scans_under_selects_and_set_ops() {
    for q in [
        "TIMESLICE [0..30] (SELECT-WHEN (SALARY >= 26000) (emp))",
        "TIMESLICE [0..30] (PROJECT [NAME, SALARY] (emp))",
        "TIMESLICE [0..30] (emp UNION emp)",
        "TIMESLICE [0..30] ((SELECT-WHEN (SALARY >= 1) (emp)) MINUS emp)",
        "TIMESLICE [0..30] (SELECT-IF (SALARY >= 1, FORALL, [5..9]) (emp))",
    ] {
        let (_, text) = planned(q);
        assert!(
            text.contains("IndexScan(lifespan"),
            "bound did not reach the scan for {q}:\n{text}"
        );
        assert!(
            !text.contains("[SeqScan]"),
            "a scan escaped the bound for {q}:\n{text}"
        );
        assert_same_results(q);
    }
    // Nested slices narrow the bound to the intersection even when the
    // optimizer cannot fuse them (an opaque operator in between).
    let q = "TIMESLICE [0..20] (PROJECT [NAME] (TIMESLICE [10..40] (emp)))";
    let (_, text) = planned(q);
    assert!(
        text.contains("IndexScan(lifespan, [10..20])"),
        "nested bounds must intersect:\n{text}"
    );
    assert_same_results(q);
}

/// The bound is cut at products and joins: their outputs combine both
/// sides, so pruning either side by the outer window would be unsound.
#[test]
fn timeslice_bound_is_cut_at_products() {
    let q = "TIMESLICE [0..10] (emp PRODUCT evt)";
    let (_, text) = planned(q);
    assert!(
        !text.contains("IndexScan(lifespan"),
        "bound leaked through a product:\n{text}"
    );
    assert_same_results(q);
}

/// Against a partitioned source (a real `Database`), a bounded scan's
/// EXPLAIN carries `partitions: k/N pruned`, with counts from the
/// source's partition map — and the pruned evaluation stays exact.
#[test]
fn partitioned_source_explains_pruning_counts() {
    let mut db = hrdm_storage::Database::new();
    db.set_partition_policy(hrdm_storage::PartitionPolicy::SpanLog2(4)); // span 16
    let scheme = Scheme::builder()
        .key_attr("K", ValueKind::Int, Lifespan::interval(0, 1000))
        .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 1000))
        .build()
        .unwrap();
    db.create_relation("r", scheme.clone()).unwrap();
    for k in 0..16i64 {
        let lo = k * 16;
        let life = Lifespan::interval(lo, lo + 10);
        let t = Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k)))
            .finish(&scheme)
            .unwrap();
        db.insert("r", t).unwrap();
    }
    let e = parse_expr("TIMESLICE [0..40] (r)").unwrap();
    let (optimized, _) = optimize(&e);
    let p = plan(&optimized, &db);
    let text = explain_plan(&p);
    assert!(
        text.contains("partitions: 13/16 pruned"),
        "wrong or missing pruning counts:\n{text}"
    );
    assert_eq!(
        eval_plan(&p, &db).unwrap(),
        eval_expr(&e, &db).unwrap(),
        "pruned scan diverged"
    );
    // An unpartitioned in-memory source renders no pruning suffix.
    let (_, text) = planned("TIMESLICE [10..20] (emp)");
    assert!(!text.contains("partitions:"), "{text}");
}

#[test]
fn explain_with_access_shows_rewrites_and_paths() {
    let e = parse_expr("TIMESLICE [0..10] (TIMESLICE [5..20] (emp))").unwrap();
    let text = explain_with_access(&e, &indexed());
    assert!(text.contains("== rewrites =="));
    assert!(text.contains("FuseTimeslice"));
    assert!(text.contains("== access paths =="));
    assert!(text.contains("IndexScan(lifespan, [5..10])"));
}

#[test]
fn evaluate_planned_matches_evaluate() {
    let src = indexed();
    for q in [
        "TIMESLICE [10..20] (emp)",
        "SELECT-WHEN (NAME = \"Mary\") (emp)",
        "WHEN (SELECT-WHEN (SALARY = 30000) (emp))",
        "COUNT SALARY (emp)",
    ] {
        let parsed = parse_query(q).unwrap();
        let a = evaluate_planned(&parsed, &src).unwrap();
        let b = hrdm_query::evaluate(&parsed, &relations()).unwrap();
        match (a, b) {
            (QueryResult::Relation(x), QueryResult::Relation(y)) => assert_eq!(x, y, "{q}"),
            (QueryResult::Lifespan(x), QueryResult::Lifespan(y)) => assert_eq!(x, y, "{q}"),
            (QueryResult::Function(x), QueryResult::Function(y)) => assert_eq!(x, y, "{q}"),
            _ => panic!("result sorts disagree for {q}"),
        }
    }
}
